"""Setup shim for environments whose pip/setuptools lack PEP 660 support.

Metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on older toolchains (the reproduction
container has no network to upgrade pip/setuptools/wheel).
"""

from setuptools import setup

setup(
    # numpy backs the default CSR reachability engine (repro/tdn/csr.py);
    # the dict backend works without it, but the out-of-the-box oracle
    # configuration needs it declared.
    install_requires=["numpy"],
    # `pip install -e .[lint]` gives the exact toolchain the lint CI job
    # runs: ruff (pinned to CI's version), mypy, and the in-tree
    # repro.lint checker (no extra dep — it ships with the package).
    extras_require={
        "lint": ["ruff==0.8.4", "mypy"],
        # `pip install -e .[native]` enables the compiled traversal
        # backend (repro/kernels/native.py).  Strictly optional: without
        # it every engine serves the pure-python reference kernels, and
        # REPRO_KERNEL_BACKEND=native degrades to python with a single
        # RuntimeWarning (never an error).
        "native": ["numba>=0.57"],
    },
    package_data={"repro": ["py.typed"]},
)
