"""Setup shim for environments whose pip/setuptools lack PEP 660 support.

Metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on older toolchains (the reproduction
container has no network to upgrade pip/setuptools/wheel).
"""

from setuptools import setup

setup()
