"""Operations scenario: ROI-weighted tracking with checkpoints and analysis.

Combines the library's extension hooks in one realistic deployment story:

* the objective is *weighted* reachability — premium users count 20x —
  which is the paper's "define your own f_t" hook (any normalized
  monotone submodular spread keeps every guarantee);
* the tracker checkpoints its state periodically (crash recovery);
* solution churn is quantified with the stability metrics, comparing the
  plain and weighted objectives on the same stream.

Run:
    python examples/weighted_roi_tracking.py
"""

import tempfile
from pathlib import Path

from repro import (
    GeometricLifetime,
    HistApprox,
    InfluenceOracle,
    MemoryStream,
    SolutionHistory,
    TDNGraph,
    retweet_stream,
    save_checkpoint,
)

# Direct weighted-oracle construction is the power-user path (the facade
# spelling is open_tracker(semantics=Semantics.WEIGHTED_SUM, weights=...));
# this example wires it into HistApprox by hand on purpose.
# repro-lint: disable-next=RPL105
from repro.influence.weighted import WeightedInfluenceOracle

K = 5
PREMIUM_WEIGHT = 20.0


def main() -> None:
    events = retweet_stream(num_users=300, num_events=500, seed=51)
    # Every 9th user is a premium account worth 20x an ordinary reach.
    premium = {f"u{i}" for i in range(0, 300, 9)}
    policy = GeometricLifetime(0.02, 150, seed=52)

    graph_plain, graph_weighted = TDNGraph(), TDNGraph()
    plain = HistApprox(K, 0.2, graph_plain)
    weighted = HistApprox(
        K,
        0.2,
        graph_weighted,
        WeightedInfluenceOracle(
            graph_weighted,
            lambda node: PREMIUM_WEIGHT if node in premium else 1.0,
        ),
    )
    plain_history, weighted_history = SolutionHistory(), SolutionHistory()

    checkpoint_path = Path(tempfile.gettempdir()) / "roi_tracker_checkpoint.json"
    for t, batch in MemoryStream(events):
        lifed = [policy.assign(i) for i in batch]
        for graph, algo in ((graph_plain, plain), (graph_weighted, weighted)):
            graph.advance_to(t)
            graph.add_batch(lifed)
            algo.on_batch(t, lifed)
        if t % 25 == 0:
            plain_history.record(t, plain.query().nodes)
            weighted_history.record(t, weighted.query().nodes)
        if t % 200 == 0 and t > 0:
            save_checkpoint(checkpoint_path, graph_weighted, weighted)

    print("plain vs ROI-weighted objective on the same stream")
    plain_solution = plain.query()
    weighted_solution = weighted.query()
    print(f"  plain influencers:    {', '.join(map(str, plain_solution.nodes))}")
    print(f"  weighted influencers: {', '.join(map(str, weighted_solution.nodes))}")
    overlap = set(plain_solution.nodes) & set(weighted_solution.nodes)
    print(f"  overlap: {len(overlap)} of {K}")
    oracle = InfluenceOracle(graph_weighted)
    print(
        f"  premium users reached by weighted pick: "
        f"{len(set(_reached(oracle, weighted_solution.nodes)) & premium)}"
    )
    print(
        f"  premium users reached by plain pick:    "
        f"{len(set(_reached(oracle, plain_solution.nodes)) & premium)}"
    )
    print("\nsolution stability (mean Jaccard between reports)")
    print(f"  plain:    {plain_history.mean_stability():.3f}")
    print(f"  weighted: {weighted_history.mean_stability():.3f}")

    # On restore, re-supply the custom objective: persistence stores graph
    # and sieve state, never objectives or RNGs (see repro.persistence docs).
    # The dict-level round-trip helpers are internal on purpose — the
    # facade spelling is save_checkpoint/load_checkpoint.
    # repro-lint: disable-next=RPL105
    from repro.persistence import (
        algorithm_from_dict,
        algorithm_to_dict,
        graph_from_dict,
        graph_to_dict,
    )

    restored_graph = graph_from_dict(graph_to_dict(graph_weighted))
    restored = algorithm_from_dict(
        algorithm_to_dict(weighted),
        restored_graph,
        WeightedInfluenceOracle(
            restored_graph,
            lambda node: PREMIUM_WEIGHT if node in premium else 1.0,
        ),
    )
    print(
        f"\ncheckpoint round-trip: restored tracker answers "
        f"value={restored.query().value:.0f} "
        f"(live tracker: {weighted.query().value:.0f})"
    )


def _reached(oracle, seeds):
    # repro-lint: disable-next=RPL105
    from repro.influence.reachability import reachable_set

    return reachable_set(oracle.graph, seeds)


if __name__ == "__main__":
    main()
