"""Stack Overflow scenario: tracking experts under topical churn.

Mirrors the paper's StackOverflow-c2q/c2a use case: commenting on a user's
question or answer reflects that user's influence, and attention turns over
quickly as topics change.  The example sweeps the tracker's epsilon to show
the paper's central quality/efficiency trade-off (Figs. 9 and 10): larger
eps means fewer oracle calls but lower solution quality, all measured
against the exact lazy-greedy reference.

Run:
    python examples/stackoverflow_experts.py
"""

from repro import GeometricLifetime, HistApprox, MemoryStream, qa_stream

# The multi-algorithm experiment harness and its report metrics are
# research tooling, not facade API; this example is explicitly about
# reproducing the paper's sweep with them.
# repro-lint: disable-next=RPL105
from repro.baselines.greedy_recompute import GreedyRecompute

# repro-lint: disable-next=RPL105
from repro.experiments.harness import run_tracking

# repro-lint: disable-next=RPL105
from repro.experiments.metrics import final_calls_ratio, mean_value_ratio

K = 10
EPSILONS = (0.1, 0.2, 0.4)


def main() -> None:
    events = qa_stream(
        num_users=500,
        num_events=500,
        epoch_length=150,   # topics (and hot experts) turn over quickly
        hot_fraction=0.05,
        seed=31,
    )
    algorithms = {
        f"hist(eps={eps})": (
            lambda graph, eps=eps: HistApprox(K, eps, graph)
        )
        for eps in EPSILONS
    }
    algorithms["greedy"] = lambda graph: GreedyRecompute(K, graph)

    # The paper's problem requires an answer at *any* time, so every
    # algorithm is queried at every step — this is where the streaming
    # approach's oracle savings come from (greedy recomputes each time).
    report = run_tracking(
        MemoryStream(events),
        algorithms,
        lifetime_policy=GeometricLifetime(0.015, 200, seed=32),
        query_interval=1,
    )

    greedy = report["greedy"]
    print("expert tracking under topical churn (vs exact greedy)")
    print(f"{'algorithm':>15}  {'value ratio':>11}  {'calls ratio':>11}")
    for eps in EPSILONS:
        series = report[f"hist(eps={eps})"]
        print(
            f"{series.name:>15}  "
            f"{mean_value_ratio(series, greedy):>11.3f}  "
            f"{final_calls_ratio(series, greedy):>11.3f}"
        )
    print(f"{'greedy':>15}  {1.0:>11.3f}  {1.0:>11.3f}")
    print(
        "\nlarger eps -> fewer oracle calls at some quality cost "
        "(the paper's Figs. 9/10)."
    )
    print("\ncurrent experts (eps=0.1):", ", ".join(
        str(n) for n in report.final_nodes[f"hist(eps={EPSILONS[0]})"]
    ))


if __name__ == "__main__":
    main()
