"""Twitter scenario: tracking influencers through a viral burst.

Reproduces the dynamic-influence motivation of the paper's introduction
(and the Twitter-Higgs dataset's defining event): most of the time a stable
set of celebrity accounts dominates retweets, but when a viral event occurs
a previously unremarkable set of accounts suddenly drives the conversation
— and the influential set must pivot *during* the burst, then recover.

The example compares the streaming tracker against a static one-shot
index (IMM computed once, before the burst) to show why static influence
maximization goes stale on dynamic streams.

Run:
    python examples/twitter_viral_burst.py
"""

from repro import (
    GeometricLifetime,
    HistApprox,
    InfluenceOracle,
    MemoryStream,
    TDNGraph,
    retweet_stream,
)

# The static IMM baseline has no facade entry (it exists only as this
# example's strawman); imported from its internal home deliberately.
# repro-lint: disable-next=RPL105
from repro.baselines.imm import IMM

K = 5
BURST_START, BURST_END = 300, 420


def main() -> None:
    events = retweet_stream(
        num_users=400,
        num_events=700,
        burst_interval=BURST_START,
        burst_length=BURST_END - BURST_START,
        burst_boost=40.0,
        seed=21,
    )
    policy = GeometricLifetime(0.02, 150, seed=22)
    graph = TDNGraph()
    tracker = HistApprox(K, 0.2, graph)
    static_seeds = None

    columns = f"{'time':>5}  {'tracked value':>13}  {'static value':>12}"
    print(f"{columns}  tracked influencers")
    for t, batch in MemoryStream(events):
        graph.advance_to(t)
        lifed = [policy.assign(i) for i in batch]
        graph.add_batch(lifed)
        tracker.on_batch(t, lifed)

        if t == BURST_START - 50 and static_seeds is None:
            # A marketer runs a one-shot static IM analysis shortly before
            # the burst and sticks with its answer.
            imm = IMM(K, graph, seed=23, max_rr_sets=2_000)
            static_seeds = imm.query().nodes

        if t % 60 == 0 and static_seeds is not None:
            oracle = InfluenceOracle(graph)
            tracked = tracker.query()
            static_value = oracle.spread(static_seeds)
            marker = " <-- burst" if BURST_START <= t <= BURST_END else ""
            nodes = ", ".join(str(n) for n in tracked.nodes[:3])
            print(
                f"{t:>5}  {tracked.value:>13.0f}  {static_value:>12.0f}  "
                f"{nodes}...{marker}"
            )

    oracle = InfluenceOracle(graph)
    tracked = tracker.query()
    static_value = oracle.spread(static_seeds)
    print("\nafter the stream:")
    print(f"  streaming tracker value: {tracked.value:.0f}")
    print(f"  stale static-IM value:   {static_value:.0f}")
    print(
        "  the static seed set was computed before the burst and never "
        "updated;\n  the streaming tracker followed the burst and the "
        "post-burst recovery."
    )


if __name__ == "__main__":
    main()
