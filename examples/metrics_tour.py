"""A tour of the repro.obs metrics layer through the public facade.

What this demonstrates
----------------------
Every layer of the library reports into one process-local registry —
stdlib-only, label-free, pre-registered from a constant catalog — and
the facade exposes the three knobs an operator needs:

* ``metrics_registry()`` — the process-default
  :class:`~repro.obs.registry.MetricsRegistry`; everything the library
  records lands here (worker processes keep private registries and merge
  counter deltas back through the executor's result queue).
* ``enable_kernel_metrics(every=N)`` — turn on the traversal kernel's
  *sampled* sweep hook: 1 in N sweeps is recorded and counter totals are
  rescaled by N, so the exported numbers stay unbiased while the hot
  loop pays (nearly) nothing.  Disabled, the hook is a single branch.
* ``metric_names`` — the constant catalog, so dashboards never spell a
  series name by hand.

The same snapshot renders three ways: a Prometheus text exposition (for
a scrape endpoint), a schema-versioned JSON dict (for files), and the
human summary table the CLI prints after ``--metrics``.

Run:
    python examples/metrics_tour.py

Expected output: a short tracking run, then non-zero kernel sweep and
oracle memo series rendered as a summary table, a few Prometheus
exposition lines, and the JSON schema version.
"""

import random

from repro import (
    GeometricLifetime,
    disable_kernel_metrics,
    enable_kernel_metrics,
    metric_names,
    metrics_registry,
    open_tracker,
)


def make_batches(num_nodes=60, steps=40, per_step=6, seed=11):
    rng = random.Random(seed)
    batches = []
    for t in range(steps):
        batch = []
        for _ in range(per_step):
            u, v = rng.sample(range(num_nodes), 2)
            batch.append((f"n{u}", f"n{v}"))
        batches.append((t, batch))
    return batches


def main() -> int:
    registry = metrics_registry()

    # Sample 1 in 4 kernel sweeps; totals are rescaled so they remain
    # unbiased estimates of the true sweep volume.
    enable_kernel_metrics(every=4)
    tracker = open_tracker(
        "hist-approx",
        k=5,
        epsilon=0.25,
        lifetime_policy=GeometricLifetime(p=0.02, max_lifetime=120, seed=5),
    )
    solution = None
    for t, batch in make_batches():
        solution = tracker.step(t, batch)
    disable_kernel_metrics()

    assert solution is not None
    print(f"tracked {len(make_batches())} batches; "
          f"top-5 = {', '.join(str(n) for n in solution.nodes)}\n")

    # 1. The operator's table: nonzero series only.
    print(registry.render_summary())

    # 2. Series lookups by catalog constant — never a spelled-out name.
    sweeps = registry.counter(metric_names.KERNEL_SWEEPS_TOTAL)
    hits = registry.counter(metric_names.ORACLE_MEMO_HITS_TOTAL)
    misses = registry.counter(metric_names.ORACLE_MEMO_MISSES_TOTAL)
    print(f"\nkernel sweeps (sampled estimate): {sweeps.value:.0f}")
    total = hits.value + misses.value
    if total:
        print(f"oracle memo hit rate: {hits.value / total:.1%}")

    # 3. Prometheus text exposition, ready for a /metrics endpoint.
    exposition = registry.render_prometheus()
    kernel_lines = [
        line
        for line in exposition.splitlines()
        if line.startswith(f"# TYPE {metric_names.KERNEL_SWEEPS_TOTAL}")
        or line.startswith(f"{metric_names.KERNEL_SWEEPS_TOTAL} ")
    ]
    print("\nprometheus exposition (excerpt):")
    for line in kernel_lines:
        print(f"  {line}")

    # 4. The JSON snapshot is schema-versioned for file consumers.
    snapshot = registry.render_json()
    print(f"\njson export: schema_version={snapshot['schema_version']}, "
          f"{len(snapshot['counters'])} counters, "
          f"{len(snapshot['histograms'])} histograms")

    # 5. Backend dispatch is observable too: the kernels record which
    # traversal backend resolved (0 = python, 1 = native/numba) and the
    # one-time JIT compile cost where the native backend is in play.
    backend_gauge = registry.gauge(metric_names.KERNEL_BACKEND)
    compile_gauge = registry.gauge(metric_names.KERNEL_NATIVE_COMPILE_SECONDS)
    backend = "native" if backend_gauge.value == 1.0 else "python"
    print(f"\nkernel backend: {backend} "
          f"(native compile: {compile_gauge.value:.2f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
