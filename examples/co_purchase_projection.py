"""One-mode projection scenario (paper Example 2): influence from co-adoption.

Influence is often not logged directly: when user u buys a product and a
friend v buys the same product days later, the pair is indirect evidence
that u influenced v.  This example synthesizes adoption events with a few
genuine trendsetters (whose adoptions are copied by followers within days),
projects them onto user-to-user interactions with
:func:`one_mode_projection`, and lets the tracker recover the trendsetters.

Run:
    python examples/co_purchase_projection.py
"""

import random

from repro import (
    GeometricLifetime,
    InfluenceTracker,
    MemoryStream,
    one_mode_projection,
)

NUM_USERS = 200
NUM_ITEMS = 60
NUM_EVENTS = 1_500
TRENDSETTERS = ["trend0", "trend1", "trend2"]


def synthesize_adoptions(seed: int):
    """Adoption events where trendsetters adopt first and get copied."""
    rng = random.Random(seed)
    events = []
    t = 0
    for _ in range(NUM_EVENTS // 5):
        item = f"item{rng.randrange(NUM_ITEMS)}"
        if rng.random() < 0.5:
            # A trendsetter adopts; several followers copy within days.
            setter = TRENDSETTERS[rng.randrange(len(TRENDSETTERS))]
            events.append((setter, item, t))
            for _ in range(rng.randint(2, 4)):
                follower = f"user{rng.randrange(NUM_USERS)}"
                events.append((follower, item, t + rng.randint(1, 3)))
        else:
            # Background noise: unrelated adoptions.
            for _ in range(rng.randint(1, 3)):
                shopper = f"user{rng.randrange(NUM_USERS)}"
                events.append((shopper, item, t + rng.randint(0, 3)))
        t += rng.randint(1, 3)
    events.sort(key=lambda e: e[2])
    return events


def main() -> None:
    adoptions = synthesize_adoptions(seed=41)
    interactions = one_mode_projection(adoptions, window=5, max_links=3)
    print(f"adoption events:        {len(adoptions)}")
    print(f"projected interactions: {len(interactions)}")

    tracker = InfluenceTracker(
        "hist-approx",
        k=3,
        epsilon=0.2,
        lifetime_policy=GeometricLifetime(0.01, 300, seed=42),
    )
    solution = None
    for t, batch in MemoryStream(interactions):
        solution = tracker.step(t, batch)

    print("\nrecovered trendsetters:", ", ".join(str(n) for n in solution.nodes))
    recovered = sum(1 for n in solution.nodes if n in TRENDSETTERS)
    print(f"({recovered} of {len(TRENDSETTERS)} planted trendsetters recovered)")


if __name__ == "__main__":
    main()
