"""LBSN scenario: maintain the k most popular places from check-in streams.

Mirrors the paper's Brightkite/Gowalla use case (Section V-A): a check-in
``<place, user, t>`` reflects the place's influence on the user, and the
goal is to maintain the k most popular places at any time while old
check-ins decay away.  The example runs BASICREDUCTION and HISTAPPROX side
by side — the comparison behind the paper's Fig. 7 — and reports their
solution values and oracle costs, plus how the popular set drifts.

Run:
    python examples/lbsn_popular_places.py
"""

from repro import (
    BasicReduction,
    GeometricLifetime,
    HistApprox,
    MemoryStream,
    lbsn_stream,
)

# The multi-algorithm experiment harness is research tooling, not facade
# API; this example reproduces the paper's Fig. 7 comparison with it.
# repro-lint: disable-next=RPL105
from repro.experiments.harness import run_tracking

K = 10
EPSILON = 0.1
MAX_LIFETIME = 200
FORGET_PROBABILITY = 0.01  # each check-in is forgotten w.p. 1% per step


def main() -> None:
    events = lbsn_stream(
        num_places=600,
        num_users=400,
        num_events=800,
        drift_interval=250,   # popular places drift over time
        drift_fraction=0.3,
        seed=11,
    )
    stream = MemoryStream(events)
    policy = GeometricLifetime(FORGET_PROBABILITY, MAX_LIFETIME, seed=12)

    report = run_tracking(
        stream,
        {
            "basic": lambda graph: BasicReduction(K, EPSILON, MAX_LIFETIME, graph),
            "hist": lambda graph: HistApprox(K, EPSILON, graph),
        },
        lifetime_policy=policy,
        query_interval=10,
    )

    basic, hist = report["basic"], report["hist"]
    print("BASICREDUCTION vs HISTAPPROX on an LBSN check-in stream")
    print(f"  events processed:        {report.num_events}")
    print(f"  mean popularity (basic): {basic.mean_value:.1f}")
    print(f"  mean popularity (hist):  {hist.mean_value:.1f}")
    print(f"  value ratio hist/basic:  {hist.mean_value / basic.mean_value:.3f}")
    print(f"  oracle calls (basic):    {basic.total_calls}")
    print(f"  oracle calls (hist):     {hist.total_calls}")
    print(f"  calls ratio hist/basic:  {hist.total_calls / basic.total_calls:.3f}")

    print("\npopular places at the end of the stream (HISTAPPROX):")
    for place in report.final_nodes["hist"]:
        print(f"  {place}")


if __name__ == "__main__":
    main()
