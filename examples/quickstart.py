"""Quickstart: track influential nodes in a time-decaying interaction stream.

Builds a small retweet-style stream, feeds it to the paper's HISTAPPROX
tracker with geometric lifetimes (the configuration used throughout the
paper's experiments), and prints the tracked influential users over time
alongside the exact greedy reference.  Everything here comes through the
public facade — ``open_tracker`` plus the re-exports on the bare
``repro`` package.

Run:
    python examples/quickstart.py
"""

from repro import GeometricLifetime, MemoryStream, open_tracker, retweet_stream


def main() -> None:
    # 1. An interaction stream: <author, retweeter, time> triples meaning
    #    "author influenced retweeter at time t".  Any source of such
    #    triples works; here we synthesize a bursty retweet stream.
    events = retweet_stream(num_users=300, num_events=600, seed=7)
    stream = MemoryStream(events)

    # 2. A tracker.  HISTAPPROX is the paper's recommended algorithm:
    #    (1/3 - eps)-approximate, with oracle cost logarithmic in k.
    #    Lifetimes follow the truncated geometric Geo(p=0.02, L=200) --
    #    equivalent to forgetting each interaction with probability 2% per
    #    step (paper Example 5).
    tracker = open_tracker(
        "hist-approx",
        k=5,
        epsilon=0.2,
        lifetime_policy=GeometricLifetime(p=0.02, max_lifetime=200, seed=1),
    )

    # 3. Feed the stream; query any time.  Here we print every 100 steps.
    print(f"{'time':>6}  {'influence':>9}  influential users")
    for t, solution in tracker.run(stream):
        if t % 100 == 0:
            nodes = ", ".join(str(n) for n in solution.nodes)
            print(f"{t:>6}  {solution.value:>9.0f}  {nodes}")

    final = tracker.query()
    print(f"\nfinal solution at t={final.time}: value={final.value:.0f}")
    print(f"total influence-oracle calls: {tracker.oracle_calls}")

    # 4. Cross-check against the exact lazy-greedy baseline on the final
    #    graph (the paper's quality reference) -- same facade, different
    #    algorithm name, sharing the tracker's graph.
    greedy = open_tracker("greedy", k=5, graph=tracker.graph)
    reference = greedy.query()
    ratio = final.value / reference.value if reference.value else 1.0
    print(f"greedy reference value: {reference.value:.0f} (ratio {ratio:.2f})")

    # 5. Influence is pluggable: the same stream ranked by recency-weighted
    #    reach instead of raw counts (see examples/semantics_tour.py).
    trending = open_tracker("trend", k=5, graph=tracker.graph)
    names = ", ".join(str(n) for n in trending.query().nodes)
    print(f"trending now (time-decay semantics): {names}")


if __name__ == "__main__":
    main()
