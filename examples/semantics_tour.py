"""Semantics tour: one stream, four influence semantics, four rankings.

The influence oracle's accumulation step is a pluggable *fold*: the same
time-decayed reachability sweep can score the reached set as a plain
count (the paper's objective), a weighted sum, a hop-discounted Katz-style
centrality, or a recency-weighted trend score.  This example replays one
retweet stream under all four registered semantics and prints the
resulting top-5 side by side — same graph, same sweep, different
arithmetic.

Everything comes through the public facade (`repro.api`).

Run:
    python examples/semantics_tour.py
"""

from repro import (
    GeometricLifetime,
    MemoryStream,
    Semantics,
    open_tracker,
    retweet_stream,
)

K = 5


def run(tracker, stream):
    """Replay the stream; return the final solution."""
    solution = None
    for t, batch in stream:
        solution = tracker.step(t, batch)
    return solution


def main() -> None:
    events = retweet_stream(num_users=250, num_events=500, seed=13)
    policy = lambda: GeometricLifetime(p=0.02, max_lifetime=150, seed=2)  # noqa: E731

    # Every 8th user is a premium account for the weighted ranking.
    premium = {f"u{i}": 20.0 for i in range(0, 250, 8)}

    trackers = {
        # The paper's objective: |R(S)|, distinct accounts reached.
        "count": open_tracker(
            "hist-approx", k=K, epsilon=0.2, lifetime_policy=policy()
        ),
        # Premium accounts count 20x: reach that converts, not just reach.
        "weighted_sum": open_tracker(
            "hist-approx",
            k=K,
            epsilon=0.2,
            semantics=Semantics.WEIGHTED_SUM,
            weights=premium,
            lifetime_policy=policy(),
        ),
        # Katz-flavored: each extra hop halves the credit, so direct
        # audiences beat long brittle chains.
        "hop_discount": open_tracker(
            "decayed-centrality",
            k=K,
            semantics=(Semantics.HOP_DISCOUNT.value, {"alpha": 0.5}),
            lifetime_policy=policy(),
        ),
        # Trending now: reach backed by fresh, long-lived interactions
        # outranks reach about to expire.
        "trend (time_decay)": open_tracker(
            "trend",
            k=K,
            semantics=(Semantics.TIME_DECAY.value, {"lam": 0.05}),
            lifetime_policy=policy(),
        ),
    }

    results = {
        name: run(tracker, MemoryStream(events))
        for name, tracker in trackers.items()
    }

    print(f"top-{K} influencers on one stream, per semantics\n")
    print(f"{'semantics':>20}  {'value':>9}  nodes")
    for name, solution in results.items():
        nodes = ", ".join(str(n) for n in solution.nodes)
        print(f"{name:>20}  {solution.value:>9.2f}  {nodes}")

    # The count and weighted rankings agree only where premium accounts
    # happen to sit in the biggest cascades; the decayed semantics
    # reorder further.  That divergence is the point: pick the fold that
    # matches what "influence" means for your application.
    overlap = set(results["count"].nodes) & set(results["weighted_sum"].nodes)
    print(f"\ncount vs weighted overlap: {len(overlap)}/{K}")


if __name__ == "__main__":
    main()
