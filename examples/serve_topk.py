"""Serve live top-k influencer queries while ingesting a stream — async.

The serving story, end to end
-----------------------------
A production influence tracker is not a batch replay: interaction events
arrive continuously from upstream (a message bus, an HTTP collector) while
dashboards and ranking services keep asking "who are the top-k right
now?".  :class:`repro.parallel.IngestService` packages that loop:

* **Ingestion with backpressure** — producers ``await submit(t, batch)``;
  the service applies batches in order on a single writer thread and the
  bounded queue slows producers down instead of buffering unboundedly
  when ingestion falls behind.

* **Epoch consistency** — after every applied batch the service advances
  its *epoch* and atomically swaps in that epoch's solution.  Queries
  (``await top_k()``) are answered from the last consistent epoch in
  microseconds; they never block behind ingestion and never observe a
  half-applied batch.

* **Sharded evaluation** — constructing the tracker with ``workers=N``
  puts a :class:`repro.parallel.ShardedOracleExecutor` behind its oracle:
  each applied epoch republishes the graph's CSR arrays into shared
  memory and the worker pool shards the spread sweeps across cores,
  bit-identically to the serial engine.  On a small laptop demo the
  spawn overhead outweighs the gain, so this script defaults to
  ``workers=1``; pass ``--workers 4`` on a multi-core box.

Run:
    python examples/serve_topk.py [--workers N] [--events 400]

Expected output: interleaved producer/query log lines, ending with the
final epoch's influencer set — identical to what a plain synchronous
replay of the same stream computes.
"""

import argparse
import asyncio
import random

from repro import (
    GeometricLifetime,
    InfluenceTracker,
    metric_names,
    metrics_registry,
    retweet_stream,
)

# The async ingest service is a power-user surface with no facade
# equivalent yet; this example documents it deliberately.
# repro-lint: disable-next=RPL105
from repro.parallel import IngestService


async def produce(service: IngestService, batches) -> None:
    """Feed batches as a bursty producer (backpressure-aware)."""
    rng = random.Random(99)
    for t, batch in batches:
        await service.submit(t, batch)  # awaits while the queue is full
        if rng.random() < 0.1:
            await asyncio.sleep(0)  # yield: let queriers interleave


async def watch(service: IngestService, done: asyncio.Event) -> None:
    """A dashboard poller: read the freshest consistent answer."""
    last_epoch = -1
    while not done.is_set():
        answer = await service.top_k()
        if answer.epoch != last_epoch and answer.epoch % 40 == 0:
            nodes = ", ".join(str(n) for n in answer.nodes[:5])
            # The service publishes its live state as gauges: how many
            # batches wait in the queue and how far applies lag ingest.
            registry = metrics_registry()
            depth = registry.gauge(metric_names.INGEST_QUEUE_DEPTH).value
            lag = registry.gauge(metric_names.INGEST_EPOCH_LAG).value
            print(
                f"  [query] epoch={answer.epoch:>4}  t={answer.time:>4}  "
                f"value={answer.value:>6.0f}  queue={depth:>2.0f}  "
                f"lag={lag:>2.0f}  top=[{nodes}]"
            )
            last_epoch = answer.epoch
        await asyncio.sleep(0.01)


async def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1,
                        help="oracle evaluation workers (1 = serial)")
    parser.add_argument("--events", type=int, default=400)
    parser.add_argument("--k", type=int, default=5)
    args = parser.parse_args()

    events = retweet_stream(num_users=150, num_events=args.events, seed=7)
    batches: dict = {}
    for event in events:
        batches.setdefault(event.time, []).append(event)
    ordered = sorted(batches.items())

    tracker = InfluenceTracker(
        "hist-approx",
        k=args.k,
        epsilon=0.2,
        lifetime_policy=GeometricLifetime(p=0.02, max_lifetime=200, seed=1),
        workers=args.workers,
    )
    service = IngestService(tracker, max_pending=16)
    await service.start()
    print(
        f"serving top-{args.k} over {len(events)} events "
        f"({len(ordered)} batches, workers={args.workers})"
    )

    done = asyncio.Event()
    watcher = asyncio.get_running_loop().create_task(watch(service, done))
    try:
        await produce(service, ordered)
        answer = await service.drain()
    finally:
        # Always release the watcher task, the apply thread, and the
        # worker pool — even when ingestion fails mid-stream.  close()
        # re-raises any consumer failure, so guard tracker.close() too.
        done.set()
        watcher.cancel()
        try:
            await watcher
        except (asyncio.CancelledError, RuntimeError):
            pass
        try:
            await service.close()
        finally:
            tracker.close()

    print(f"\nfinal epoch {answer.epoch} (t={answer.time}):")
    for rank, node in enumerate(answer.nodes, 1):
        print(f"  {rank}. {node}")
    print(f"  spread value: {answer.value:.0f}")
    print(f"  oracle calls: {tracker.oracle_calls}")
    registry = metrics_registry()
    applied = registry.counter(metric_names.INGEST_BATCHES_APPLIED_TOTAL)
    lag_now = registry.gauge(metric_names.INGEST_EPOCH_LAG).value
    depth_now = registry.gauge(metric_names.INGEST_QUEUE_DEPTH).value
    print(f"  batches applied: {applied.value:.0f}")
    print(f"  epoch lag now: {lag_now:.0f} (queue depth {depth_now:.0f})")
    return 0


if __name__ == "__main__":
    raise SystemExit(asyncio.run(main()))
