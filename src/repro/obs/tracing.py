"""Span: a nestable context-manager tracer over ``time.monotonic``.

Spans answer "where did the wall-clock go inside this process" at a
coarser grain than the metric histograms: a span has a name, a duration,
a parent, and children, and the finished tree renders as an indented
text report.  Nesting is tracked per *thread* (the ingest writer thread
and the event loop must not interleave into one tree), via a
``threading.local`` stack — no asyncio-task granularity, which the
single-threaded event loop does not need.

Spans are process-local and never cross the worker pipe; workers ship
counter deltas only (see :mod:`repro.obs.registry`).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

__all__ = ["Span", "current_span"]

_STACK = threading.local()


def _stack() -> List["Span"]:
    stack = getattr(_STACK, "spans", None)
    if stack is None:
        stack = []
        _STACK.spans = stack
    return stack


def current_span() -> Optional["Span"]:
    """The innermost open span on this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


class Span:
    """One timed region; ``with Span("name"):`` nests under the current span.

    Timing uses ``time.monotonic`` so clock steps cannot produce negative
    or inflated durations.  A span may be inspected after exit via
    ``duration``, ``children``, and ``report()``.
    """

    __slots__ = ("name", "parent", "children", "started", "duration")

    def __init__(self, name: str) -> None:
        self.name = name
        self.parent: Optional[Span] = None
        self.children: List[Span] = []
        self.started = 0.0
        self.duration: Optional[float] = None

    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            self.parent = stack[-1]
            self.parent.children.append(self)
        stack.append(self)
        self.started = time.monotonic()
        return self

    def __exit__(self, *exc: object) -> None:
        self.duration = time.monotonic() - self.started
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly tree: name, duration_seconds, children."""
        return {
            "name": self.name,
            "duration_seconds": self.duration,
            "children": [child.to_dict() for child in self.children],
        }

    def report(self, indent: int = 0) -> str:
        """Indented multi-line rendering of this span's subtree."""
        duration = "open" if self.duration is None else f"{self.duration:.6f}s"
        lines = ["  " * indent + f"{self.name}: {duration}"]
        for child in self.children:
            lines.append(child.report(indent + 1))
        return "\n".join(lines)
