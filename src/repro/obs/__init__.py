"""repro.obs — zero-dependency metrics and tracing for the whole stack.

Rank 0 in the layer DAG: this package imports nothing from repro beyond
itself, so every other layer (kernels, influence, parallel, track, api)
may instrument itself freely without creating cycles.  See the
"Observability" section of ARCHITECTURE.md for the layer placement, the
kernel sampling contract, and the worker-merge protocol.
"""

from repro.obs import names
from repro.obs.export import (
    JSON_SCHEMA_VERSION,
    parse_prometheus_text,
    render_json,
    render_prometheus,
    render_summary,
)
from repro.obs.names import CATALOG, MetricSpec
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metrics_registry,
)
from repro.obs.sampling import KernelSampler
from repro.obs.tracing import Span, current_span

__all__ = [
    "CATALOG",
    "Counter",
    "Gauge",
    "Histogram",
    "JSON_SCHEMA_VERSION",
    "KernelSampler",
    "MetricSpec",
    "MetricsRegistry",
    "Span",
    "current_span",
    "metrics_registry",
    "names",
    "parse_prometheus_text",
    "render_json",
    "render_prometheus",
    "render_summary",
]
