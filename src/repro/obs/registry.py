"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

Stdlib-only (the library's numpy dependency is not needed here) and
deliberately label-free: every series is one pre-registered constant name
from :mod:`repro.obs.names`, so the whole exposition surface is known at
import time and a lookup by constant can never miss.  One
:class:`threading.Lock` per registry serializes every mutation — metrics
are written from the event loop, the ingest writer thread and the
dispatch path, and a lost increment would quietly corrupt the very
counters the chaos suite asserts on.  The lock is taken once per
*recorded* sample, never inside kernel inner loops (the kernel's sampled
hook is the only sanctioned instrumentation point there; see RPL501).

Worker processes keep their own registry and ship counter *deltas*
through the executor's result queue (:meth:`MetricsRegistry.
drain_counter_deltas` worker-side, :meth:`MetricsRegistry.
merge_counter_deltas` owner-side).  Only counters cross the pipe —
histograms and gauges are process-local by design; merging bucket arrays
would couple the wire format to the bucket ladder for little value.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.names import CATALOG, MetricSpec

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metrics_registry",
]


class Counter:
    """Monotone float counter (``_total`` series)."""

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help_text
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-set value (current queue depth, epoch, lag, ...)."""

    __slots__ = ("name", "help", "value", "_lock")

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        self.name = name
        self.help = help_text
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with Prometheus cumulative semantics.

    ``buckets`` are ascending upper edges; the implicit ``+Inf`` bucket
    catches everything past the last edge.  :meth:`quantile` answers the
    smallest bucket upper edge whose cumulative count fraction reaches
    ``q`` — deterministic, resolution-bounded by the ladder, and pinned
    against a numpy reference on random samples in the exporter tests.
    """

    __slots__ = ("name", "help", "buckets", "counts", "sum", "count", "_lock")

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Tuple[float, ...],
        lock: threading.Lock,
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name} needs ascending buckets")
        self.name = name
        self.help = help_text
        self.buckets = tuple(float(edge) for edge in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # last slot = +Inf
        self.sum = 0.0
        self.count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        slot = len(self.buckets)
        for i, edge in enumerate(self.buckets):
            if value <= edge:
                slot = i
                break
        with self._lock:
            self.counts[slot] += 1
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> float:
        """Smallest bucket edge covering fraction ``q`` (0.0 when empty).

        Observations past the last finite edge resolve to ``inf`` — the
        ladder genuinely cannot say more than "bigger than every edge".
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self.count
            counts = list(self.counts)
        if total == 0:
            return 0.0
        need = q * total
        cumulative = 0
        for edge, bucket_count in zip(self.buckets, counts):
            cumulative += bucket_count
            if cumulative >= need:
                return edge
        return float("inf")

    def percentiles(self) -> Dict[str, float]:
        """The CLI summary's ``p50`` / ``p95`` / ``p99`` triple."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """All of one process's metric instruments, pre-registered by name.

    Construction registers the full :data:`~repro.obs.names.CATALOG`, so
    ``registry.counter(SOME_CONSTANT)`` always resolves and exporters can
    emit type/help text for series that never received a sample.  Looking
    up an unregistered name raises — instrumentation must go through the
    catalog (RPL501 enforces the constant-name half of that contract).
    """

    def __init__(self, catalog: Iterable[MetricSpec] = CATALOG) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._drained: Dict[str, float] = {}
        for spec in catalog:
            self.register(spec)

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------
    def register(self, spec: MetricSpec) -> None:
        """Register one catalog row (idempotent for identical respecs)."""
        if spec.kind == "counter":
            self._counters[spec.name] = Counter(spec.name, spec.help, self._lock)
        elif spec.kind == "gauge":
            self._gauges[spec.name] = Gauge(spec.name, spec.help, self._lock)
        elif spec.kind == "histogram":
            if spec.buckets is None:
                raise ValueError(f"histogram {spec.name} needs buckets")
            self._histograms[spec.name] = Histogram(
                spec.name, spec.help, spec.buckets, self._lock
            )
        else:
            raise ValueError(f"unknown metric kind {spec.kind!r} for {spec.name}")

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            raise KeyError(
                f"counter {name!r} is not in the metric catalog "
                "(repro/obs/names.py)"
            ) from None

    def gauge(self, name: str) -> Gauge:
        try:
            return self._gauges[name]
        except KeyError:
            raise KeyError(
                f"gauge {name!r} is not in the metric catalog "
                "(repro/obs/names.py)"
            ) from None

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            raise KeyError(
                f"histogram {name!r} is not in the metric catalog "
                "(repro/obs/names.py)"
            ) from None

    # ------------------------------------------------------------------
    # Snapshots and worker merging
    # ------------------------------------------------------------------
    def counter_values(self) -> Dict[str, float]:
        """Current counter values (all of them, zero or not), by name."""
        with self._lock:
            return {name: c.value for name, c in sorted(self._counters.items())}

    def drain_counter_deltas(self) -> Dict[str, float]:
        """Nonzero counter movement since the last drain (worker side).

        The wire payload of the executor's worker-merge protocol: one
        tiny name->delta dict per completed task, never per-event
        messages.  Draining is cumulative — the internal high-water marks
        advance, so repeated drains never double-report.
        """
        deltas: Dict[str, float] = {}
        with self._lock:
            for name in sorted(self._counters):
                value = self._counters[name].value
                moved = value - self._drained.get(name, 0.0)
                if moved:
                    deltas[name] = moved
                    self._drained[name] = value
        return deltas

    def merge_counter_deltas(self, deltas: Dict[str, float]) -> None:
        """Fold a worker's drained deltas into this registry (owner side).

        Unknown names are ignored rather than raised: a worker built
        from a newer catalog than its owner must not poison dispatch.
        """
        for name in sorted(deltas):
            counter = self._counters.get(name)
            if counter is not None:
                counter.inc(deltas[name])

    def reset(self) -> None:
        """Zero every instrument (tests; never called by the library)."""
        with self._lock:
            for counter in self._counters.values():
                counter.value = 0.0
            for gauge in self._gauges.values():
                gauge.value = 0.0
            for histogram in self._histograms.values():
                histogram.counts = [0] * (len(histogram.buckets) + 1)
                histogram.sum = 0.0
                histogram.count = 0
            self._drained.clear()

    # ------------------------------------------------------------------
    # Export (delegates to repro.obs.export; imported lazily to keep the
    # module graph a tree)
    # ------------------------------------------------------------------
    def counters(self) -> List[Counter]:
        return [self._counters[name] for name in sorted(self._counters)]

    def gauges(self) -> List[Gauge]:
        return [self._gauges[name] for name in sorted(self._gauges)]

    def histograms(self) -> List[Histogram]:
        return [self._histograms[name] for name in sorted(self._histograms)]

    def render_prometheus(self) -> str:
        from repro.obs.export import render_prometheus

        return render_prometheus(self)

    def render_json(self) -> Dict[str, object]:
        from repro.obs.export import render_json

        return render_json(self)

    def render_summary(self) -> str:
        from repro.obs.export import render_summary

        return render_summary(self)


#: The process-default registry, created on first use.  Library
#: instrumentation records here; workers build their own and merge.
_DEFAULT: Optional[MetricsRegistry] = None


def metrics_registry() -> MetricsRegistry:
    """The process-local default :class:`MetricsRegistry` (lazy singleton)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = MetricsRegistry()
    return _DEFAULT
