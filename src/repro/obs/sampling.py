"""The kernel-side sampled recorder behind ``set_sweep_sampler``.

The traversal kernel's sweep loop is the hottest code in the stack, so
its instrumentation contract is deliberately minimal: when metrics are
disabled the kernel pays exactly one ``is not None`` branch per physical
sweep (measured < 3% end to end by the bench gate, and that bound covers
the *enabled* path too).  When enabled, :class:`KernelSampler` records
one sweep in ``every`` and scales the counter increments back up by the
period, so the exported totals remain unbiased estimates of the true
counts.  Histogram observations are *not* scaled — each observed value
is one real sweep — which means sampled histograms describe the shape of
the sweep-size distribution, not its absolute volume (the scaled
counters carry volume).

The sampler keeps no lock of its own: the modulus bump is kernel-thread
local, and the registry's instruments lock internally on record.
"""

from __future__ import annotations

from repro.obs import names
from repro.obs.registry import MetricsRegistry

__all__ = ["KernelSampler"]


class KernelSampler:
    """Record 1-in-``every`` kernel sweeps into a :class:`MetricsRegistry`.

    Satisfies the ``SweepSampler`` protocol that
    :func:`repro.kernels.traversal.set_sweep_sampler` accepts; build and
    install one via :func:`repro.kernels.instrument.enable_kernel_metrics`
    rather than by hand.
    """

    __slots__ = ("every", "_n", "_sweeps", "_sets", "_reached", "_hist")

    def __init__(self, registry: MetricsRegistry, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"sampling period must be >= 1, got {every}")
        self.every = every
        self._n = 0
        self._sweeps = registry.counter(names.KERNEL_SWEEPS_TOTAL)
        self._sets = registry.counter(names.KERNEL_SWEEP_SETS_TOTAL)
        self._reached = registry.counter(names.KERNEL_REACHED_NODES_TOTAL)
        self._hist = registry.histogram(names.KERNEL_SWEEP_REACHED_NODES)

    def record(self, kind: str, sets: int, reached: int) -> None:
        """Account one physical sweep; drops all but every ``every``-th.

        ``kind`` names the kernel entry point ("reach", "spread", ...)
        and exists for future per-kind catalogs; the current flat catalog
        aggregates across kinds.
        """
        self._n += 1
        if self._n % self.every:
            return
        scale = float(self.every)
        self._sweeps.inc(scale)
        self._sets.inc(sets * scale)
        self._reached.inc(reached * scale)
        self._hist.observe(reached)
