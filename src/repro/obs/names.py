"""The metric catalog: every metric name the stack may emit, in one place.

Metric names are module-level UPPER_CASE string constants, registered at
import time by :class:`~repro.obs.registry.MetricsRegistry` from the
:data:`CATALOG` below.  Instrumentation sites refer to metrics *only*
through these constants — the RPL501 lint rule rejects inline string or
f-string metric names — so the full set of series a process can expose
is known statically, the registry can pre-register help/type text before
any sample arrives, and two call sites can never drift into spelling the
same metric two ways.

Naming follows the Prometheus conventions: ``repro_`` prefix, snake
case, ``_total`` suffix on counters, base units in the name
(``_seconds``, ``_nodes``, ``_batches``).
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Tuple

# -- kernel sweeps (recorded via the sampled hook only) -----------------
KERNEL_SWEEPS_TOTAL = "repro_kernel_sweeps_total"
KERNEL_SWEEP_SETS_TOTAL = "repro_kernel_sweep_sets_total"
KERNEL_REACHED_NODES_TOTAL = "repro_kernel_reached_nodes_total"
KERNEL_SWEEP_REACHED_NODES = "repro_kernel_sweep_reached_nodes"

# -- kernel backend dispatch (set by repro.kernels.backend) -------------
KERNEL_BACKEND = "repro_kernel_backend"
KERNEL_NATIVE_COMPILE_SECONDS = "repro_kernel_native_compile_seconds"

# -- oracle memo table --------------------------------------------------
ORACLE_MEMO_HITS_TOTAL = "repro_oracle_memo_hits_total"
ORACLE_MEMO_MISSES_TOTAL = "repro_oracle_memo_misses_total"
ORACLE_MEMO_EVICTIONS_TOTAL = "repro_oracle_memo_evictions_total"
ORACLE_CONE_SIZE_NODES = "repro_oracle_cone_size_nodes"

# -- sharded executor ---------------------------------------------------
EXECUTOR_DISPATCHES_TOTAL = "repro_executor_dispatches_total"
EXECUTOR_SHARD_LATENCY_SECONDS = "repro_executor_shard_latency_seconds"
EXECUTOR_SERIAL_FALLBACKS_TOTAL = "repro_executor_serial_fallbacks_total"

# -- degradation ladder / supervisor ------------------------------------
DEGRADATION_TRANSITIONS_TOTAL = "repro_degradation_transitions_total"
DEGRADATION_INCIDENTS_TOTAL = "repro_degradation_incidents_total"
WORKER_RESTARTS_TOTAL = "repro_worker_restarts_total"
TASK_QUARANTINES_TOTAL = "repro_task_quarantines_total"

# -- worker processes (merged owner-side via the result queue) ----------
WORKER_TASKS_TOTAL = "repro_worker_tasks_total"

# -- ingest service -----------------------------------------------------
INGEST_QUEUE_DEPTH = "repro_ingest_queue_depth"
INGEST_EPOCH = "repro_ingest_epoch"
INGEST_EPOCH_LAG = "repro_ingest_epoch_lag"
INGEST_EPOCH_LAG_BATCHES = "repro_ingest_epoch_lag_batches"
INGEST_BATCH_APPLY_SECONDS = "repro_ingest_batch_apply_seconds"
INGEST_REPUBLISH_SECONDS = "repro_ingest_republish_seconds"
INGEST_BATCHES_APPLIED_TOTAL = "repro_ingest_batches_applied_total"

#: Histogram bucket ladders (upper edges, ascending; +Inf is implicit).
LATENCY_BUCKETS_SECONDS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
SIZE_BUCKETS_NODES: Tuple[float, ...] = (
    1, 2, 5, 10, 25, 50, 100, 250, 500,
    1_000, 2_500, 5_000, 10_000, 50_000, 200_000,
)
LAG_BUCKETS_BATCHES: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


class MetricSpec(NamedTuple):
    """One catalog row: name, kind, help text, histogram buckets."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    buckets: Optional[Tuple[float, ...]] = None


#: Every metric the stack may emit.  The registry pre-registers the whole
#: catalog at construction, so a lookup by constant name never misses and
#: an exporter always has type/help text even for never-touched series.
CATALOG: Tuple[MetricSpec, ...] = (
    MetricSpec(
        KERNEL_SWEEPS_TOTAL, "counter",
        "physical traversal sweeps run by TraversalKernel (sampled; "
        "counts are scaled by the sampling period)",
    ),
    MetricSpec(
        KERNEL_SWEEP_SETS_TOTAL, "counter",
        "seed sets served by kernel sweeps (sampled, scaled; up to 64 "
        "sets share one bit-plane sweep)",
    ),
    MetricSpec(
        KERNEL_REACHED_NODES_TOTAL, "counter",
        "nodes reached across kernel sweeps (sampled, scaled)",
    ),
    MetricSpec(
        KERNEL_SWEEP_REACHED_NODES, "histogram",
        "reached-node count per physical sweep (sampled observations, "
        "not scaled)",
        SIZE_BUCKETS_NODES,
    ),
    MetricSpec(
        KERNEL_BACKEND, "gauge",
        "most recently resolved traversal kernel backend "
        "(0 = python, 1 = native/numba)",
    ),
    MetricSpec(
        KERNEL_NATIVE_COMPILE_SECONDS, "gauge",
        "one-time native kernel warm-up (JIT compile) wall time",
    ),
    MetricSpec(
        ORACLE_MEMO_HITS_TOTAL, "counter",
        "oracle spread evaluations answered from the memo table",
    ),
    MetricSpec(
        ORACLE_MEMO_MISSES_TOTAL, "counter",
        "oracle spread evaluations that cost a real traversal "
        "(equals the paper's oracle-call count)",
    ),
    MetricSpec(
        ORACLE_MEMO_EVICTIONS_TOTAL, "counter",
        "memo entries evicted (capacity FIFO plus dirty-cone "
        "invalidation)",
    ),
    MetricSpec(
        ORACLE_CONE_SIZE_NODES, "histogram",
        "closed dirty-cone size per delta memo sync",
        SIZE_BUCKETS_NODES,
    ),
    MetricSpec(
        EXECUTOR_DISPATCHES_TOTAL, "counter",
        "sharded dispatch rounds issued to the worker pool",
    ),
    MetricSpec(
        EXECUTOR_SHARD_LATENCY_SECONDS, "histogram",
        "per-shard latency from enqueue to ok-result receipt",
        LATENCY_BUCKETS_SECONDS,
    ),
    MetricSpec(
        EXECUTOR_SERIAL_FALLBACKS_TOTAL, "counter",
        "shards recomputed serially in the owner (quarantine, retry "
        "exhaustion, deadline, pool loss)",
    ),
    MetricSpec(
        DEGRADATION_TRANSITIONS_TOTAL, "counter",
        "degradation-ladder history records (incidents, state moves, "
        "recoveries)",
    ),
    MetricSpec(
        DEGRADATION_INCIDENTS_TOTAL, "counter",
        "faults recorded by the degradation ladder (absorbed or "
        "state-changing)",
    ),
    MetricSpec(
        WORKER_RESTARTS_TOTAL, "counter",
        "worker respawns charged against the supervisor restart budget",
    ),
    MetricSpec(
        TASK_QUARANTINES_TOTAL, "counter",
        "tasks quarantined after repeated worker deaths",
    ),
    MetricSpec(
        WORKER_TASKS_TOTAL, "counter",
        "tasks completed by pool workers (merged owner-side)",
    ),
    MetricSpec(
        INGEST_QUEUE_DEPTH, "gauge",
        "batches waiting in the ingest queue",
    ),
    MetricSpec(
        INGEST_EPOCH, "gauge",
        "last committed service epoch",
    ),
    MetricSpec(
        INGEST_EPOCH_LAG, "gauge",
        "accepted-but-uncommitted batches (queued + journaled)",
    ),
    MetricSpec(
        INGEST_EPOCH_LAG_BATCHES, "histogram",
        "epoch lag observed as each batch is journaled",
        LAG_BUCKETS_BATCHES,
    ),
    MetricSpec(
        INGEST_BATCH_APPLY_SECONDS, "histogram",
        "tracker.step + republish + commit time per batch",
        LATENCY_BUCKETS_SECONDS,
    ),
    MetricSpec(
        INGEST_REPUBLISH_SECONDS, "histogram",
        "shared-memory plane republish time per committed epoch",
        LATENCY_BUCKETS_SECONDS,
    ),
    MetricSpec(
        INGEST_BATCHES_APPLIED_TOTAL, "counter",
        "batches committed by the ingest writer",
    ),
)
