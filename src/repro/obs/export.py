"""Exporters for :class:`~repro.obs.registry.MetricsRegistry`.

Three renderings of the same snapshot:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` preamble, cumulative ``_bucket{le="..."}``
  series with the mandatory ``+Inf`` bucket, ``_sum`` / ``_count``), fit
  for a future ``/metrics`` scrape endpoint.
* :func:`render_json` — a schema-stable dict for ``--metrics-json``
  dumps (counters/gauges as name->value maps, histograms with bucket
  edges, cumulative counts, sum, count, and the p50/p95/p99 triple).
* :func:`render_summary` — a fixed-width table for CLI end-of-run
  output, nonzero series only.

:func:`parse_prometheus_text` is the strict inverse used by the
round-trip tests: it accepts exactly what :func:`render_prometheus`
emits (no escapes, no labels besides ``le``, no timestamps) and raises
``ValueError`` on anything else, so a formatting regression fails loudly
instead of drifting.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Dict, List, Tuple

if TYPE_CHECKING:  # import cycle: registry delegates to this module
    from repro.obs.registry import MetricsRegistry

__all__ = [
    "render_prometheus",
    "render_json",
    "render_summary",
    "parse_prometheus_text",
]

#: JSON export schema version; bump on any shape change and say why in
#: ARCHITECTURE.md.  Consumers pin against this, not against key sets.
JSON_SCHEMA_VERSION = 1


def _fmt(value: float) -> str:
    """Render a float the Prometheus way: integral values without ``.0``."""
    if value != value or value in (float("inf"), float("-inf")):
        raise ValueError(f"non-finite sample value {value!r}")
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _cumulative(counts: List[int]) -> List[int]:
    out: List[int] = []
    running = 0
    for count in counts:
        running += count
        out.append(running)
    return out


def render_prometheus(registry: "MetricsRegistry") -> str:
    """The registry snapshot in Prometheus text exposition format."""
    lines: List[str] = []
    for counter in registry.counters():
        lines.append(f"# HELP {counter.name} {counter.help}")
        lines.append(f"# TYPE {counter.name} counter")
        lines.append(f"{counter.name} {_fmt(counter.value)}")
    for gauge in registry.gauges():
        lines.append(f"# HELP {gauge.name} {gauge.help}")
        lines.append(f"# TYPE {gauge.name} gauge")
        lines.append(f"{gauge.name} {_fmt(gauge.value)}")
    for histogram in registry.histograms():
        lines.append(f"# HELP {histogram.name} {histogram.help}")
        lines.append(f"# TYPE {histogram.name} histogram")
        cumulative = _cumulative(histogram.counts)
        for edge, count in zip(histogram.buckets, cumulative):
            lines.append(f'{histogram.name}_bucket{{le="{_fmt(edge)}"}} {count}')
        lines.append(f'{histogram.name}_bucket{{le="+Inf"}} {cumulative[-1]}')
        lines.append(f"{histogram.name}_sum {_fmt(histogram.sum)}")
        lines.append(f"{histogram.name}_count {histogram.count}")
    return "\n".join(lines) + "\n"


def render_json(registry: "MetricsRegistry") -> Dict[str, object]:
    """Schema-stable JSON-ready snapshot (see :data:`JSON_SCHEMA_VERSION`)."""
    histograms: Dict[str, object] = {}
    for histogram in registry.histograms():
        histograms[histogram.name] = {
            "help": histogram.help,
            "buckets": list(histogram.buckets),
            "cumulative_counts": _cumulative(histogram.counts),
            "sum": histogram.sum,
            "count": histogram.count,
            **histogram.percentiles(),
        }
    return {
        "schema_version": JSON_SCHEMA_VERSION,
        "counters": {c.name: c.value for c in registry.counters()},
        "gauges": {g.name: g.value for g in registry.gauges()},
        "histograms": histograms,
    }


def render_summary(registry: "MetricsRegistry") -> str:
    """Fixed-width end-of-run table; series that never moved are elided."""
    width = max(
        [len(c.name) for c in registry.counters()]
        + [len(g.name) for g in registry.gauges()]
        + [len(h.name) for h in registry.histograms()]
    )
    lines = ["-- metrics summary " + "-" * max(0, width - 8)]
    for counter in registry.counters():
        if counter.value:
            lines.append(f"{counter.name:<{width}}  {_fmt(counter.value)}")
    for gauge in registry.gauges():
        if gauge.value:
            lines.append(f"{gauge.name:<{width}}  {_fmt(gauge.value)}")
    for histogram in registry.histograms():
        if histogram.count:
            p = histogram.percentiles()
            lines.append(
                f"{histogram.name:<{width}}  count={histogram.count} "
                f"sum={histogram.sum:.6g} p50={p['p50']:.6g} "
                f"p95={p['p95']:.6g} p99={p['p99']:.6g}"
            )
    if len(lines) == 1:
        lines.append("(no samples recorded)")
    return "\n".join(lines)


# A sample line as render_prometheus writes it: bare metric name, one
# optional le label, a finite float value.  Anything else is a parse
# error by design.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{le="(?P<le>[^"]+)"\})?'
    r" (?P<value>-?(?:\d+(?:\.\d+)?(?:e-?\d+)?))$"
)


def parse_prometheus_text(
    text: str,
) -> Dict[str, Dict[str, object]]:
    """Strictly parse :func:`render_prometheus` output back into families.

    Returns ``{family_name: {"help": str, "type": str, "samples":
    {sample_key: float}}}`` where ``sample_key`` is the bare series name,
    or ``name_bucket{le="..."}`` for histogram buckets.  Raises
    ``ValueError`` on unknown line shapes, samples without a preceding
    ``# TYPE``, or duplicate series.
    """
    families: Dict[str, Dict[str, object]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP ") :].partition(" ")
            families.setdefault(
                name, {"help": "", "type": "", "samples": {}}
            )["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            name, _, type_text = line[len("# TYPE ") :].partition(" ")
            if type_text not in ("counter", "gauge", "histogram"):
                raise ValueError(f"line {lineno}: unknown type {type_text!r}")
            families.setdefault(
                name, {"help": "", "type": "", "samples": {}}
            )["type"] = type_text
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unexpected comment {line!r}")
        match = _SAMPLE_RE.match(line)
        if match is None and line.endswith("}"):
            # +Inf bucket: the one value _SAMPLE_RE's float cannot spell.
            match = re.match(
                r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)\{le="\+Inf"\}'
                r" (?P<value>\d+)$",
                line,
            )
            if match is None:
                raise ValueError(f"line {lineno}: malformed sample {line!r}")
            family = _family_of(match.group("name"))
            _add_sample(
                families,
                family,
                f'{match.group("name")}{{le="+Inf"}}',
                float(match.group("value")),
                lineno,
            )
            continue
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        le = match.group("le")
        family = _family_of(name)
        key = name if le is None else f'{name}{{le="{le}"}}'
        _add_sample(families, family, key, float(match.group("value")), lineno)
    return families


def _family_of(series: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if series.endswith(suffix):
            return series[: -len(suffix)]
    return series


def _add_sample(
    families: Dict[str, Dict[str, object]],
    family: str,
    key: str,
    value: float,
    lineno: int,
) -> None:
    if family not in families or not families[family]["type"]:
        raise ValueError(f"line {lineno}: sample {key!r} before its # TYPE")
    samples = families[family]["samples"]
    assert isinstance(samples, dict)
    if key in samples:
        raise ValueError(f"line {lineno}: duplicate series {key!r}")
    samples[key] = value


def _edges_and_counts(
    family: Dict[str, object],
) -> Tuple[List[float], List[float]]:
    """Helper for tests: (finite edges, cumulative counts incl. +Inf)."""
    samples = family["samples"]
    assert isinstance(samples, dict)
    edges: List[float] = []
    counts: List[float] = []
    for key, value in samples.items():
        if '{le="' not in key:
            continue
        le = key.split('{le="', 1)[1].rstrip('"}')
        edges.append(float("inf") if le == "+Inf" else float(le))
        counts.append(value)
    return edges, counts
