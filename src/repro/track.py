"""Command-line influential-node tracker.

Turns the library into a usable tool: replay a SNAP-format trace (or a
named synthetic dataset) through any tracking algorithm, print the
influential set at a chosen cadence, and optionally checkpoint the tracker
state for later resumption.

Examples::

    # Track the 10 most influential users in a retweet trace.
    python -m repro.track --input retweets.txt --k 10 --epsilon 0.2 \
        --lifetime-p 0.001 --max-lifetime 1000 --report-every 1000

    # No trace at hand: replay a named synthetic dataset.
    python -m repro.track --dataset twitter-hk --events 2000 --k 5

    # Periodic checkpoints (JSON) for crash recovery.
    python -m repro.track --dataset gowalla --events 1000 \
        --checkpoint state.json --checkpoint-every 500
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional

from repro.analysis.stability import SolutionHistory
from repro.core.tracker import InfluenceTracker
from repro.datasets.loaders import load_snap_edges
from repro.datasets.registry import dataset_names, make_interactions
from repro.persistence import save_checkpoint
from repro.tdn.lifetimes import ConstantLifetime, GeometricLifetime, InfiniteLifetime
from repro.tdn.stream import BatchedStream


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.track",
        description="Track influential nodes in an interaction stream.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--input", help="SNAP-format trace: 'source target [timestamp]' lines"
    )
    source.add_argument(
        "--dataset",
        choices=dataset_names(),
        help="replay a named synthetic dataset instead of a file",
    )
    parser.add_argument("--events", type=int, default=2_000,
                        help="events to generate (--dataset) or cap (--input)")
    parser.add_argument("--batch-size", type=int, default=1,
                        help="interactions per time step")
    parser.add_argument("--algorithm", default="hist-approx",
                        choices=["hist-approx", "basic-reduction", "sieve-adn",
                                 "greedy", "random"])
    parser.add_argument("--k", type=int, default=10, help="budget")
    parser.add_argument("--epsilon", type=float, default=0.2)
    parser.add_argument("--lifetime", default="geometric",
                        choices=["geometric", "constant", "infinite"],
                        help="lifetime policy family")
    parser.add_argument("--lifetime-p", type=float, default=0.01,
                        help="geometric forgetting probability")
    parser.add_argument("--max-lifetime", type=int, default=1_000,
                        help="lifetime cap L (also the constant window W)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=1,
                        help="oracle evaluation workers (N > 1 shards spread "
                             "sweeps across N processes; identical results)")
    parser.add_argument("--report-every", type=int, default=200,
                        help="print the solution every N steps")
    parser.add_argument("--checkpoint", default=None,
                        help="JSON checkpoint path (written periodically)")
    parser.add_argument("--checkpoint-every", type=int, default=1_000)
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-step reports; print only the summary")
    parser.add_argument("--metrics", action="store_true",
                        help="enable kernel sweep sampling and print the "
                             "metrics summary after the run")
    parser.add_argument("--metrics-json", default=None, metavar="PATH",
                        help="write the full metrics registry as JSON to "
                             "PATH (implies --metrics)")
    parser.add_argument("--metrics-every", type=int, default=16,
                        help="sample 1 in N kernel sweeps (counter totals "
                             "are rescaled; lower = finer, slower)")
    return parser


def make_policy(args):
    if args.lifetime == "infinite":
        return InfiniteLifetime()
    if args.lifetime == "constant":
        return ConstantLifetime(args.max_lifetime)
    return GeometricLifetime(args.lifetime_p, args.max_lifetime, seed=args.seed + 1)


def load_interactions(args):
    if args.dataset:
        return make_interactions(args.dataset, args.events, seed=args.seed)
    return load_snap_edges(args.input, max_rows=args.events)


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    interactions = load_interactions(args)
    if not interactions:
        print("no interactions to process", file=sys.stderr)
        return 1
    metrics_enabled = args.metrics or args.metrics_json is not None
    if metrics_enabled:
        # Imported from the kernels layer, not the api facade: track sits
        # below api in the layer DAG (see repro.lint.config.LAYERS).
        from repro.kernels.instrument import enable_kernel_metrics

        enable_kernel_metrics(every=max(1, args.metrics_every))
    stream = BatchedStream(interactions, batch_size=args.batch_size)
    tracker = InfluenceTracker(
        args.algorithm,
        k=args.k,
        epsilon=args.epsilon,
        lifetime_policy=make_policy(args),
        L=args.max_lifetime if args.algorithm == "basic-reduction" else None,
        seed=args.seed,
        workers=args.workers,
    )
    history = SolutionHistory()
    started = time.perf_counter()
    solution = None
    try:
        for t, batch in stream:
            solution = tracker.step(t, batch)
            if t % args.report_every == 0:
                history.record(t, solution.nodes)
                if not args.quiet:
                    nodes = ", ".join(str(n) for n in solution.nodes[:8])
                    suffix = "..." if len(solution.nodes) > 8 else ""
                    print(f"t={t:>7}  value={solution.value:>8.0f}  [{nodes}{suffix}]")
            if (
                args.checkpoint
                and t > 0
                and t % args.checkpoint_every == 0
            ):
                save_checkpoint(args.checkpoint, tracker.graph, tracker.algorithm)
        elapsed = time.perf_counter() - started
        if args.checkpoint:
            save_checkpoint(args.checkpoint, tracker.graph, tracker.algorithm)
    finally:
        # Snapshot parallel health before close() transitions it to CLOSED.
        health = tracker.health_report()
        tracker.close()

    # Imported from the kernels layer, not the api facade: track sits
    # below api in the layer DAG (see repro.lint.config.LAYERS).
    from repro.kernels import native_compile_seconds, resolve_backend

    backend = resolve_backend(None)
    compile_seconds = native_compile_seconds()
    compile_note = (
        f" (compiled in {compile_seconds:.2f}s)"
        if backend == "native" and compile_seconds is not None
        else ""
    )

    print("\nsummary")
    print(f"  events processed:   {len(interactions)}")
    print(f"  kernel backend:     {backend}{compile_note}")
    if args.workers > 1:
        print(f"  evaluation workers: {args.workers}")
        if health is not None:
            state = health["state"]
            reason = health["reason"]
            detail = f" ({reason})" if reason else ""
            print(f"  parallel engine:    {state}{detail}")
            incidents = health.get("incidents") or {}
            if incidents:
                counts = ", ".join(f"{k}={v}" for k, v in incidents.items())
                print(f"  recovered faults:   {counts} "
                      f"({health['recoveries']} recoveries)")
    print(f"  elapsed:            {elapsed:.1f}s "
          f"({len(interactions) / max(elapsed, 1e-9):.0f} events/s)")
    print(f"  oracle calls:       {tracker.oracle_calls}")
    if solution is not None:
        print(f"  final value:        {solution.value:.0f}")
        print(f"  final influencers:  {', '.join(str(n) for n in solution.nodes)}")
    if len(history) >= 2:
        print(f"  solution stability: {history.mean_stability():.3f} "
              f"(mean Jaccard between consecutive reports)")
    if metrics_enabled:
        from repro.kernels.instrument import disable_kernel_metrics
        from repro.obs.registry import metrics_registry

        registry = metrics_registry()
        if args.metrics_json is not None:
            import json

            with open(args.metrics_json, "w", encoding="utf-8") as handle:
                json.dump(registry.render_json(), handle, indent=2)
                handle.write("\n")
            print(f"\nmetrics written to {args.metrics_json}")
        if args.metrics:
            print("\nmetrics")
            print(registry.render_summary())
        disable_kernel_metrics()
    return 0


if __name__ == "__main__":
    sys.exit(main())
