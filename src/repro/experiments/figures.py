"""Per-figure experiment runners (Table I, Figs. 7-12).

Each runner regenerates one paper artifact at a configurable scale and
returns a :class:`FigureResult` whose rows mirror the paper's plotted
series.  Absolute numbers differ from the paper (the streams are synthetic
stand-ins at ~1/1000 scale and the substrate is pure Python), but each
runner's docstring states the *shape* the paper reports, and the
EXPERIMENTS.md record compares shapes.

The baseline-comparison artifacts (Figs. 13-14) live in
``repro.experiments.figures_baselines``; ablations beyond the paper live in
``repro.experiments.ablations``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.baselines.greedy_recompute import GreedyRecompute
from repro.baselines.random_baseline import RandomBaseline
from repro.core.basic_reduction import BasicReduction
from repro.core.hist_approx import HistApprox
from repro.datasets.registry import dataset_names, make_stream, table1_rows
from repro.experiments.harness import TrackingReport, run_tracking
from repro.experiments.metrics import (
    calls_ratio_series,
    downsample,
    final_calls_ratio,
    mean_value_ratio,
)
from repro.tdn.lifetimes import GeometricLifetime


@dataclass
class FigureResult:
    """One reproduced artifact: identifier, rows, and free-form notes."""

    figure_id: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def format_table(self) -> str:
        """Render the rows as an aligned text table."""
        if not self.rows:
            return f"[{self.figure_id}] (no rows)"
        columns = list(self.rows[0])
        widths = {
            c: max(len(c), *(len(_fmt(row.get(c))) for row in self.rows))
            for c in columns
        }
        lines = [
            f"== {self.figure_id} ==",
            "  ".join(c.ljust(widths[c]) for c in columns),
        ]
        for row in self.rows:
            lines.append("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


# ----------------------------------------------------------------------
# Factories shared by the runners
# ----------------------------------------------------------------------
def hist_factory(k: int, epsilon: float, *, refine_head: bool = False) -> Callable:
    """Factory for HISTAPPROX bound to ``(k, epsilon)``."""
    return lambda graph: HistApprox(k, epsilon, graph, refine_head=refine_head)


def basic_factory(k: int, epsilon: float, L: int) -> Callable:
    """Factory for BASICREDUCTION bound to ``(k, epsilon, L)``."""
    return lambda graph: BasicReduction(k, epsilon, L, graph)


def greedy_factory(k: int) -> Callable:
    """Factory for the lazy-greedy baseline."""
    return lambda graph: GreedyRecompute(k, graph)


def random_factory(k: int, seed: int = 0) -> Callable:
    """Factory for the random baseline."""
    return lambda graph: RandomBaseline(k, graph, seed=seed)


# ----------------------------------------------------------------------
# Table I
# ----------------------------------------------------------------------
def table1(num_events: int = 2000, seed: int = 0) -> FigureResult:
    """Reproduce Table I: dataset summary, paper counts vs generated counts."""
    rows = table1_rows(num_events=num_events, seed=seed)
    return FigureResult(
        figure_id="Table I",
        rows=rows,
        notes=(
            "generated_* columns describe the synthetic stand-ins at "
            f"{num_events} events (paper traces are 0.5M-17.5M events)"
        ),
    )


# ----------------------------------------------------------------------
# Fig. 7 — BasicReduction vs HistApprox across lifetime skew p
# ----------------------------------------------------------------------
def fig7(
    datasets: Sequence[str] = ("brightkite", "gowalla"),
    num_events: int = 600,
    k: int = 10,
    epsilon: float = 0.1,
    L: int = 150,
    p_values: Sequence[float] = (0.005, 0.01, 0.02, 0.04),
    seed: int = 0,
) -> FigureResult:
    """Fig. 7: solution value and oracle calls of BASIC vs HIST across p.

    Paper shape: value ratio HIST/BASIC > 0.98 everywhere; BASIC's call
    count falls as p grows (short lifetimes fan out to fewer instances);
    HIST uses < ~0.1 of BASIC's calls.

    Paper scale: p in 0.001..0.008 with L = 1000 over 5000 steps; here the
    same mean-lifetime/L ratios are kept at reduced absolute scale.
    """
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        for p in p_values:
            stream = make_stream(dataset, num_events, seed=seed)
            policy = GeometricLifetime(p, L, seed=seed + 1)
            report = run_tracking(
                stream,
                {
                    "basic": basic_factory(k, epsilon, L),
                    "hist": hist_factory(k, epsilon),
                },
                lifetime_policy=policy,
                query_interval=5,
            )
            basic, hist = report["basic"], report["hist"]
            rows.append(
                {
                    "dataset": dataset,
                    "p": p,
                    "value_basic": basic.mean_value,
                    "value_hist": hist.mean_value,
                    "value_ratio": (
                        hist.mean_value / basic.mean_value if basic.mean_value else 1.0
                    ),
                    "calls_basic": basic.total_calls,
                    "calls_hist": hist.total_calls,
                    "calls_ratio": (
                        hist.total_calls / basic.total_calls
                        if basic.total_calls
                        else 0.0
                    ),
                }
            )
    return FigureResult(
        figure_id="Fig. 7",
        rows=rows,
        notes="expect value_ratio > 0.95, calls_basic decreasing in p, calls_ratio << 1",
    )


# ----------------------------------------------------------------------
# Figs. 8/9/10 share one quality run per dataset
# ----------------------------------------------------------------------
def quality_run(
    dataset: str,
    num_events: int = 600,
    k: int = 10,
    epsilons: Sequence[float] = (0.1, 0.15, 0.2),
    L: int = 500,
    p: float = 0.004,
    seed: int = 0,
    query_interval: int = 5,
    include_random: bool = True,
) -> TrackingReport:
    """One harness run with HISTAPPROX(eps...) vs Greedy (vs Random).

    The paper's Figs. 8, 9 and 10 are three readouts of this single
    experiment (value over time, time-averaged value ratio, cumulative
    oracle-call ratio), so the runners below share this function.
    """
    algorithms: Dict[str, Callable] = {
        f"hist(eps={eps})": hist_factory(k, eps) for eps in epsilons
    }
    algorithms["greedy"] = greedy_factory(k)
    if include_random:
        algorithms["random"] = random_factory(k, seed=seed + 2)
    stream = make_stream(dataset, num_events, seed=seed)
    policy = GeometricLifetime(p, L, seed=seed + 1)
    return run_tracking(
        stream, algorithms, lifetime_policy=policy, query_interval=query_interval
    )


def fig8(
    datasets: Optional[Sequence[str]] = None,
    num_events: int = 600,
    k: int = 10,
    epsilons: Sequence[float] = (0.1, 0.15, 0.2),
    L: int = 500,
    p: float = 0.004,
    seed: int = 0,
    series_points: int = 8,
) -> FigureResult:
    """Fig. 8: solution value over time, per dataset.

    Paper shape: greedy on top, HISTAPPROX close below it (all eps), random
    far below.  Rows carry a downsampled value series per algorithm.
    """
    datasets = list(datasets) if datasets is not None else dataset_names()
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        report = quality_run(
            dataset, num_events, k, epsilons, L, p, seed, query_interval=5
        )
        for name in report.names():
            series = report[name]
            rows.append(
                {
                    "dataset": dataset,
                    "algorithm": name,
                    "mean_value": series.mean_value,
                    "value_series": [
                        round(v, 1) for v in downsample(series.values, series_points)
                    ],
                }
            )
    return FigureResult(
        figure_id="Fig. 8",
        rows=rows,
        notes="expect greedy >= hist(all eps) >> random on every dataset",
    )


def fig9(
    datasets: Optional[Sequence[str]] = None,
    num_events: int = 600,
    k: int = 10,
    epsilons: Sequence[float] = (0.1, 0.15, 0.2),
    L: int = 500,
    p: float = 0.004,
    seed: int = 0,
) -> FigureResult:
    """Fig. 9: value ratio w.r.t. greedy, averaged along time.

    Paper shape: ratios in the ~0.85-1.0 band, decreasing as eps grows.
    """
    datasets = list(datasets) if datasets is not None else dataset_names()
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        report = quality_run(
            dataset, num_events, k, epsilons, L, p, seed,
            query_interval=5, include_random=False,
        )
        greedy = report["greedy"]
        row: Dict[str, object] = {"dataset": dataset}
        for eps in epsilons:
            row[f"ratio(eps={eps})"] = mean_value_ratio(
                report[f"hist(eps={eps})"], greedy
            )
        rows.append(row)
    return FigureResult(
        figure_id="Fig. 9",
        rows=rows,
        notes="expect every ratio >= ~0.8 and ratios non-increasing in eps",
    )


def fig10(
    datasets: Optional[Sequence[str]] = None,
    num_events: int = 600,
    k: int = 10,
    epsilons: Sequence[float] = (0.1, 0.15, 0.2),
    L: int = 500,
    p: float = 0.004,
    seed: int = 0,
    series_points: int = 6,
) -> FigureResult:
    """Fig. 10: cumulative oracle-call ratio HISTAPPROX/greedy over time.

    Paper shape: ratio well below 1 throughout; smaller for larger eps
    (5-15x fewer calls at eps = 0.2).
    """
    datasets = list(datasets) if datasets is not None else dataset_names()
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        report = quality_run(
            dataset, num_events, k, epsilons, L, p, seed,
            query_interval=5, include_random=False,
        )
        greedy = report["greedy"]
        for eps in epsilons:
            series = report[f"hist(eps={eps})"]
            ratio_curve = calls_ratio_series(series, greedy)
            rows.append(
                {
                    "dataset": dataset,
                    "algorithm": f"hist(eps={eps})",
                    "final_calls_ratio": final_calls_ratio(series, greedy),
                    "ratio_series": [
                        round(r, 3) for r in downsample(ratio_curve, series_points)
                    ],
                }
            )
    return FigureResult(
        figure_id="Fig. 10",
        rows=rows,
        notes="expect final_calls_ratio < 1 everywhere, decreasing in eps",
    )


# ----------------------------------------------------------------------
# Fig. 11 — effect of budget k;  Fig. 12 — effect of max lifetime L
# ----------------------------------------------------------------------
def fig11(
    datasets: Sequence[str] = ("brightkite", "gowalla"),
    num_events: int = 600,
    k_values: Sequence[int] = (10, 20, 40, 80),
    epsilon: float = 0.2,
    L: int = 300,
    p: float = 0.01,
    seed: int = 0,
) -> FigureResult:
    """Fig. 11: HISTAPPROX/greedy ratios across budgets k.

    Paper shape: value ratio stays high for all k; the call ratio *improves*
    (drops) as k grows, because HISTAPPROX scales logarithmically with k
    while greedy scales linearly.
    """
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        for k in k_values:
            stream = make_stream(dataset, num_events, seed=seed)
            policy = GeometricLifetime(p, L, seed=seed + 1)
            report = run_tracking(
                stream,
                {"hist": hist_factory(k, epsilon), "greedy": greedy_factory(k)},
                lifetime_policy=policy,
                query_interval=5,
            )
            hist, greedy = report["hist"], report["greedy"]
            rows.append(
                {
                    "dataset": dataset,
                    "k": k,
                    "value_ratio": mean_value_ratio(hist, greedy),
                    "calls_ratio": final_calls_ratio(hist, greedy),
                }
            )
    return FigureResult(
        figure_id="Fig. 11",
        rows=rows,
        notes="expect value_ratio high for all k; calls_ratio decreasing in k",
    )


def fig12(
    datasets: Sequence[str] = ("brightkite", "gowalla"),
    num_events: int = 600,
    k: int = 10,
    epsilon: float = 0.2,
    L_values: Sequence[int] = (100, 200, 400, 800),
    p: float = 0.01,
    seed: int = 0,
) -> FigureResult:
    """Fig. 12: HISTAPPROX/greedy ratios across maximum lifetimes L.

    Paper shape: L barely affects either ratio (the geometric tail beyond
    the mean is negligible).
    """
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        for L in L_values:
            stream = make_stream(dataset, num_events, seed=seed)
            policy = GeometricLifetime(p, L, seed=seed + 1)
            report = run_tracking(
                stream,
                {"hist": hist_factory(k, epsilon), "greedy": greedy_factory(k)},
                lifetime_policy=policy,
                query_interval=5,
            )
            hist, greedy = report["hist"], report["greedy"]
            rows.append(
                {
                    "dataset": dataset,
                    "L": L,
                    "value_ratio": mean_value_ratio(hist, greedy),
                    "calls_ratio": final_calls_ratio(hist, greedy),
                }
            )
    return FigureResult(
        figure_id="Fig. 12",
        rows=rows,
        notes="expect both ratios roughly flat across L",
    )
