"""The side-by-side tracking harness.

One stream, one shared TDN, many algorithms: the harness advances the clock,
inserts each batch once, then lets every algorithm observe it with its own
oracle counter and its own wall-clock bucket.  This mirrors the paper's
experimental protocol (all methods see the identical lifetimed stream) and
makes the cross-method ratios of Figs. 7-14 well defined.

Algorithms are supplied as *factories* ``(graph) -> TrackingAlgorithm`` so
each run builds fresh state against the shared graph; the harness wires a
fresh counted oracle into each unless the factory sets its own.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.core.tracker import TrackingAlgorithm
from repro.experiments.metrics import AlgorithmSeries
from repro.influence.oracle import InfluenceOracle
from repro.tdn.graph import TDNGraph
from repro.tdn.lifetimes import LifetimePolicy
from repro.tdn.stream import InteractionStream

AlgorithmFactory = Callable[[TDNGraph], TrackingAlgorithm]


@dataclass
class TrackingReport:
    """Everything measured during one harness run.

    Attributes:
        series: per-algorithm measurement series, keyed by the names the
            caller supplied.
        num_steps: number of stream batches replayed.
        num_events: total interactions ingested.
        final_nodes: final solution node set per algorithm.
    """

    series: Dict[str, AlgorithmSeries] = field(default_factory=dict)
    num_steps: int = 0
    num_events: int = 0
    final_nodes: Dict[str, tuple] = field(default_factory=dict)

    def __getitem__(self, name: str) -> AlgorithmSeries:
        return self.series[name]

    def names(self) -> List[str]:
        """Algorithm names in insertion order."""
        return list(self.series)


def run_tracking(
    stream: InteractionStream,
    algorithms: Mapping[str, AlgorithmFactory],
    *,
    lifetime_policy: Optional[LifetimePolicy] = None,
    query_interval: int = 1,
    max_steps: Optional[int] = None,
    graph: Optional[TDNGraph] = None,
) -> TrackingReport:
    """Replay ``stream`` into all ``algorithms`` side by side.

    Args:
        stream: chronological interaction stream (lifetimes are assigned by
            ``lifetime_policy`` for interactions lacking one).
        algorithms: ordered mapping name -> factory.
        lifetime_policy: default lifetime assignment; sampling happens once
            per interaction, so every algorithm sees identical lifetimes.
        query_interval: query (and record) every this-many batches; the
            final batch is always recorded so summary statistics exist.
        max_steps: truncate the stream after this many batches.
        graph: pre-existing shared graph (a fresh one by default).

    Returns:
        A :class:`TrackingReport` with one series per algorithm.
    """
    if query_interval < 1:
        raise ValueError(f"query_interval must be >= 1, got {query_interval}")
    shared_graph = graph if graph is not None else TDNGraph()
    instances: Dict[str, TrackingAlgorithm] = {}
    wall: Dict[str, float] = {}
    for name, factory in algorithms.items():
        instance = factory(shared_graph)
        if getattr(instance, "oracle", None) is None:
            instance.oracle = InfluenceOracle(shared_graph)
        instances[name] = instance
        wall[name] = 0.0
    report = TrackingReport(series={name: AlgorithmSeries(name) for name in instances})

    batches = list(stream if max_steps is None else stream.take(max_steps))
    events_seen = 0
    for index, (t, batch) in enumerate(batches):
        shared_graph.advance_to(t)
        if lifetime_policy is not None:
            batch = [
                i if i.lifetime is not None else lifetime_policy.assign(i)
                for i in batch
            ]
        for interaction in batch:
            shared_graph.add_interaction(interaction)
        events_seen += len(batch)
        is_query_point = (index % query_interval == 0) or (index == len(batches) - 1)
        for name, instance in instances.items():
            started = _time.perf_counter()
            instance.on_batch(t, batch)
            if is_query_point:
                solution = instance.query()
            wall[name] += _time.perf_counter() - started
            if is_query_point:
                report.series[name].record(
                    t=t,
                    value=solution.value,
                    calls=instance.oracle.calls,
                    wall=wall[name],
                    edges=events_seen,
                )
                report.final_nodes[name] = solution.nodes
        report.num_steps = index + 1
    report.num_events = events_seen
    return report
