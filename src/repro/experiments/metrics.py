"""Per-algorithm measurement series and ratio helpers.

The paper reports three families of measurements: solution value over time
(Fig. 8), oracle calls — per-window averages (Fig. 7) and cumulative ratios
(Fig. 10) — and wall-clock throughput in edges/second (Fig. 14).
:class:`AlgorithmSeries` accumulates all three for one algorithm during a
harness run; the module-level helpers compute the cross-algorithm ratios
the figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


@dataclass
class AlgorithmSeries:
    """Measurements for one algorithm across the query points of a run.

    Attributes:
        name: algorithm label.
        times: query time steps.
        values: solution value at each query point.
        cumulative_calls: oracle-call total up to each query point.
        wall_seconds: total wall-clock spent in the algorithm (updates and
            queries) up to each query point.
        edges_processed: interactions ingested up to each query point.
    """

    name: str
    times: List[int] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    cumulative_calls: List[int] = field(default_factory=list)
    wall_seconds: List[float] = field(default_factory=list)
    edges_processed: List[int] = field(default_factory=list)

    def record(
        self,
        t: int,
        value: float,
        calls: int,
        wall: float,
        edges: int,
    ) -> None:
        """Append one query-point measurement."""
        self.times.append(t)
        self.values.append(value)
        self.cumulative_calls.append(calls)
        self.wall_seconds.append(wall)
        self.edges_processed.append(edges)

    # ------------------------------------------------------------------
    @property
    def mean_value(self) -> float:
        """Solution value averaged over query points (paper's Fig. 7a style)."""
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def total_calls(self) -> int:
        """Oracle calls over the whole run (paper's Fig. 7b style)."""
        return self.cumulative_calls[-1] if self.cumulative_calls else 0

    @property
    def total_wall_seconds(self) -> float:
        """Total wall-clock spent in the algorithm."""
        return self.wall_seconds[-1] if self.wall_seconds else 0.0

    @property
    def throughput(self) -> float:
        """Edges processed per second of algorithm time (Fig. 14's metric)."""
        wall = self.total_wall_seconds
        edges = self.edges_processed[-1] if self.edges_processed else 0
        return edges / wall if wall > 0 else 0.0


def value_ratio_series(
    series: AlgorithmSeries, reference: AlgorithmSeries
) -> List[float]:
    """Pointwise ``value / reference value`` (Fig. 9's per-step ratios)."""
    _check_aligned(series, reference)
    return [
        v / r if r > 0 else 1.0 for v, r in zip(series.values, reference.values)
    ]


def mean_value_ratio(series: AlgorithmSeries, reference: AlgorithmSeries) -> float:
    """Time-averaged value ratio (the bars of Fig. 9)."""
    ratios = value_ratio_series(series, reference)
    return sum(ratios) / len(ratios) if ratios else 0.0


def calls_ratio_series(
    series: AlgorithmSeries, reference: AlgorithmSeries
) -> List[float]:
    """Pointwise cumulative-call ratio (the curves of Fig. 10)."""
    _check_aligned(series, reference)
    return [
        c / r if r > 0 else 0.0
        for c, r in zip(series.cumulative_calls, reference.cumulative_calls)
    ]


def final_calls_ratio(series: AlgorithmSeries, reference: AlgorithmSeries) -> float:
    """Cumulative-call ratio at the end of the run (Figs. 11/12's metric)."""
    if not series.cumulative_calls or not reference.cumulative_calls:
        return 0.0
    ref = reference.cumulative_calls[-1]
    return series.cumulative_calls[-1] / ref if ref > 0 else 0.0


def downsample(points: Sequence[float], max_points: int) -> List[float]:
    """Evenly subsample a long series for compact textual reports."""
    if max_points < 1:
        raise ValueError(f"max_points must be >= 1, got {max_points}")
    if len(points) <= max_points:
        return list(points)
    step = len(points) / max_points
    return [points[min(int(i * step), len(points) - 1)] for i in range(max_points)]


def _check_aligned(series: AlgorithmSeries, reference: AlgorithmSeries) -> None:
    if series.times != reference.times:
        raise ValueError(
            f"series {series.name!r} and {reference.name!r} were recorded at "
            "different query points; run them in the same harness call"
        )
