"""Ablation experiments beyond the paper's figures.

These quantify the design choices DESIGN.md calls out:

* ``head_refinement`` — HISTAPPROX with vs without the (1/2 - eps) head
  refinement the paper sketches in its Section IV remark: quality gained
  vs oracle calls paid.
* ``changed_mode`` — the exact-superset ``"ancestors"`` changed-node
  derivation vs the cheap ``"sources"`` heuristic.
* ``interchange`` — the interchange-greedy baseline (Song et al.) on a
  bursty stream, quantifying the paper's claim that swap-based maintenance
  degrades under heavy churn while remaining fine on smooth streams.
* ``epsilon_grid`` — solution value and calls across a wide eps sweep,
  exposing the quality/efficiency trade-off curve of Theorems 7/8.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.baselines.interchange import InterchangeGreedy
from repro.core.hist_approx import HistApprox
from repro.datasets.registry import make_stream
from repro.experiments.figures import FigureResult, greedy_factory, hist_factory
from repro.experiments.harness import run_tracking
from repro.experiments.metrics import final_calls_ratio, mean_value_ratio
from repro.tdn.lifetimes import GeometricLifetime


def head_refinement(
    datasets: Sequence[str] = ("brightkite", "twitter-hk"),
    num_events: int = 500,
    k: int = 10,
    epsilon: float = 0.2,
    L: int = 300,
    p: float = 0.01,
    seed: int = 0,
) -> FigureResult:
    """HISTAPPROX head refinement on/off: value gained vs calls paid."""
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        stream = make_stream(dataset, num_events, seed=seed)
        policy = GeometricLifetime(p, L, seed=seed + 1)
        report = run_tracking(
            stream,
            {
                "hist": hist_factory(k, epsilon),
                "hist+refine": hist_factory(k, epsilon, refine_head=True),
                "greedy": greedy_factory(k),
            },
            lifetime_policy=policy,
            query_interval=5,
        )
        greedy = report["greedy"]
        for name in ("hist", "hist+refine"):
            rows.append(
                {
                    "dataset": dataset,
                    "variant": name,
                    "value_ratio": mean_value_ratio(report[name], greedy),
                    "calls": report[name].total_calls,
                }
            )
    return FigureResult(
        figure_id="Ablation: head refinement",
        rows=rows,
        notes="refinement should never lower the value ratio; calls increase",
    )


def changed_mode(
    datasets: Sequence[str] = ("twitter-hk", "stackoverflow-c2q"),
    num_events: int = 500,
    k: int = 10,
    epsilon: float = 0.2,
    L: int = 300,
    p: float = 0.01,
    seed: int = 0,
) -> FigureResult:
    """Changed-node derivation: exact-superset ancestors vs sources."""

    def _factory(mode: str) -> Callable:
        return lambda graph: HistApprox(k, epsilon, graph, changed_mode=mode)

    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        stream = make_stream(dataset, num_events, seed=seed)
        policy = GeometricLifetime(p, L, seed=seed + 1)
        report = run_tracking(
            stream,
            {
                "ancestors": _factory("ancestors"),
                "sources": _factory("sources"),
                "greedy": greedy_factory(k),
            },
            lifetime_policy=policy,
            query_interval=5,
        )
        greedy = report["greedy"]
        for name in ("ancestors", "sources"):
            rows.append(
                {
                    "dataset": dataset,
                    "mode": name,
                    "value_ratio": mean_value_ratio(report[name], greedy),
                    "calls_ratio_vs_greedy": final_calls_ratio(report[name], greedy),
                }
            )
    return FigureResult(
        figure_id="Ablation: changed-node mode",
        rows=rows,
        notes="sources is cheaper; ancestors should match or beat its value",
    )


def interchange(
    datasets: Sequence[str] = ("twitter-higgs", "stackoverflow-c2a"),
    num_events: int = 400,
    k: int = 10,
    epsilon: float = 0.2,
    L: int = 300,
    p: float = 0.01,
    seed: int = 0,
    query_interval: int = 10,
) -> FigureResult:
    """Interchange greedy vs HISTAPPROX on bursty streams.

    The paper argues swap-based maintenance degrades on highly dynamic
    networks; the burst-heavy stand-ins exercise exactly that regime.
    """

    def _interchange_factory(graph):
        return InterchangeGreedy(k, graph)

    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        stream = make_stream(dataset, num_events, seed=seed)
        policy = GeometricLifetime(p, L, seed=seed + 1)
        report = run_tracking(
            stream,
            {
                "hist": hist_factory(k, epsilon),
                "interchange": _interchange_factory,
                "greedy": greedy_factory(k),
            },
            lifetime_policy=policy,
            query_interval=query_interval,
        )
        greedy = report["greedy"]
        for name in ("hist", "interchange"):
            rows.append(
                {
                    "dataset": dataset,
                    "algorithm": name,
                    "value_ratio": mean_value_ratio(report[name], greedy),
                    "calls": report[name].total_calls,
                    "throughput": round(report[name].throughput, 1),
                }
            )
    return FigureResult(
        figure_id="Ablation: interchange greedy",
        rows=rows,
        notes="interchange pays many calls under churn; hist stays cheap",
    )


def epsilon_grid(
    dataset: str = "gowalla",
    num_events: int = 500,
    k: int = 10,
    epsilons: Sequence[float] = (0.05, 0.1, 0.2, 0.3, 0.4),
    L: int = 300,
    p: float = 0.01,
    seed: int = 0,
) -> FigureResult:
    """Quality/efficiency trade-off across a wide eps sweep."""
    stream = make_stream(dataset, num_events, seed=seed)
    policy = GeometricLifetime(p, L, seed=seed + 1)
    algorithms: Dict[str, Callable] = {
        f"hist(eps={eps})": hist_factory(k, eps) for eps in epsilons
    }
    algorithms["greedy"] = greedy_factory(k)
    report = run_tracking(stream, algorithms, lifetime_policy=policy, query_interval=5)
    greedy = report["greedy"]
    rows = [
        {
            "epsilon": eps,
            "value_ratio": mean_value_ratio(report[f"hist(eps={eps})"], greedy),
            "calls": report[f"hist(eps={eps})"].total_calls,
        }
        for eps in epsilons
    ]
    return FigureResult(
        figure_id="Ablation: epsilon grid",
        rows=rows,
        notes="calls should fall and value_ratio drift down as eps grows",
    )
