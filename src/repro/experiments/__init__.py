"""Experiment harness reproducing every table and figure of the paper.

``harness`` replays one interaction stream into one shared TDN and drives
any number of algorithms side by side, recording solution values, oracle
calls, and wall-clock per algorithm.  ``figures`` contains one runner per
paper artifact (Table I, Figs. 7-14) at a configurable scale; the CLI
(``python -m repro.experiments <figure>``) prints the same rows/series the
paper reports.  EXPERIMENTS.md records paper-versus-measured shapes.
"""

from repro.experiments.harness import TrackingReport, run_tracking
from repro.experiments.metrics import AlgorithmSeries

__all__ = ["run_tracking", "TrackingReport", "AlgorithmSeries"]
