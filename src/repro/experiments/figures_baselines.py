"""Baseline-comparison runners (Figs. 13 and 14).

Fig. 13 compares solution quality of HISTAPPROX against the IC-model
index methods (IMM, TIM+, DIM) relative to greedy, varying the budget ``k``
and the maximum lifetime ``L``.  Fig. 14 compares stream-processing
throughput of the same methods.  Both use the Twitter-Higgs and
StackOverflow-c2q stand-ins, ``eps = 0.3`` for HISTAPPROX, and geometric
lifetimes, matching the paper's Section V setup at reduced scale.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.baselines.dim import DIMIndex
from repro.baselines.imm import IMM
from repro.baselines.tim_plus import TIMPlus
from repro.datasets.registry import make_stream
from repro.experiments.figures import FigureResult, greedy_factory, hist_factory
from repro.experiments.harness import run_tracking
from repro.experiments.metrics import mean_value_ratio
from repro.tdn.lifetimes import GeometricLifetime


def imm_factory(
    k: int, *, epsilon: float = 0.3, seed: int = 0, max_rr_sets: int = 2_000
) -> Callable:
    """Factory for the IMM baseline with a tractable RR-set cap."""
    return lambda graph: IMM(
        k, graph, epsilon=epsilon, seed=seed, max_rr_sets=max_rr_sets
    )


def tim_factory(
    k: int, *, epsilon: float = 0.3, seed: int = 0, max_rr_sets: int = 2_000
) -> Callable:
    """Factory for the TIM+ baseline with a tractable RR-set cap."""
    return lambda graph: TIMPlus(
        k, graph, epsilon=epsilon, seed=seed, max_rr_sets=max_rr_sets
    )


def dim_factory(
    k: int, *, beta: float = 4.0, seed: int = 0, max_sketches: int = 600
) -> Callable:
    """Factory for the DIM-style index with a tractable pool cap."""
    return lambda graph: DIMIndex(
        k, graph, beta=beta, seed=seed, max_sketches=max_sketches
    )


def _comparison_algorithms(k: int, epsilon: float, seed: int) -> Dict[str, Callable]:
    return {
        "hist": hist_factory(k, epsilon),
        "imm": imm_factory(k, seed=seed),
        "tim+": tim_factory(k, seed=seed),
        "dim": dim_factory(k, seed=seed),
        "greedy": greedy_factory(k),
    }


def fig13(
    datasets: Sequence[str] = ("twitter-higgs", "stackoverflow-c2q"),
    num_events: int = 400,
    k_values: Sequence[int] = (5, 10, 20),
    L_values: Sequence[int] = (100, 200, 400),
    k_fixed: int = 10,
    L_fixed: int = 200,
    epsilon: float = 0.3,
    p: float = 0.01,
    seed: int = 0,
    query_interval: int = 20,
) -> FigureResult:
    """Fig. 13: solution quality ratio w.r.t. greedy, vs k and vs L.

    Paper shape: HISTAPPROX, IMM, TIM+ all close to greedy; DIM less stable
    and clearly worse on the StackOverflow-style (high-churn) workload than
    on Twitter-Higgs.
    """
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        for k in k_values:
            rows.append(
                _quality_row(
                    dataset,
                    "k",
                    k,
                    num_events,
                    k,
                    L_fixed,
                    epsilon,
                    p,
                    seed,
                    query_interval,
                )
            )
        for L in L_values:
            rows.append(
                _quality_row(
                    dataset,
                    "L",
                    L,
                    num_events,
                    k_fixed,
                    L,
                    epsilon,
                    p,
                    seed,
                    query_interval,
                )
            )
    return FigureResult(
        figure_id="Fig. 13",
        rows=rows,
        notes=(
            "expect hist/imm/tim+ ratios near 1; dim lower and least stable, "
            "worst on stackoverflow-c2q"
        ),
    )


def _quality_row(
    dataset: str,
    swept: str,
    swept_value: int,
    num_events: int,
    k: int,
    L: int,
    epsilon: float,
    p: float,
    seed: int,
    query_interval: int,
) -> Dict[str, object]:
    stream = make_stream(dataset, num_events, seed=seed)
    policy = GeometricLifetime(p, L, seed=seed + 1)
    report = run_tracking(
        stream,
        _comparison_algorithms(k, epsilon, seed),
        lifetime_policy=policy,
        query_interval=query_interval,
    )
    greedy = report["greedy"]
    row: Dict[str, object] = {"dataset": dataset, "swept": swept, "value": swept_value}
    for name in ("hist", "imm", "tim+", "dim"):
        row[f"ratio_{name}"] = mean_value_ratio(report[name], greedy)
    return row


def fig14(
    datasets: Sequence[str] = ("twitter-higgs", "stackoverflow-c2q"),
    num_events: int = 250,
    k_values: Sequence[int] = (5, 10, 20),
    L_values: Sequence[int] = (100, 200, 400),
    k_fixed: int = 10,
    L_fixed: int = 200,
    epsilon: float = 0.3,
    p: float = 0.01,
    seed: int = 0,
    query_interval: int = 1,
) -> FigureResult:
    """Fig. 14: stream throughput (edges/second), vs k and vs L.

    Paper shape: HISTAPPROX fastest, then greedy and DIM, IMM and TIM+
    slowest (they re-index per query).  Absolute edges/sec are far below
    the paper's C++ numbers — pure Python substrate — but the ordering is
    the reproduced claim.

    The paper's problem statement requires the solution to be available at
    *any* time, so throughput is measured with a query at every step
    (``query_interval=1``); recompute-per-query methods pay their full cost
    each step, exactly as in the paper's Fig. 14.
    """
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        for k in k_values:
            rows.append(
                _throughput_row(
                    dataset,
                    "k",
                    k,
                    num_events,
                    k,
                    L_fixed,
                    epsilon,
                    p,
                    seed,
                    query_interval,
                )
            )
        for L in L_values:
            rows.append(
                _throughput_row(
                    dataset,
                    "L",
                    L,
                    num_events,
                    k_fixed,
                    L,
                    epsilon,
                    p,
                    seed,
                    query_interval,
                )
            )
    return FigureResult(
        figure_id="Fig. 14",
        rows=rows,
        notes="edges/sec per algorithm; expect hist highest, imm/tim+ lowest",
    )


def _throughput_row(
    dataset: str,
    swept: str,
    swept_value: int,
    num_events: int,
    k: int,
    L: int,
    epsilon: float,
    p: float,
    seed: int,
    query_interval: int,
) -> Dict[str, object]:
    stream = make_stream(dataset, num_events, seed=seed)
    policy = GeometricLifetime(p, L, seed=seed + 1)
    report = run_tracking(
        stream,
        _comparison_algorithms(k, epsilon, seed),
        lifetime_policy=policy,
        query_interval=query_interval,
    )
    row: Dict[str, object] = {"dataset": dataset, "swept": swept, "value": swept_value}
    for name in ("hist", "greedy", "dim", "imm", "tim+"):
        row[f"tput_{name}"] = round(report[name].throughput, 1)
    return row
