"""CLI: regenerate any paper artifact.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments fig7 --events 600 --seed 0
    python -m repro.experiments fig8 --datasets brightkite gowalla
    python -m repro.experiments all --events 300   # quick full sweep

Every runner prints the rows the corresponding paper figure plots; see
EXPERIMENTS.md for the recorded paper-versus-measured comparison.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict

from repro.experiments import ablations, figures, figures_baselines

RUNNERS: Dict[str, Callable] = {
    "table1": figures.table1,
    "fig7": figures.fig7,
    "fig8": figures.fig8,
    "fig9": figures.fig9,
    "fig10": figures.fig10,
    "fig11": figures.fig11,
    "fig12": figures.fig12,
    "fig13": figures_baselines.fig13,
    "fig14": figures_baselines.fig14,
    "ablation-head": ablations.head_refinement,
    "ablation-changed": ablations.changed_mode,
    "ablation-interchange": ablations.interchange,
    "ablation-epsilon": ablations.epsilon_grid,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures at reduced scale.",
    )
    parser.add_argument(
        "artifact",
        choices=sorted(RUNNERS) + ["all"],
        help="which artifact to regenerate ('all' runs everything)",
    )
    parser.add_argument(
        "--events", type=int, default=None, help="stream length override"
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    parser.add_argument(
        "--datasets", nargs="+", default=None, help="dataset subset override"
    )
    parser.add_argument(
        "--markdown",
        default=None,
        help="also write the results as a Markdown report to this path",
    )
    args = parser.parse_args(argv)

    names = sorted(RUNNERS) if args.artifact == "all" else [args.artifact]
    collected = []
    for name in names:
        runner = RUNNERS[name]
        kwargs = {}
        if args.events is not None:
            kwargs["num_events"] = args.events
        if args.seed is not None and name != "table1":
            kwargs["seed"] = args.seed
        if args.datasets is not None and _accepts(runner, "datasets"):
            kwargs["datasets"] = args.datasets
        if name == "table1":
            kwargs = {"num_events": args.events or 2000, "seed": args.seed}
        started = time.perf_counter()
        result = runner(**kwargs)
        elapsed = time.perf_counter() - started
        print(result.format_table())
        print(f"[{name} completed in {elapsed:.1f}s]\n")
        collected.append((name, result, elapsed))
    if args.markdown:
        from repro.experiments.report import write_report

        sections = write_report(args.markdown, collected)
        print(f"[wrote {sections} sections to {args.markdown}]")
    return 0


def _accepts(runner: Callable, parameter: str) -> bool:
    import inspect

    return parameter in inspect.signature(runner).parameters


if __name__ == "__main__":
    sys.exit(main())
