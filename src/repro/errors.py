"""The public exception hierarchy.

Every error the package raises on a *boundary* — configuration the
caller got wrong, an unknown influence semantics, persistence payloads
that cannot round-trip, parallel execution degrading below what the
caller asked for — derives from :class:`ReproError`, so ``except
ReproError`` catches everything this package can throw at an API seam.

Each subclass additionally inherits the builtin exception the same
boundary raised historically (``ValueError`` for validation,
``RuntimeError`` for execution state), so pre-existing callers — and the
tests that pin exact message text — keep working unchanged.  New code
should catch the specific subclass.
"""

from __future__ import annotations

__all__ = [
    "ConfigError",
    "DegradedExecutionError",
    "PersistenceError",
    "ReproError",
    "SemanticsError",
]


class ReproError(Exception):
    """Base class of every error raised at a repro API boundary."""


class ConfigError(ReproError, ValueError):
    """A constructor or setting received a value outside its contract."""


class SemanticsError(ConfigError):
    """An influence-semantics (fold) name or parameter was not recognized.

    A :class:`ConfigError` subclass: asking for an unknown fold is a
    configuration mistake, but a distinct one worth catching on its own
    — it is the error persistence raises when a checkpoint names a
    semantics this build does not ship.
    """


class PersistenceError(ReproError, ValueError):
    """A checkpoint payload is malformed, unsupported, or inconsistent."""


class DegradedExecutionError(ReproError, RuntimeError):
    """Parallel/service execution cannot satisfy the caller's contract.

    Raised at the service boundary when an operation is attempted against
    a closed or never-started component; sharded evaluation itself never
    raises this — it degrades to serial and records the fact in the
    health report instead.
    """
