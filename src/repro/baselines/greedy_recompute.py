"""The Greedy baseline: lazy greedy re-run from scratch at every query.

This is the paper's reference method ("we run a greedy algorithm on G_t
which chooses a node with the maximum marginal gain in each round, and
repeats k rounds", with Minoux's lazy-evaluation trick).  It yields the
best solution quality of all compared methods — a ``(1 - 1/e)``
approximation — at a per-query cost of at least one oracle call per alive
node (the initial singleton pass), which is exactly why the streaming
algorithms beat it on efficiency in Figs. 10, 11 and 14.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.tracker import Solution
from repro.influence.oracle import InfluenceOracle
from repro.submodular.functions import SpreadFunction
from repro.submodular.greedy import lazy_greedy_max
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.utils.validation import check_positive_int


class GreedyRecompute:
    """Re-run lazy (CELF) greedy on the current alive graph per query."""

    label = "Greedy"

    def __init__(
        self,
        k: int,
        graph: TDNGraph,
        oracle: Optional[InfluenceOracle] = None,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.graph = graph
        self.oracle = oracle if oracle is not None else InfluenceOracle(graph)
        self._last_time = 0

    def on_batch(self, t: int, batch: Sequence[Interaction]) -> None:
        """Greedy keeps no incremental state; recomputation happens in query."""
        self._last_time = t

    def query(self) -> Solution:
        """Lazy greedy over every alive node, from scratch."""
        candidates = sorted(self.graph.node_set(), key=repr)
        if not candidates:
            return Solution.empty(self._last_time)
        function = SpreadFunction(self.oracle)
        result = lazy_greedy_max(function, candidates, self.k)
        return Solution(
            nodes=tuple(result.nodes), value=float(result.value), time=self._last_time
        )
