"""Sliding-window streaming submodular maximization (Epasto et al., 2017).

An *extension* baseline (the paper discusses it in Related Work as the
state of the art for the sliding-window special case, with a ``(1/3 - eps)``
guarantee).  The algorithm keeps a smooth histogram of SieveStreaming
instances keyed by their *start position*: instance ``s`` has processed
every element from position ``s`` onward.  At query time the answer comes
from the oldest instance whose start lies inside the window.  Redundant
instances — those sandwiched between two instances with eps-close values —
are discarded, keeping ``O(log(k)/eps)`` instances alive.

This class solves the *generic* SSO-over-sliding-window problem for a static
objective (it does not know about TDNs): the reproduction uses it in tests
to cross-validate HISTAPPROX on constant-lifetime streams, where the two
models coincide, and in the ablation benches.
"""

from __future__ import annotations

from typing import Hashable, List, Tuple

from repro.core.sieve_streaming import SieveStreaming
from repro.utils.validation import check_fraction, check_positive_int

Node = Hashable


class SlidingWindowSSO:
    """Smooth-histogram SSO over the last ``window`` stream elements.

    Args:
        function_factory: zero-argument callable returning a fresh
            :class:`SetFunction`; each histogram instance owns one (the
            objective may be stateful, e.g. coverage with internal caches).
        k: cardinality budget.
        epsilon: sieve and histogram resolution.
        window: window length ``W`` in elements.
    """

    label = "SlidingWindowSSO"

    def __init__(
        self,
        function_factory,
        k: int,
        epsilon: float,
        window: int,
    ) -> None:
        self._factory = function_factory
        self.k = check_positive_int(k, "k")
        self.epsilon = check_fraction(epsilon, "epsilon")
        self.window = check_positive_int(window, "window")
        # (start_position, sieve) ascending by start.
        self._instances: List[Tuple[int, SieveStreaming]] = []
        self._position = 0

    # ------------------------------------------------------------------
    def process(self, element: Node) -> None:
        """Ingest the next stream element."""
        start = self._position
        self._position += 1
        # A new instance starts at every element; redundancy removal keeps
        # the set logarithmic.
        self._instances.append(
            (start, SieveStreaming(self._factory(), self.k, self.epsilon))
        )
        for _, sieve in self._instances:
            sieve.process(element)
        self._evict_expired()
        self._reduce_redundancy()

    def _evict_expired(self) -> None:
        """Drop instances that started before the window, keeping one cover.

        The oldest instance whose start is at or before the window head must
        be kept (it is the best available over-approximation of the window),
        but everything older than *it* is useless.
        """
        head = self._position - self.window
        while len(self._instances) >= 2 and self._instances[1][0] <= head:
            del self._instances[0]

    def _reduce_redundancy(self) -> None:
        position = 0
        while position < len(self._instances) - 2:
            anchor_value = self._instances[position][1].query()[1]
            cutoff = (1.0 - self.epsilon) * anchor_value
            farthest = None
            for j in range(len(self._instances) - 1, position, -1):
                if self._instances[j][1].query()[1] >= cutoff:
                    farthest = j
                    break
            if farthest is not None and farthest > position + 1:
                del self._instances[position + 1 : farthest]
            position += 1

    # ------------------------------------------------------------------
    def query(self) -> Tuple[List[Node], float]:
        """Best sieve set of the oldest in-window (or covering) instance."""
        if not self._instances:
            return [], 0.0
        return self._instances[0][1].query()

    @property
    def num_instances(self) -> int:
        """Live histogram instances (diagnostics)."""
        return len(self._instances)
