"""DIM-style dynamically maintained RR-set index (Ohsaka et al., 2016).

DIM keeps a pool of RR sketches alive across graph updates instead of
resampling from scratch per query.  Its two invariants are (i) every sketch
is distributed like a fresh RR set of the *current* graph, and (ii) the pool
is large enough for reliable estimation (DIM grows the pool until its total
weight reaches ``beta * (n + m)``, with ``beta = 32`` in the paper).

This reproduction maintains invariant (i) with *conservative regeneration*:
whenever the probability of a directed pair ``(u, v)`` changes (new
interactions arrived, or alive interactions expired — observed through the
TDN's removal listener), every sketch containing ``v`` is resampled from a
fresh random root, as is every sketch whose root died.  Sketches never grow
incrementally as in the original C++ implementation, so updates here are
strictly more expensive, but the sampled distribution is exact — quality
behaviour (the paper's Fig. 13 instability on fast-churning workloads comes
from estimation variance of the shared pool, which is preserved) and the
relative throughput ordering (faster than re-indexing IMM/TIM+, slower than
HISTAPPROX, Fig. 14) both survive.  The substitution is recorded in
DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.core.tracker import Solution
from repro.influence.oracle import InfluenceOracle
from repro.influence.probabilities import interactions_to_probability
from repro.submodular.functions import CoverageFunction
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_positive, check_positive_int


class DIMIndex:
    """Dynamic RR-set index over the evolving TDN.

    Args:
        k: seed budget.
        graph: shared TDN; the index registers a removal listener to observe
            expiries.
        oracle: counted oracle for reporting comparable spread values.
        beta: pool-sizing parameter (paper suggests 32).
        seed: RNG seed.
        max_sketches: hard cap on the pool (tractability guard).
    """

    label = "DIM"

    def __init__(
        self,
        k: int,
        graph: TDNGraph,
        oracle: Optional[InfluenceOracle] = None,
        *,
        beta: float = 32.0,
        seed: SeedLike = None,
        max_sketches: int = 4_000,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.graph = graph
        self.oracle = oracle if oracle is not None else InfluenceOracle(graph)
        self.beta = check_positive(beta, "beta")
        self.max_sketches = check_positive_int(max_sketches, "max_sketches")
        self._rng = make_rng(seed)
        self._last_time = 0
        # Probability view maintained incrementally: v -> {u: p_uv}.
        self._in_prob: Dict = {}
        # Sketch pool: parallel lists of node-label sets and their roots.
        self._sketches: List[Set] = []
        self._roots: List = []
        # Membership index: node label -> sketch ids containing it.
        self._member_index: Dict = {}
        # Pairs whose alive multiplicity changed since last maintenance.
        self._dirty_pairs: Set = set()
        graph.add_removal_listener(self._on_removal)

    # ------------------------------------------------------------------
    # Update path
    # ------------------------------------------------------------------
    def _on_removal(self, u, v, remaining_count: int) -> None:
        self._dirty_pairs.add((u, v))

    def on_batch(self, t: int, batch: Sequence[Interaction]) -> None:
        """Absorb arrivals and buffered expiries; repair affected sketches."""
        self._last_time = t
        for interaction in batch:
            self._dirty_pairs.add((interaction.source, interaction.target))
        if not self._dirty_pairs:
            self._resize_pool()
            return
        affected_targets = set()
        for u, v in self._dirty_pairs:
            probability = interactions_to_probability(
                self.graph.interaction_count(u, v)
            )
            if probability > 0.0:
                self._in_prob.setdefault(v, {})[u] = probability
            else:
                bucket = self._in_prob.get(v)
                if bucket is not None:
                    bucket.pop(u, None)
                    if not bucket:
                        del self._in_prob[v]
            affected_targets.add(v)
        self._dirty_pairs.clear()
        self._regenerate_affected(affected_targets)
        self._resize_pool()

    def _regenerate_affected(self, targets: Set) -> None:
        """Resample every sketch containing an affected target or a dead root."""
        stale: Set[int] = set()
        for target in targets:
            stale.update(self._member_index.get(target, ()))
        for sketch_id, root in enumerate(self._roots):
            if not self.graph.has_node(root):
                stale.add(sketch_id)
        if not stale:
            return
        alive = self._alive_nodes()
        if not alive:
            # Nothing left to root a sketch at; the pool resets entirely.
            self._sketches.clear()
            self._roots.clear()
            self._member_index.clear()
            return
        for sketch_id in stale:
            self._replace_sketch(sketch_id, alive)

    def _resize_pool(self) -> None:
        """Grow (or shrink) the pool toward total weight ``beta * (n + m)``.

        DIM's sizing rule; ``n + m`` uses distinct alive pairs for ``m``.
        The cap keeps worst cases tractable in pure Python.
        """
        alive = self._alive_nodes()
        if not alive:
            self._sketches.clear()
            self._roots.clear()
            self._member_index.clear()
            return
        target_weight = self.beta * (len(alive) + self.graph.num_pairs)
        current_weight = sum(len(s) for s in self._sketches)
        while (
            current_weight < target_weight
            and len(self._sketches) < self.max_sketches
        ):
            sketch, root = self._sample_sketch(alive)
            sketch_id = len(self._sketches)
            self._sketches.append(sketch)
            self._roots.append(root)
            for node in sketch:
                self._member_index.setdefault(node, set()).add(sketch_id)
            current_weight += len(sketch)
        while current_weight > 2.0 * target_weight and len(self._sketches) > 1:
            current_weight -= self._drop_last_sketch()

    # ------------------------------------------------------------------
    # Sketch sampling
    # ------------------------------------------------------------------
    def _alive_nodes(self) -> List:
        return sorted(self.graph.node_set(), key=repr)

    def _sample_sketch(self, alive: List):
        root = alive[self._rng.randrange(len(alive))]
        visited = {root}
        frontier = [root]
        while frontier:
            node = frontier.pop()
            for in_neighbor, probability in self._in_prob.get(node, {}).items():
                if in_neighbor not in visited and self._rng.random() < probability:
                    visited.add(in_neighbor)
                    frontier.append(in_neighbor)
        return visited, root

    def _replace_sketch(self, sketch_id: int, alive: List) -> None:
        for node in self._sketches[sketch_id]:
            members = self._member_index.get(node)
            if members is not None:
                members.discard(sketch_id)
                if not members:
                    del self._member_index[node]
        sketch, root = self._sample_sketch(alive)
        self._sketches[sketch_id] = sketch
        self._roots[sketch_id] = root
        for node in sketch:
            self._member_index.setdefault(node, set()).add(sketch_id)

    def _drop_last_sketch(self) -> int:
        sketch_id = len(self._sketches) - 1
        sketch = self._sketches.pop()
        self._roots.pop()
        for node in sketch:
            members = self._member_index.get(node)
            if members is not None:
                members.discard(sketch_id)
                if not members:
                    del self._member_index[node]
        return len(sketch)

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------
    def query(self) -> Solution:
        """Greedy max-coverage over the live sketch pool."""
        if not self._sketches:
            return Solution.empty(self._last_time)
        coverage = CoverageFunction(self._sketches)
        seeds = coverage.greedy_cover(self.k)
        if not seeds:
            return Solution.empty(self._last_time)
        value = self.oracle.spread(seeds)
        return Solution(nodes=tuple(seeds), value=float(value), time=self._last_time)

    @property
    def num_sketches(self) -> int:
        """Current pool size (diagnostics)."""
        return len(self._sketches)

    def estimated_spread(self, seeds: Sequence) -> float:
        """DIM's own estimate: ``n * fraction of sketches hit``."""
        if not self._sketches:
            return 0.0
        seed_set = set(seeds)
        hit = sum(1 for sketch in self._sketches if sketch & seed_set)
        return self.graph.num_nodes * hit / len(self._sketches)
