"""TIM+: two-phase influence maximization (Tang, Xiao, Shi, 2014).

TIM+ preceded IMM: phase one estimates ``KPT`` — the expected spread of a
random size-``k`` seed set — by measuring the *width* of sampled RR sets
(the number of in-edges touching the set), and phase two samples
``theta = lambda / KPT`` RR sets and greedily covers them.  Like IMM it is a
static-graph method that must re-index per query; the paper shows it
matching greedy's quality (Fig. 13) at the lowest throughput tier together
with IMM (Fig. 14).

The reproduction keeps the two-phase structure, the ``kappa(R) = 1 - (1 -
w(R)/m)^k`` width statistic, and the geometric search schedule, with a
sample cap for pure-Python tractability.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.baselines.imm import log_binomial
from repro.baselines.rr_sets import RRCollection, sample_rr_set
from repro.core.tracker import Solution
from repro.influence.oracle import InfluenceOracle
from repro.influence.probabilities import WeightedGraphSnapshot
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_fraction, check_positive_int


class TIMPlus:
    """TIM+ re-run per query on the current weighted snapshot.

    Args:
        k: seed budget.
        graph: shared TDN.
        oracle: counted oracle for reporting comparable spread values.
        epsilon: accuracy parameter (paper uses 0.3).
        seed: RNG seed.
        max_rr_sets: cap on sampled RR sets per query.
    """

    label = "TIM+"

    def __init__(
        self,
        k: int,
        graph: TDNGraph,
        oracle: Optional[InfluenceOracle] = None,
        *,
        epsilon: float = 0.3,
        seed: SeedLike = None,
        max_rr_sets: int = 20_000,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.graph = graph
        self.oracle = oracle if oracle is not None else InfluenceOracle(graph)
        self.epsilon = check_fraction(epsilon, "epsilon")
        self.max_rr_sets = check_positive_int(max_rr_sets, "max_rr_sets")
        self._rng = make_rng(seed)
        self._last_time = 0
        self.capped_last_query = False

    # ------------------------------------------------------------------
    def on_batch(self, t: int, batch: Sequence[Interaction]) -> None:
        """TIM+ is static: nothing is maintained between queries."""
        self._last_time = t

    def query(self) -> Solution:
        snapshot = WeightedGraphSnapshot(self.graph)
        if snapshot.num_nodes == 0:
            return Solution.empty(self._last_time)
        seeds = self._run(snapshot)
        if not seeds:
            return Solution.empty(self._last_time)
        value = self.oracle.spread(seeds)
        return Solution(nodes=tuple(seeds), value=float(value), time=self._last_time)

    # ------------------------------------------------------------------
    def _run(self, snapshot: WeightedGraphSnapshot) -> List:
        n = snapshot.num_nodes
        k = min(self.k, n)
        kpt = self._estimate_kpt(snapshot, k)
        lam = (
            (8.0 + 2.0 * self.epsilon)
            * n
            * (math.log(n) + log_binomial(n, k) + math.log(2.0))
            / (self.epsilon**2)
        )
        theta = int(math.ceil(lam / max(kpt, 1.0)))
        self.capped_last_query = theta > self.max_rr_sets
        theta = min(theta, self.max_rr_sets)
        collection = RRCollection(snapshot)
        collection.sample(theta, self._rng)
        seeds, _ = collection.select_seeds(k)
        return seeds

    def _estimate_kpt(self, snapshot: WeightedGraphSnapshot, k: int) -> float:
        """TIM's Alg. 2 (KptEstimation) with a sample cap.

        ``kappa(R) = 1 - (1 - w(R)/m)^k`` where ``w(R)`` counts in-edges
        incident to the RR set; ``E[kappa]`` relates to the mean spread of a
        random size-``k`` seed set, giving the stopping rule below.
        """
        n = snapshot.num_nodes
        m = max(snapshot.num_edges, 1)
        if n <= 1:
            return 1.0
        log_n = math.log(n)
        rounds = max(int(math.log2(n)) - 1, 1)
        sampled = 0
        for i in range(1, rounds + 1):
            count = int(math.ceil((6.0 * log_n + 6.0 * math.log(rounds)) * (2.0**i)))
            count = min(count, self.max_rr_sets - sampled)
            if count <= 0:
                break
            kappa_sum = 0.0
            for _ in range(count):
                rr = sample_rr_set(snapshot, self._rng)
                width = sum(len(snapshot.in_adj[node]) for node in rr)
                kappa_sum += 1.0 - (1.0 - width / m) ** k
            sampled += count
            if kappa_sum / count > 1.0 / (2.0**i):
                return n * kappa_sum / (2.0 * count)
        return 1.0
