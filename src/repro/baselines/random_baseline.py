"""The Random baseline: ``k`` uniformly random alive nodes per query.

The paper uses Random as the quality floor in Fig. 8 — any method worth its
salt must clearly beat it.  The pick is redrawn at every query ("we randomly
pick a set of k nodes from G_t at each time t"), and the reported value is
the true influence spread of the drawn set, which costs one oracle call.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.tracker import Solution
from repro.influence.oracle import InfluenceOracle
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_positive_int


class RandomBaseline:
    """Uniformly random seed sets over the alive node set ``V_t``."""

    label = "Random"

    def __init__(
        self,
        k: int,
        graph: TDNGraph,
        oracle: Optional[InfluenceOracle] = None,
        *,
        seed: SeedLike = None,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.graph = graph
        self.oracle = oracle if oracle is not None else InfluenceOracle(graph)
        self._rng = make_rng(seed)
        self._last_time = 0

    def on_batch(self, t: int, batch: Sequence[Interaction]) -> None:
        """Random keeps no state; only the clock is remembered."""
        self._last_time = t

    def query(self) -> Solution:
        """Draw ``k`` alive nodes uniformly; report their true spread."""
        nodes: List = sorted(self.graph.node_set(), key=repr)
        if not nodes:
            return Solution.empty(self._last_time)
        chosen = self._rng.sample(nodes, min(self.k, len(nodes)))
        value = self.oracle.spread(chosen)
        return Solution(nodes=tuple(chosen), value=float(value), time=self._last_time)
