"""Baseline algorithms the paper compares against (Section V-C).

* :class:`GreedyRecompute` — the lazy-evaluation greedy [27, 32] re-run on
  ``G_t`` at every query; the paper's quality reference.
* :class:`RandomBaseline` — ``k`` uniformly random alive nodes.
* :class:`IMM` — martingale-based RR-set influence maximization
  (Tang et al., 2015), designed for static graphs.
* :class:`TIMPlus` — two-phase RR-set influence maximization
  (Tang et al., 2014), designed for static graphs.
* :class:`DIMIndex` — DIM-style dynamically maintained RR-set index
  (Ohsaka et al., 2016) with conservative sketch regeneration.
* :class:`SlidingWindowSSO` — suffix-based smooth-histogram streaming
  submodular maximization over sliding windows (Epasto et al., 2017);
  an extension used by the ablation benches.
* :class:`InterchangeGreedy` — interchange (swap-based) greedy
  (Song et al., 2017); an extension used by the ablation benches.
"""

from repro.baselines.random_baseline import RandomBaseline
from repro.baselines.greedy_recompute import GreedyRecompute
from repro.baselines.rr_sets import RRCollection, sample_rr_set
from repro.baselines.imm import IMM
from repro.baselines.tim_plus import TIMPlus
from repro.baselines.dim import DIMIndex
from repro.baselines.sliding_window import SlidingWindowSSO
from repro.baselines.interchange import InterchangeGreedy

__all__ = [
    "RandomBaseline",
    "GreedyRecompute",
    "RRCollection",
    "sample_rr_set",
    "IMM",
    "TIMPlus",
    "DIMIndex",
    "SlidingWindowSSO",
    "InterchangeGreedy",
]
