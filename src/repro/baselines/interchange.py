"""Interchange greedy (Song et al., TKDE 2017) — extension baseline.

The interchange approach warm-starts from the previous solution instead of
rebuilding from the empty set: while some non-solution node improves the
objective by at least a ``(1 + gamma)`` factor when swapped against the
weakest solution member, perform the swap.  For monotone submodular
objectives the fixed point is a ``(1/2 - eps)``-approximation.  The paper's
criticism — which the ablation bench `bench_ablation_interchange`
quantifies — is that on *highly* dynamic networks the previous solution
stops being a useful warm start and the method degrades toward full
recomputation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.tracker import Solution
from repro.influence.oracle import InfluenceOracle
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.utils.validation import check_fraction, check_positive_int


class InterchangeGreedy:
    """Swap-based maintenance of a size-``k`` seed set across time.

    Args:
        k: seed budget.
        graph: shared TDN.
        oracle: counted oracle.
        gamma: minimum relative improvement a swap must deliver
            (``f(S') >= (1 + gamma) f(S)``); the approximation knob.
        max_passes: safety bound on full swap sweeps per query.
    """

    label = "Interchange"

    def __init__(
        self,
        k: int,
        graph: TDNGraph,
        oracle: Optional[InfluenceOracle] = None,
        *,
        gamma: float = 0.05,
        max_passes: int = 10,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.graph = graph
        self.oracle = oracle if oracle is not None else InfluenceOracle(graph)
        self.gamma = check_fraction(gamma, "gamma")
        self.max_passes = check_positive_int(max_passes, "max_passes")
        self._solution: List = []
        self._last_time = 0

    # ------------------------------------------------------------------
    def on_batch(self, t: int, batch: Sequence[Interaction]) -> None:
        """Only the clock moves; repair happens lazily at query time."""
        self._last_time = t

    def query(self) -> Solution:
        candidates = sorted(self.graph.node_set(), key=repr)
        if not candidates:
            self._solution = []
            return Solution.empty(self._last_time)
        self._repair_solution(candidates)
        self._improve_by_swaps(candidates)
        value = self.oracle.spread(self._solution) if self._solution else 0.0
        return Solution(
            nodes=tuple(self._solution), value=float(value), time=self._last_time
        )

    # ------------------------------------------------------------------
    def _repair_solution(self, candidates: List) -> None:
        """Drop dead members; refill greedily to size ``k``."""
        alive = set(candidates)
        self._solution = [node for node in self._solution if node in alive]
        while len(self._solution) < min(self.k, len(candidates)):
            base_value = self.oracle.spread(self._solution) if self._solution else 0.0
            best_node, best_value = None, base_value
            in_solution = set(self._solution)
            for node in candidates:
                if node in in_solution:
                    continue
                trial = self.oracle.spread(self._solution + [node])
                if trial > best_value:
                    best_value = trial
                    best_node = node
            if best_node is None:
                break
            self._solution.append(best_node)

    def _improve_by_swaps(self, candidates: List) -> None:
        """Swap sweeps until no ``(1 + gamma)``-improving exchange exists."""
        for _ in range(self.max_passes):
            improved = False
            current_value = (
                self.oracle.spread(self._solution) if self._solution else 0.0
            )
            for position in range(len(self._solution)):
                without = self._solution[:position] + self._solution[position + 1 :]
                in_solution = set(self._solution)
                for node in candidates:
                    if node in in_solution:
                        continue
                    trial = self.oracle.spread(without + [node])
                    if (
                        trial >= (1.0 + self.gamma) * current_value
                        and trial > current_value
                    ):
                        self._solution = without + [node]
                        current_value = trial
                        improved = True
                        in_solution = set(self._solution)
                        break
            if not improved:
                break
