"""IMM: martingale-based influence maximization (Tang, Shi, Xiao, 2015).

IMM is a static-graph RR-set method: it estimates a lower bound ``LB`` on
the optimal spread with a geometric search (the martingale sampling phase),
derives from it the number ``theta`` of RR sets that guarantees an
``(1 - 1/e - eps)`` approximation with high probability, then greedily picks
seeds by max coverage.  The paper runs IMM per query on a snapshot of the
evolving influence graph with ``eps = 0.3`` — it produces near-greedy
quality (Fig. 13) but pays a full re-index per query, giving it the lowest
throughput (Fig. 14).

This reproduction keeps IMM's two-phase structure and formulas but caps the
sample count (``max_rr_sets``) so that pure-Python runs stay tractable; the
cap is recorded on the instance so experiments can report when it bound.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.baselines.rr_sets import RRCollection
from repro.core.tracker import Solution
from repro.influence.oracle import InfluenceOracle
from repro.influence.probabilities import WeightedGraphSnapshot
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_fraction, check_positive_int


def log_binomial(n: int, k: int) -> float:
    """``log C(n, k)`` via lgamma; 0 for degenerate arguments."""
    if k < 0 or k > n or n <= 0:
        return 0.0
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


class IMM:
    """IMM re-run per query on the current weighted snapshot.

    Args:
        k: seed budget.
        graph: shared TDN (snapshot taken at query time).
        oracle: counted oracle used to report the *reachability* value of
            the selected seeds so that cross-method curves are comparable.
        epsilon: IMM's accuracy parameter (paper uses 0.3).
        seed: RNG seed.
        max_rr_sets: hard cap on the number of sampled RR sets per query.
    """

    label = "IMM"

    def __init__(
        self,
        k: int,
        graph: TDNGraph,
        oracle: Optional[InfluenceOracle] = None,
        *,
        epsilon: float = 0.3,
        seed: SeedLike = None,
        max_rr_sets: int = 20_000,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.graph = graph
        self.oracle = oracle if oracle is not None else InfluenceOracle(graph)
        self.epsilon = check_fraction(epsilon, "epsilon")
        self.max_rr_sets = check_positive_int(max_rr_sets, "max_rr_sets")
        self._rng = make_rng(seed)
        self._last_time = 0
        #: True when the last query hit the RR-set cap (tractability guard).
        self.capped_last_query = False

    # ------------------------------------------------------------------
    def on_batch(self, t: int, batch: Sequence[Interaction]) -> None:
        """IMM is static: nothing is maintained between queries."""
        self._last_time = t

    def query(self) -> Solution:
        """Snapshot, sample, select — the full IMM pipeline."""
        snapshot = WeightedGraphSnapshot(self.graph)
        if snapshot.num_nodes == 0:
            return Solution.empty(self._last_time)
        seeds = self._run(snapshot)
        if not seeds:
            return Solution.empty(self._last_time)
        value = self.oracle.spread(seeds)
        return Solution(nodes=tuple(seeds), value=float(value), time=self._last_time)

    # ------------------------------------------------------------------
    def _run(self, snapshot: WeightedGraphSnapshot) -> List:
        n = snapshot.num_nodes
        k = min(self.k, n)
        collection, lower_bound = self._sampling_phase(snapshot, k)
        theta = self._theta_from_bound(n, k, lower_bound)
        self.capped_last_query = theta > self.max_rr_sets
        theta = min(theta, self.max_rr_sets)
        if len(collection) < theta:
            collection.sample(theta - len(collection), self._rng)
        seeds, _ = collection.select_seeds(k)
        return seeds

    def _sampling_phase(
        self, snapshot: WeightedGraphSnapshot, k: int
    ) -> Tuple[RRCollection, float]:
        """IMM Alg. 2: geometric search for a spread lower bound ``LB``."""
        n = snapshot.num_nodes
        collection = RRCollection(snapshot)
        if n <= 1:
            collection.sample(1, self._rng)
            return collection, 1.0
        eps_prime = math.sqrt(2.0) * self.epsilon
        log_terms = log_binomial(n, k) + math.log(n) + math.log(max(math.log2(n), 1.0))
        lambda_prime = (
            (2.0 + 2.0 / 3.0 * eps_prime) * log_terms * n / (eps_prime**2)
        )
        lower_bound = 1.0
        max_rounds = max(int(math.ceil(math.log2(n))) - 1, 1)
        for i in range(1, max_rounds + 1):
            x = n / (2.0**i)
            theta_i = min(int(math.ceil(lambda_prime / x)), self.max_rr_sets)
            if len(collection) < theta_i:
                collection.sample(theta_i - len(collection), self._rng)
            seeds, estimate = collection.select_seeds(k)
            if estimate >= (1.0 + eps_prime) * x:
                lower_bound = estimate / (1.0 + eps_prime)
                break
            if theta_i >= self.max_rr_sets:
                lower_bound = max(estimate, 1.0)
                break
        else:
            lower_bound = max(collection.select_seeds(k)[1], 1.0)
        return collection, lower_bound

    def _theta_from_bound(self, n: int, k: int, lower_bound: float) -> int:
        """IMM's theta = 2n * ((1-1/e) alpha + beta)^2 / (LB * eps^2)."""
        alpha = math.sqrt(math.log(n) + math.log(2.0))
        beta = math.sqrt(
            (1.0 - 1.0 / math.e) * (log_binomial(n, k) + math.log(n) + math.log(2.0))
        )
        numerator = 2.0 * n * ((1.0 - 1.0 / math.e) * alpha + beta) ** 2
        return int(math.ceil(numerator / (max(lower_bound, 1.0) * self.epsilon**2)))
