"""Loading and saving SNAP-style interaction traces.

Users who *do* have the paper's real traces (from snap.stanford.edu) can
replay them through the same pipeline: the loader accepts the common
whitespace-separated ``source target timestamp`` format, sorts by
timestamp, and optionally compresses the raw (often epoch-second)
timestamps to consecutive discrete steps, which is what the algorithms
expect.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.tdn.interaction import Interaction


def load_snap_edges(
    path: Union[str, Path],
    *,
    compress_time: bool = True,
    max_rows: Optional[int] = None,
    comment_prefix: str = "#",
) -> List[Interaction]:
    """Parse a SNAP-style edge list into chronological interactions.

    Each non-comment line must contain ``source target [timestamp]``;
    missing timestamps are assigned the row index.  Self-loops are skipped
    (the TDN model forbids them).

    Args:
        path: file to read.
        compress_time: remap distinct timestamps onto 0, 1, 2, ... steps
            (recommended — raw traces use epoch seconds and the TDN clock
            advances one bucket per step).
        max_rows: stop after this many parsed rows.
        comment_prefix: lines starting with this are skipped.
    """
    rows: List[tuple] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comment_prefix):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise ValueError(
                    f"{path}:{line_number}: expected 'source target [timestamp]', "
                    f"got {stripped!r}"
                )
            source, target = parts[0], parts[1]
            if source == target:
                continue
            timestamp = int(parts[2]) if len(parts) >= 3 else len(rows)
            rows.append((timestamp, source, target))
            if max_rows is not None and len(rows) >= max_rows:
                break
    rows.sort(key=lambda r: r[0])
    if compress_time:
        step_of: dict = {}
        for timestamp, _, _ in rows:
            if timestamp not in step_of:
                step_of[timestamp] = len(step_of)
        return [Interaction(s, t, step_of[ts]) for ts, s, t in rows]
    return [Interaction(s, t, ts) for ts, s, t in rows]


def save_snap_edges(path: Union[str, Path], interactions: Iterable[Interaction]) -> int:
    """Write interactions as ``source target timestamp`` lines; returns count."""
    count = 0
    with open(path, "w") as handle:
        for interaction in interactions:
            handle.write(
                f"{interaction.source} {interaction.target} {interaction.time}\n"
            )
            count += 1
    return count
