"""One-mode projection of co-adoption events (paper Example 2).

Influence is not always directly observable: when user ``u`` buys a T-shirt
and their friend ``v`` buys the same T-shirt two days later, the pair is
evidence that ``u`` influenced ``v`` even though no explicit interaction was
logged.  The projection turns a stream of adoption events ``(user, item,
time)`` into interactions ``<earlier adopter, later adopter, time>`` for
adoptions of the same item within a time window.

To keep the output stream linear in the input (a popular item would
otherwise produce quadratically many pairs), each new adopter is linked to
at most ``max_links`` of the *most recent* previous adopters — the
recency-biased choice also best matches the influence interpretation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.tdn.interaction import Interaction
from repro.utils.validation import check_positive_int

Node = Hashable
AdoptionEvent = Tuple[Node, Hashable, int]  # (user, item, time)


def one_mode_projection(
    events: Iterable[AdoptionEvent],
    *,
    window: int = 7,
    max_links: int = 3,
) -> List[Interaction]:
    """Project adoption events onto user-to-user interactions.

    Args:
        events: chronological ``(user, item, time)`` adoption events.
        window: maximum age (in time steps) of a previous adoption for it to
            count as an influence; older adopters are not linked.
        max_links: cap on interactions created per new adoption.

    Returns:
        Interactions ``<earlier adopter, later adopter, later time>`` in
        chronological order.  Re-adoption by the same user refreshes their
        recency without self-interaction.
    """
    check_positive_int(window, "window")
    check_positive_int(max_links, "max_links")
    # Per item: recent adopters as (time, user), newest at the right.
    recent: Dict[Hashable, deque] = {}
    interactions: List[Interaction] = []
    last_time: Optional[int] = None
    for user, item, time in events:
        if last_time is not None and time < last_time:
            raise ValueError(
                f"events must be chronological; got time {time} after {last_time}"
            )
        last_time = time
        adopters = recent.setdefault(item, deque())
        while adopters and adopters[0][0] < time - window:
            adopters.popleft()
        links = 0
        for prev_time, prev_user in reversed(adopters):
            if links >= max_links:
                break
            if prev_user == user:
                continue
            interactions.append(Interaction(prev_user, user, time))
            links += 1
        adopters.append((time, user))
    return interactions
