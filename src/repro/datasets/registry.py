"""Dataset registry: the paper's six datasets as calibrated generators.

Table I of the paper summarizes the evaluation datasets.  The registry
pairs each with (a) the paper's reported node/interaction counts — used by
the Table I reproduction — and (b) a scaled-down synthetic generator
configuration whose stream exercises the same behaviour (see DESIGN.md
Section 4 for the substitution argument).  Scale is controlled at call time
through ``num_events``; generator shape parameters live here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.datasets.synthetic import lbsn_stream, qa_stream, retweet_stream
from repro.tdn.interaction import Interaction
from repro.tdn.stream import MemoryStream
from repro.utils.rng import SeedLike


@dataclass(frozen=True)
class DatasetSpec:
    """One paper dataset and its synthetic stand-in.

    Attributes:
        name: registry key (paper's dataset name, lower-cased).
        kind: generator family (``lbsn`` / ``retweet`` / ``qa``).
        paper_nodes: node count reported in Table I (a string, since the
            LBSN rows report "users/places" pairs).
        paper_interactions: interaction count reported in Table I.
        description: one-line provenance note.
        generator: callable ``(num_events, seed, events_per_step) ->
            List[Interaction]`` producing the synthetic stand-in stream.
    """

    name: str
    kind: str
    paper_nodes: str
    paper_interactions: int
    description: str
    generator: Callable[..., List[Interaction]]


def _brightkite(
    num_events: int, seed: SeedLike, events_per_step: int
) -> List[Interaction]:
    return lbsn_stream(
        num_places=1200,
        num_users=900,
        num_events=num_events,
        zipf_exponent=1.1,
        drift_interval=400,
        drift_fraction=0.2,
        events_per_step=events_per_step,
        seed=seed,
    )


def _gowalla(
    num_events: int, seed: SeedLike, events_per_step: int
) -> List[Interaction]:
    return lbsn_stream(
        num_places=1600,
        num_users=1100,
        num_events=num_events,
        zipf_exponent=1.05,
        drift_interval=300,
        drift_fraction=0.25,
        events_per_step=events_per_step,
        seed=seed,
    )


def _twitter_higgs(
    num_events: int, seed: SeedLike, events_per_step: int
) -> List[Interaction]:
    # Higgs: one giant announcement burst dominating the trace.
    return retweet_stream(
        num_users=2000,
        num_events=num_events,
        zipf_exponent=1.3,
        burst_interval=800,
        burst_length=250,
        burst_boost=40.0,
        cascade_probability=0.35,
        events_per_step=events_per_step,
        seed=seed,
    )


def _twitter_hk(
    num_events: int, seed: SeedLike, events_per_step: int
) -> List[Interaction]:
    # HK: smaller user base, many repeated interactions, rolling bursts.
    return retweet_stream(
        num_users=700,
        num_events=num_events,
        zipf_exponent=1.15,
        burst_interval=400,
        burst_length=150,
        burst_boost=15.0,
        cascade_probability=0.3,
        events_per_step=events_per_step,
        seed=seed,
    )


def _stackoverflow_c2q(
    num_events: int, seed: SeedLike, events_per_step: int
) -> List[Interaction]:
    return qa_stream(
        num_users=2500,
        num_events=num_events,
        zipf_exponent=1.0,
        epoch_length=250,
        hot_fraction=0.04,
        events_per_step=events_per_step,
        seed=seed,
    )


def _stackoverflow_c2a(
    num_events: int, seed: SeedLike, events_per_step: int
) -> List[Interaction]:
    return qa_stream(
        num_users=2500,
        num_events=num_events,
        zipf_exponent=1.0,
        epoch_length=180,
        hot_fraction=0.06,
        events_per_step=events_per_step,
        seed=seed,
    )


DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="brightkite",
            kind="lbsn",
            paper_nodes="51,406 users / 772,966 places",
            paper_interactions=4_747_281,
            description="LBSN check-ins; influence = place attracting users",
            generator=_brightkite,
        ),
        DatasetSpec(
            name="gowalla",
            kind="lbsn",
            paper_nodes="107,092 users / 1,280,969 places",
            paper_interactions=6_442_892,
            description="LBSN check-ins; influence = place attracting users",
            generator=_gowalla,
        ),
        DatasetSpec(
            name="twitter-higgs",
            kind="retweet",
            paper_nodes="304,198",
            paper_interactions=555_481,
            description="Retweets around the Higgs boson announcement",
            generator=_twitter_higgs,
        ),
        DatasetSpec(
            name="twitter-hk",
            kind="retweet",
            paper_nodes="49,808",
            paper_interactions=2_930_439,
            description="Retweets/mentions during the Umbrella Movement",
            generator=_twitter_hk,
        ),
        DatasetSpec(
            name="stackoverflow-c2q",
            kind="qa",
            paper_nodes="1,627,635",
            paper_interactions=13_664_641,
            description="Comments on questions",
            generator=_stackoverflow_c2q,
        ),
        DatasetSpec(
            name="stackoverflow-c2a",
            kind="qa",
            paper_nodes="1,639,761",
            paper_interactions=17_535_031,
            description="Comments on answers",
            generator=_stackoverflow_c2a,
        ),
    ]
}


def dataset_names() -> List[str]:
    """The six registry keys in the paper's Table I order."""
    return list(DATASETS)


def make_interactions(
    name: str,
    num_events: int,
    *,
    seed: SeedLike = None,
    events_per_step: int = 1,
) -> List[Interaction]:
    """Generate the synthetic stand-in interactions for a named dataset."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        ) from None
    return spec.generator(num_events, seed, events_per_step)


def make_stream(
    name: str,
    num_events: int,
    *,
    seed: SeedLike = None,
    events_per_step: int = 1,
) -> MemoryStream:
    """Generate a replayable :class:`MemoryStream` for a named dataset."""
    return MemoryStream(
        make_interactions(name, num_events, seed=seed, events_per_step=events_per_step)
    )


def table1_rows(
    num_events: Optional[int] = None, seed: SeedLike = 0
) -> List[Dict[str, object]]:
    """Rows reproducing Table I: paper counts next to generated counts.

    With ``num_events`` set, each generator is actually run and the
    realized node/interaction counts of the stand-in are reported next to
    the paper's numbers; without it only the paper metadata is returned.
    """
    rows: List[Dict[str, object]] = []
    for name, spec in DATASETS.items():
        row: Dict[str, object] = {
            "dataset": name,
            "kind": spec.kind,
            "paper_nodes": spec.paper_nodes,
            "paper_interactions": spec.paper_interactions,
        }
        if num_events is not None:
            interactions = make_interactions(name, num_events, seed=seed)
            nodes = {i.source for i in interactions} | {i.target for i in interactions}
            row["generated_nodes"] = len(nodes)
            row["generated_interactions"] = len(interactions)
        rows.append(row)
    return rows
