"""Interaction datasets: synthetic generators, registry, loaders, projection.

The paper evaluates on six real interaction traces (Table I): two LBSN
check-in logs (Brightkite, Gowalla), two Twitter retweet/mention streams
(Higgs, HK), and two Stack Overflow comment streams (c2q, c2a).  Those
traces are not redistributable and the reproduction environment is offline,
so this package provides *synthetic generators* whose outputs exercise the
same algorithmic behaviour (heavy-tailed influencer popularity, recency
churn, bursts), a *registry* that maps each paper dataset to a calibrated,
scaled-down generator configuration, a *loader* for users who have the real
SNAP-format traces on disk, and the one-mode projection of co-adoption
events from the paper's Example 2.
"""

from repro.datasets.synthetic import (
    lbsn_stream,
    qa_stream,
    retweet_stream,
)
from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    make_interactions,
    make_stream,
    table1_rows,
)
from repro.datasets.loaders import load_snap_edges, save_snap_edges
from repro.datasets.projection import one_mode_projection

__all__ = [
    "lbsn_stream",
    "retweet_stream",
    "qa_stream",
    "DatasetSpec",
    "DATASETS",
    "dataset_names",
    "make_interactions",
    "make_stream",
    "table1_rows",
    "load_snap_edges",
    "save_snap_edges",
    "one_mode_projection",
]
