"""Synthetic interaction-stream generators.

Each generator emits a chronological list of bare interactions (no
lifetimes; those are assigned downstream by a
:class:`~repro.tdn.lifetimes.LifetimePolicy`, matching the paper's protocol
of sampling lifetimes at ingestion time).  One interaction is emitted per
time step by default — "we assume one interaction arrives at a time"
(Section V-B) — with ``events_per_step`` available for batched replay.

The three families mirror the paper's three dataset sources:

* :func:`lbsn_stream` — place -> user check-ins with Zipf place popularity
  and slow popularity drift (Brightkite/Gowalla style).  Influential nodes
  are places; their churn is driven by drift.
* :func:`retweet_stream` — user -> user retweets with Zipf influencer
  popularity and exogenous burst events (Twitter-Higgs/HK style).  Bursts
  reproduce the regime where the influential set turns over abruptly.
* :func:`qa_stream` — answer/question author -> commenter interactions with
  fast *topic epochs* (Stack Overflow style): author popularity is redrawn
  every epoch, the highest-churn regime (visible in the paper's Fig. 8(e,f)
  as the largest greedy/streaming gap).
"""

from __future__ import annotations

import itertools
from typing import List, Sequence

from repro.tdn.interaction import Interaction
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_fraction, check_positive, check_positive_int


def _zipf_weights(count: int, exponent: float) -> List[float]:
    """Unnormalized Zipf weights ``rank^-exponent`` for ranks 1..count."""
    return [1.0 / (rank**exponent) for rank in range(1, count + 1)]


def _weighted_index(rng, cumulative: Sequence[float]) -> int:
    """Sample an index from a cumulative weight table by bisection."""
    total = cumulative[-1]
    u = rng.random() * total
    lo, hi = 0, len(cumulative) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        if cumulative[mid] < u:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _cumulative(weights: Sequence[float]) -> List[float]:
    return list(itertools.accumulate(weights))


# ----------------------------------------------------------------------
# LBSN check-ins (Brightkite / Gowalla style)
# ----------------------------------------------------------------------
def lbsn_stream(
    num_places: int,
    num_users: int,
    num_events: int,
    *,
    zipf_exponent: float = 1.1,
    drift_interval: int = 400,
    drift_fraction: float = 0.2,
    events_per_step: int = 1,
    seed: SeedLike = None,
) -> List[Interaction]:
    """Check-in interactions ``<place, user, t>``.

    A check-in means the place attracted (influenced) the user, so the
    *place* is the source.  Place popularity is Zipf-distributed; every
    ``drift_interval`` steps a random ``drift_fraction`` of places have
    their popularity ranks reshuffled, so the set of popular places churns
    slowly — the dynamic the paper's tracking problem is about.

    Args:
        num_places: number of distinct places (influencer side).
        num_users: number of distinct users (influenced side).
        num_events: total interactions to generate.
        zipf_exponent: skew of place popularity.
        drift_interval: steps between popularity reshuffles.
        drift_fraction: fraction of places reshuffled per drift.
        events_per_step: interactions per time step.
        seed: RNG seed.
    """
    check_positive_int(num_places, "num_places")
    check_positive_int(num_users, "num_users")
    check_positive_int(num_events, "num_events")
    check_positive(zipf_exponent, "zipf_exponent")
    check_positive_int(drift_interval, "drift_interval")
    check_fraction(drift_fraction, "drift_fraction", inclusive=True)
    check_positive_int(events_per_step, "events_per_step")
    rng = make_rng(seed)
    weights = _zipf_weights(num_places, zipf_exponent)
    # rank -> place id; reshuffling permutes which place holds which rank.
    rank_to_place = list(range(num_places))
    rng.shuffle(rank_to_place)
    cumulative = _cumulative(weights)
    interactions: List[Interaction] = []
    for event_index in range(num_events):
        step = event_index // events_per_step
        if event_index % (drift_interval * events_per_step) == 0 and event_index > 0:
            _drift_ranks(rng, rank_to_place, drift_fraction)
        rank = _weighted_index(rng, cumulative)
        place = rank_to_place[rank]
        user = rng.randrange(num_users)
        interactions.append(Interaction(f"p{place}", f"u{user}", step))
    return interactions


def _drift_ranks(rng, rank_to_place: List[int], fraction: float) -> None:
    """Reshuffle a random fraction of the rank -> entity assignment."""
    count = max(2, int(len(rank_to_place) * fraction))
    chosen = rng.sample(range(len(rank_to_place)), min(count, len(rank_to_place)))
    values = [rank_to_place[i] for i in chosen]
    rng.shuffle(values)
    for index, value in zip(chosen, values):
        rank_to_place[index] = value


# ----------------------------------------------------------------------
# Twitter retweets (Higgs / HK style)
# ----------------------------------------------------------------------
def retweet_stream(
    num_users: int,
    num_events: int,
    *,
    zipf_exponent: float = 1.2,
    burst_interval: int = 600,
    burst_length: int = 120,
    burst_boost: float = 25.0,
    cascade_probability: float = 0.3,
    events_per_step: int = 1,
    seed: SeedLike = None,
) -> List[Interaction]:
    """Retweet/mention interactions ``<author, retweeter, t>``.

    Baseline author popularity is Zipf; periodically an exogenous *burst*
    (a Higgs-discovery-style announcement) boosts a small random set of
    authors for ``burst_length`` steps, abruptly shifting who is influential
    — the regime where static IM methods go stale (paper Section I).  With
    probability ``cascade_probability`` a retweet's author is itself a
    recent retweeter (second-order spread), creating multi-hop reachability
    rather than a pure star pattern.
    """
    check_positive_int(num_users, "num_users")
    check_positive_int(num_events, "num_events")
    check_positive_int(events_per_step, "events_per_step")
    check_fraction(cascade_probability, "cascade_probability", inclusive=True)
    rng = make_rng(seed)
    weights = _zipf_weights(num_users, zipf_exponent)
    cumulative = _cumulative(weights)
    rank_to_user = list(range(num_users))
    rng.shuffle(rank_to_user)
    burst_authors: List[int] = []
    burst_until = -1
    recent_retweeters: List[int] = []
    interactions: List[Interaction] = []
    for event_index in range(num_events):
        step = event_index // events_per_step
        if step % burst_interval == 0 and step > burst_until and num_users >= 4:
            burst_authors = rng.sample(range(num_users), max(2, num_users // 100))
            burst_until = step + burst_length
        in_burst = step <= burst_until and burst_authors
        if in_burst and rng.random() < burst_boost / (burst_boost + 1.0):
            author = burst_authors[rng.randrange(len(burst_authors))]
        elif recent_retweeters and rng.random() < cascade_probability:
            author = recent_retweeters[rng.randrange(len(recent_retweeters))]
        else:
            author = rank_to_user[_weighted_index(rng, cumulative)]
        retweeter = rng.randrange(num_users)
        while retweeter == author:
            retweeter = rng.randrange(num_users)
        interactions.append(Interaction(f"u{author}", f"u{retweeter}", step))
        recent_retweeters.append(retweeter)
        if len(recent_retweeters) > 50:
            recent_retweeters.pop(0)
    return interactions


# ----------------------------------------------------------------------
# Stack Overflow comments (c2q / c2a style)
# ----------------------------------------------------------------------
def qa_stream(
    num_users: int,
    num_events: int,
    *,
    zipf_exponent: float = 1.0,
    epoch_length: int = 250,
    hot_fraction: float = 0.05,
    events_per_step: int = 1,
    seed: SeedLike = None,
) -> List[Interaction]:
    """Q&A comment interactions ``<post author, commenter, t>``.

    Commenting on a question/answer reflects the post author's influence on
    the commenter.  Attention on Stack Overflow turns over quickly: every
    ``epoch_length`` steps a fresh *hot set* of authors (a random
    ``hot_fraction`` of users) receives most comments, modelling topical
    turnover.  This is the highest-churn family, which is why the paper's
    greedy/streaming quality gap is widest on the Stack Overflow datasets.
    """
    check_positive_int(num_users, "num_users")
    check_positive_int(num_events, "num_events")
    check_positive_int(epoch_length, "epoch_length")
    check_fraction(hot_fraction, "hot_fraction")
    check_positive_int(events_per_step, "events_per_step")
    rng = make_rng(seed)
    weights = _zipf_weights(num_users, zipf_exponent)
    cumulative = _cumulative(weights)
    hot_authors: List[int] = []
    interactions: List[Interaction] = []
    for event_index in range(num_events):
        step = event_index // events_per_step
        if event_index % (epoch_length * events_per_step) == 0:
            hot_size = max(2, int(num_users * hot_fraction))
            hot_authors = rng.sample(range(num_users), min(hot_size, num_users))
        if hot_authors and rng.random() < 0.7:
            author = hot_authors[rng.randrange(len(hot_authors))]
        else:
            author = _weighted_index(rng, cumulative)
        commenter = rng.randrange(num_users)
        while commenter == author:
            commenter = rng.randrange(num_users)
        interactions.append(Interaction(f"u{author}", f"u{commenter}", step))
    return interactions
