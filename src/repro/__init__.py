"""repro: tracking influential nodes in time-decaying interaction networks.

A from-scratch reproduction of Zhao, Shang, Wang, Lui and Zhang,
"Tracking Influential Nodes in Time-Decaying Dynamic Interaction Networks"
(ICDE 2019 / arXiv:1810.07917).

The supported entry surface is the facade (:mod:`repro.api`, re-exported
here): :func:`open_tracker`, the :class:`Semantics` enum, and the
:mod:`repro.errors` hierarchy.  Quickstart::

    from repro import GeometricLifetime, Semantics, open_tracker

    tracker = open_tracker(
        "hist-approx", k=10, epsilon=0.2,
        lifetime_policy=GeometricLifetime(p=0.01, max_lifetime=1000, seed=42),
    )
    for t, batch in my_interaction_stream:          # batches of (u, v) pairs
        solution = tracker.step(t, batch)
    print(solution.nodes, solution.value)

    trending = open_tracker("trend", k=5)           # time-decay semantics

See DESIGN.md for the system inventory, ARCHITECTURE.md for the public
API vs internal layers table, and EXPERIMENTS.md for the paper-versus-
measured record of every table and figure.
"""

from repro.analysis import SolutionHistory
from repro.api import (
    Semantics,
    disable_kernel_metrics,
    enable_kernel_metrics,
    metric_names,
    metrics_registry,
    open_tracker,
)
from repro.datasets import (
    lbsn_stream,
    make_stream,
    one_mode_projection,
    qa_stream,
    retweet_stream,
)
from repro.core import (
    BasicReduction,
    DecayedCentralityTracker,
    HistApprox,
    InfluenceTracker,
    SieveADN,
    SieveStreaming,
    Solution,
    TrendTracker,
)
from repro.errors import (
    ConfigError,
    DegradedExecutionError,
    PersistenceError,
    ReproError,
    SemanticsError,
)
from repro.influence import InfluenceOracle, top_spreaders
from repro.persistence import load_checkpoint, save_checkpoint
from repro.tdn import (
    ConstantLifetime,
    GeometricLifetime,
    InfiniteLifetime,
    Interaction,
    MemoryStream,
    PowerLawLifetime,
    TDNGraph,
    UniformLifetime,
)
from repro.utils.deprecation import warn_once

__version__ = "1.1.0"

__all__ = [
    "open_tracker",
    "Semantics",
    "InfluenceTracker",
    "Solution",
    "SieveADN",
    "BasicReduction",
    "HistApprox",
    "SieveStreaming",
    "DecayedCentralityTracker",
    "TrendTracker",
    "InfluenceOracle",
    "WeightedInfluenceOracle",
    "top_spreaders",
    "SolutionHistory",
    "save_checkpoint",
    "load_checkpoint",
    "ReproError",
    "ConfigError",
    "SemanticsError",
    "DegradedExecutionError",
    "PersistenceError",
    "TDNGraph",
    "Interaction",
    "MemoryStream",
    "ConstantLifetime",
    "InfiniteLifetime",
    "GeometricLifetime",
    "UniformLifetime",
    "PowerLawLifetime",
    "lbsn_stream",
    "make_stream",
    "one_mode_projection",
    "qa_stream",
    "retweet_stream",
    "metrics_registry",
    "metric_names",
    "enable_kernel_metrics",
    "disable_kernel_metrics",
    "__version__",
]


def __getattr__(name: str):
    """Deprecation shims for spellings the facade supersedes.

    ``repro.WeightedInfluenceOracle`` keeps working for one release but
    warns: weighted spread now enters through ``open_tracker(semantics=
    Semantics.WEIGHTED_SUM, weights=...)`` (power users can still import
    the class from :mod:`repro.influence.weighted` warning-free).
    """
    if name == "WeightedInfluenceOracle":
        warn_once(
            "root-weighted-oracle",
            "importing WeightedInfluenceOracle from the bare 'repro' "
            "package is deprecated; use repro.api.open_tracker(semantics="
            "Semantics.WEIGHTED_SUM, weights=...) or import it from "
            "repro.influence.weighted",
        )
        from repro.influence.weighted import WeightedInfluenceOracle

        return WeightedInfluenceOracle
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
