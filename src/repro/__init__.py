"""repro: tracking influential nodes in time-decaying interaction networks.

A from-scratch reproduction of Zhao, Shang, Wang, Lui and Zhang,
"Tracking Influential Nodes in Time-Decaying Dynamic Interaction Networks"
(ICDE 2019 / arXiv:1810.07917).

Quickstart::

    from repro import InfluenceTracker, GeometricLifetime

    tracker = InfluenceTracker(
        "hist-approx", k=10, epsilon=0.2,
        lifetime_policy=GeometricLifetime(p=0.01, max_lifetime=1000, seed=42),
    )
    for t, batch in my_interaction_stream:          # batches of (u, v) pairs
        solution = tracker.step(t, batch)
    print(solution.nodes, solution.value)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.analysis import SolutionHistory
from repro.core import (
    BasicReduction,
    HistApprox,
    InfluenceTracker,
    SieveADN,
    SieveStreaming,
    Solution,
)
from repro.influence import InfluenceOracle, top_spreaders
from repro.influence.weighted import WeightedInfluenceOracle
from repro.persistence import load_checkpoint, save_checkpoint
from repro.tdn import (
    ConstantLifetime,
    GeometricLifetime,
    InfiniteLifetime,
    Interaction,
    MemoryStream,
    PowerLawLifetime,
    TDNGraph,
    UniformLifetime,
)

__version__ = "1.0.0"

__all__ = [
    "InfluenceTracker",
    "Solution",
    "SieveADN",
    "BasicReduction",
    "HistApprox",
    "SieveStreaming",
    "InfluenceOracle",
    "WeightedInfluenceOracle",
    "top_spreaders",
    "SolutionHistory",
    "save_checkpoint",
    "load_checkpoint",
    "TDNGraph",
    "Interaction",
    "MemoryStream",
    "ConstantLifetime",
    "InfiniteLifetime",
    "GeometricLifetime",
    "UniformLifetime",
    "PowerLawLifetime",
    "__version__",
]
