"""The stable public facade: one documented way in.

Everything a library user needs lives here (and is re-exported from the
bare ``repro`` package): :func:`open_tracker` to build a configured
tracker from names and plain values, the :class:`Semantics` enum naming
the registered influence folds, and the exception hierarchy from
:mod:`repro.errors`.  Internal layers (``repro.kernels``, ``repro.tdn``,
``repro.influence``, ``repro.parallel``, ...) remain importable for power
users and tests, but only this module and ``repro.errors`` are covered by
the compatibility promise — the RPL105 lint rule keeps ``examples/`` and
``tests/integration/`` honest about using the facade only.

Quickstart::

    from repro.api import Semantics, open_tracker

    tracker = open_tracker("hist-approx", k=10, epsilon=0.2)
    for t, batch in my_stream:                  # batches of (u, v) pairs
        solution = tracker.step(t, batch)

    trending = open_tracker("trend", k=5, semantics=Semantics.TIME_DECAY)

Observability: :func:`repro.obs.registry.metrics_registry` (re-exported
here) returns the process-wide metrics registry;
:func:`~repro.kernels.instrument.enable_kernel_metrics` turns on sampled
kernel sweep counters.  Metric names live in :mod:`repro.obs.names`
(re-exported as ``metric_names``).
"""

from __future__ import annotations

from enum import Enum
from typing import Optional, Union

from repro.core.tracker import InfluenceTracker, Solution
from repro.errors import (
    ConfigError,
    DegradedExecutionError,
    PersistenceError,
    ReproError,
    SemanticsError,
)
from repro.influence.weighted import WeightedInfluenceOracle
from repro.kernels import (
    Fold,
    disable_kernel_metrics,
    enable_kernel_metrics,
    resolve_fold,
)
from repro.obs import names as metric_names
from repro.obs.registry import metrics_registry
from repro.tdn.graph import TDNGraph
from repro.tdn.lifetimes import LifetimePolicy

__all__ = [
    "ConfigError",
    "DegradedExecutionError",
    "InfluenceTracker",
    "PersistenceError",
    "ReproError",
    "Semantics",
    "SemanticsError",
    "Solution",
    "disable_kernel_metrics",
    "enable_kernel_metrics",
    "metric_names",
    "metrics_registry",
    "open_tracker",
]


class Semantics(str, Enum):
    """Registered influence semantics, one per fold in the kernel registry.

    Values are the registry names, so a plain string works anywhere a
    ``Semantics`` member does; the enum exists to make the choices
    discoverable and typo-proof at the facade.
    """

    COUNT = "count"
    WEIGHTED_SUM = "weighted_sum"
    HOP_DISCOUNT = "hop_discount"
    TIME_DECAY = "time_decay"


def open_tracker(
    algorithm: str = "hist-approx",
    *,
    k: int = 10,
    epsilon: float = 0.1,
    semantics: Union[Semantics, str, tuple, Fold, None] = None,
    semantics_params: Optional[dict] = None,
    weights=None,
    default_weight: float = 1.0,
    lifetime_policy: Optional[LifetimePolicy] = None,
    L: Optional[int] = None,
    changed_mode: str = "ancestors",
    refine_head: bool = False,
    seed=None,
    workers: int = 1,
    graph: Optional[TDNGraph] = None,
) -> InfluenceTracker:
    """Open a configured influence tracker — the one public constructor.

    Args:
        algorithm: ``"hist-approx"`` (default), ``"basic-reduction"``,
            ``"sieve-adn"``, ``"decayed-centrality"``, ``"trend"``,
            ``"greedy"`` or ``"random"``.
        k: number of influential nodes to maintain.
        epsilon: approximation knob of the sieve algorithms.
        semantics: influence semantics — a :class:`Semantics` member, a
            registry name, a ``(name, params)`` pair, or a ready
            :class:`~repro.kernels.Fold`.  ``None`` picks the algorithm's
            natural semantics (``hop_discount`` for decayed-centrality,
            ``time_decay`` for trend, ``count`` otherwise).
        semantics_params: fold parameters (e.g. ``{"alpha": 0.8}``) when
            ``semantics`` is given by name; rejected if ``semantics``
            already carries parameters.
        weights: node weights (mapping or callable) for
            :data:`Semantics.WEIGHTED_SUM` — the one semantics whose
            per-node state cannot ride in a fold parameter, so it is
            served by a :class:`WeightedInfluenceOracle` injected into
            the tracker.  Only valid with ``weighted_sum``.
        default_weight: weight for nodes missing from ``weights``.
        lifetime_policy, L, changed_mode, refine_head, seed, workers,
            graph: forwarded to :class:`InfluenceTracker` (see its docs).

    Raises:
        SemanticsError: unknown semantics name or invalid parameters.
        ConfigError: inconsistent argument combinations (e.g. ``weights``
            without ``weighted_sum``).
    """
    name = semantics.value if isinstance(semantics, Semantics) else semantics
    if semantics_params is not None:
        if not isinstance(name, str):
            raise ConfigError(
                "semantics_params requires semantics to be given by name; "
                f"got semantics={semantics!r}"
            )
        name = (name, dict(semantics_params))
    if _is_weighted(name):
        if graph is None:
            graph = TDNGraph()
        oracle = WeightedInfluenceOracle(
            graph,
            weights,
            default_weight=default_weight,
            parallel=workers if workers > 1 else None,
        )
        return InfluenceTracker(
            algorithm,
            k=k,
            epsilon=epsilon,
            lifetime_policy=lifetime_policy,
            L=L,
            changed_mode=changed_mode,
            refine_head=refine_head,
            seed=seed,
            graph=graph,
            oracle=oracle,
        )
    if weights is not None:
        raise ConfigError(
            "weights are only meaningful with semantics='weighted_sum'; "
            f"got semantics={semantics!r}"
        )
    if name is not None:
        resolve_fold(name)  # fail fast at the facade on unknown semantics
    return InfluenceTracker(
        algorithm,
        k=k,
        epsilon=epsilon,
        lifetime_policy=lifetime_policy,
        L=L,
        changed_mode=changed_mode,
        refine_head=refine_head,
        seed=seed,
        graph=graph,
        workers=workers,
        semantics=name,
    )


def _is_weighted(name) -> bool:
    if isinstance(name, Fold):
        return name.name == Semantics.WEIGHTED_SUM.value
    if name == Semantics.WEIGHTED_SUM.value:
        return True
    return (
        isinstance(name, tuple)
        and len(name) == 2
        and name[0] == Semantics.WEIGHTED_SUM.value
    )
