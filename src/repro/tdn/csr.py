"""Compact CSR engines for a :class:`~repro.tdn.graph.TDNGraph`.

The influence oracle's cost model bottoms out in directed reachability, and
the reference implementation walks the graph's dict-of-dict adjacency one
Python object at a time.  This module holds the compact engines behind the
oracle's ``backend="csr"`` mode.

Two layers
----------
:class:`CSRSnapshot` is the immutable base layer: the alive pair adjacency
flattened into three numpy arrays —

* ``indptr``  (``num_nodes + 1``): per-node slice boundaries,
* ``indices``: successor ids, grouped by source id,
* ``expiries``: the per-pair *maximum* alive expiry,

indexed by the graph's dense interned node ids.  Horizon filtering stays
O(1) per neighbor exactly as in the dict substrate (compare a pair's max
expiry against ``min_expiry``), but the BFS frontier expansion becomes a
handful of vectorized gathers per level instead of per-edge Python dict
probes.

:class:`DeltaCSR` is the *incrementally maintained* engine the graph
actually serves queries from (:meth:`TDNGraph.csr`).  Instead of rebuilding
a snapshot on every graph version (O(V + P) per batch), it keeps

* an immutable :class:`CSRSnapshot` **base**,
* a per-node **append overlay** of post-base arrivals (forward and reverse,
  so the transpose stays incremental too), and
* a lazy **tombstone count** for expiries.

Arrivals append one ``(neighbor, expiry)`` entry in O(1); expiries cost
O(1) because a dead pair's base entry is *stale-but-harmless*: an expired
edge has ``expiry <= t``, while every live query horizon is at least
``t + 1`` (an alive edge always satisfies ``expiry >= t + 1``), so queries
clamp their horizon to ``max(min_expiry, t + 1)`` and stale entries filter
themselves out.  When the overlay-plus-tombstone fraction crosses
:attr:`DeltaCSR.COMPACT_FRACTION` of the base, the engine compacts into a
fresh base — so a stream of B-edge batches pays amortized O(B), not
O(V + P), per step.

Traversals
----------
Forward reachability (:meth:`DeltaCSR.reachable_count` /
:meth:`~DeltaCSR.reachable_ids`) and the transpose-backed reverse sweep
(:meth:`DeltaCSR.ancestor_ids`, behind ``changed_nodes``) run an
array-visited frontier BFS over base-plus-overlay.  The visited buffer uses
an epoch *stamp* instead of a boolean array so repeated traversals do not
pay an O(V) clear each.

:meth:`DeltaCSR.spread_counts` is the multi-source **bit-plane** engine: up
to 64 candidate sets are packed into uint64 visited-mask planes (bit *i* of
``masks[v]`` means "set *i* reaches *v*") and all planes propagate to
fixpoint in one shared traversal, so a SIEVEADN singleton sweep over a
candidate batch costs one multi-BFS instead of |candidates| BFSes.  Oracle
*call accounting is unchanged* — counting stays per-set in the oracle, only
the physical traversal is shared.

.. warning::
   :class:`repro.parallel.plane.PlaneEngine` mirrors these traversal
   kernels (frontier expansion, bit-plane sweep, lazy transpose) over the
   published flat arrays minus the overlay — the sharded executor's
   bit-for-bit guarantee rests on the two staying in lockstep.  Any
   semantic change to a sweep here must be applied there too; the
   parallel equivalence suite and ``tests/property/test_shard_merge.py``
   are the tripwires.
"""

from __future__ import annotations

import os
import time
from typing import Iterable, List, Optional, Sequence, Set

import numpy as np

__all__ = ["CSRSnapshot", "DeltaCSR", "calibrate_scalar_pair_limit"]

#: Selectable maintenance policies for :class:`DeltaCSR`.
CSR_MODES = ("delta", "rebuild")

#: Environment override for the scalar/vector traversal cutover.
SCALAR_LIMIT_ENV = "REPRO_SCALAR_PAIR_LIMIT"

#: Fallback cutover when calibration is unavailable or implausible —
#: the historical fixed constant, measured on commodity x86.
DEFAULT_SCALAR_PAIR_LIMIT = 2048

#: Calibration probe sizes (alive pairs) and clamp bounds.
_PROBE_SIZES = (256, 1024, 4096, 16384)
_LIMIT_BOUNDS = (128, 65536)

#: Process-wide cache of the measured cutover (calibrate once, reuse).
_calibrated_limit: Optional[int] = None


def _probe_arrays(num_pairs: int) -> tuple:
    """Deterministic synthetic CSR arrays for the calibration probe.

    A random-ish sparse digraph (mean out-degree 4) whose BFS runs a
    handful of levels — the same shape the oracle's spread sweeps see —
    built directly in array form so the probe never touches a graph.
    """
    num_nodes = max(num_pairs // 4, 8)
    rng = np.random.default_rng(12345)
    targets = rng.integers(0, num_nodes, size=num_pairs)
    counts = np.bincount(
        rng.integers(0, num_nodes, size=num_pairs), minlength=num_nodes
    )
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    expiries = np.full(num_pairs, np.inf, dtype=np.float64)
    return num_nodes, indptr, targets.astype(np.int64), expiries


def calibrate_scalar_pair_limit(force: bool = False) -> int:
    """Measure where vectorized traversal starts beating the scalar loop.

    Runs once per process (cached; ``force=True`` re-measures): for
    increasing probe sizes, a full-reach sweep is timed on both paths of
    an otherwise identical snapshot, and the cutover is placed at the
    midpoint below the first size the vector path wins.  The result is
    clamped to a plausible band and falls back to the historical 2048
    constant if the probe misbehaves — both paths are result-identical,
    so a miscalibrated cutover can only ever cost time, never change a
    value.
    """
    global _calibrated_limit
    if _calibrated_limit is not None and not force:
        return _calibrated_limit

    def best_of(runs, func):
        best = float("inf")
        for _ in range(runs):
            started = time.perf_counter()
            func()
            best = min(best, time.perf_counter() - started)
        return best

    limit = _LIMIT_BOUNDS[1]
    try:
        for num_pairs in _PROBE_SIZES:
            num_nodes, indptr, indices, expiries = _probe_arrays(num_pairs)
            probe = CSRSnapshot(
                num_nodes, indptr, indices, expiries, version=0,
                scalar_pair_limit=num_pairs + 1,
            )
            seeds = list(range(min(4, num_nodes)))
            scalar_s = best_of(3, lambda: probe._scalar_reach(seeds, None))
            vector_s = best_of(3, lambda: _vector_reach(probe, seeds))
            if vector_s <= scalar_s:
                limit = max(num_pairs // 2, _PROBE_SIZES[0] // 2)
                break
    except Exception:  # pragma: no cover - probe must never break queries
        limit = DEFAULT_SCALAR_PAIR_LIMIT
    lo, hi = _LIMIT_BOUNDS
    _calibrated_limit = min(max(limit, lo), hi)
    return _calibrated_limit


def _vector_reach(snapshot: "CSRSnapshot", seeds) -> int:
    """Force the vectorized sweep regardless of the snapshot's cutover."""
    frontier = snapshot._seed_frontier(seeds)
    if frontier is None:
        return 0
    count = int(frontier.size)
    for frontier in snapshot._expand_levels(frontier, None):
        count += int(frontier.size)
    return count


def resolve_scalar_pair_limit(override: Optional[int] = None) -> int:
    """The active scalar/vector cutover, by descending precedence.

    1. ``CSRSnapshot.SCALAR_PAIR_LIMIT`` when not ``None`` — the legacy
       one-knob class attribute (tests monkeypatch it; both engines and
       every snapshot obey it immediately);
    2. a per-engine constructor ``override``;
    3. the ``REPRO_SCALAR_PAIR_LIMIT`` environment variable;
    4. the measured per-process calibration
       (:func:`calibrate_scalar_pair_limit`).
    """
    knob = CSRSnapshot.SCALAR_PAIR_LIMIT
    if knob is not None:
        return knob
    if override is not None:
        return override
    env = os.environ.get(SCALAR_LIMIT_ENV)
    if env is not None:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return calibrate_scalar_pair_limit()


class CSRSnapshot:
    """Immutable flat-array view of the alive directed pairs of a TDN.

    Build with :meth:`build`.  All arrays are indexed by the graph's
    interned node ids, including ids whose node has no alive edges (their
    adjacency slice is simply empty), so id-keyed callers never need to
    translate between id spaces across versions.  In production the
    snapshot is the *base layer* of :class:`DeltaCSR`; standalone use
    (tests, offline analysis) queries it directly.
    """

    __slots__ = (
        "num_nodes",
        "num_pairs",
        "indptr",
        "indices",
        "expiries",
        "version",
        "scalar_pair_limit",
        "_visit",
        "_stamp",
        "_scalar",
    )

    #: Below this many alive pairs, traversal walks the flat arrays with a
    #: plain Python loop: per-level numpy dispatch overhead dominates on
    #: tiny graphs, while the vectorized frontier expansion wins by a wide
    #: margin above it.  Tests pin both paths to identical results.  The
    #: delta engine reads this class attribute too, so one knob (and one
    #: monkeypatch) governs both engines.  ``None`` (the default) means
    #: *adaptive*: the cutover is resolved per process through
    #: :func:`resolve_scalar_pair_limit` — constructor override, then the
    #: ``REPRO_SCALAR_PAIR_LIMIT`` environment variable, then a measured
    #: calibration probe (:func:`calibrate_scalar_pair_limit`); setting a
    #: number here pins both engines exactly as before.
    SCALAR_PAIR_LIMIT: Optional[int] = None

    def __init__(
        self,
        num_nodes: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        expiries: np.ndarray,
        version: int,
        scalar_pair_limit: Optional[int] = None,
    ) -> None:
        self.num_nodes = num_nodes
        self.num_pairs = int(indices.shape[0])
        self.indptr = indptr
        self.indices = indices
        self.expiries = expiries
        self.version = version
        self.scalar_pair_limit = scalar_pair_limit
        # Epoch-stamped visited buffer: visit[i] == _stamp means "seen in
        # the current traversal"; bumping the stamp is an O(1) clear.
        self._visit = np.zeros(num_nodes, dtype=np.int64)
        self._stamp = 0
        self._scalar = None  # lazily materialized plain-list view

    def _scalar_limit(self) -> int:
        """The cutover in force *now* (class knob re-checked per query)."""
        return resolve_scalar_pair_limit(self.scalar_pair_limit)

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph, scalar_pair_limit: Optional[int] = None) -> "CSRSnapshot":
        """Flatten ``graph``'s alive pair adjacency into CSR arrays.

        Cost is O(V + P log P) for P alive pairs (one stable sort groups
        the pair list by source id); the per-pair max expiry is read off
        the graph's cached :class:`_PairEdges` maxima, so no multiset is
        ever re-scanned.  The adaptive scalar/vector cutover is resolved
        here — i.e. the calibration probe, if it has not run yet in this
        process, runs at snapshot build, never inside a query.
        """
        num_nodes = graph.num_interned
        node_ids = graph._node_ids
        sources = []
        targets = []
        expiries = []
        for u, nbrs in graph._out.items():
            if not nbrs:
                continue
            uid = node_ids[u]
            for v, pair in nbrs.items():
                sources.append(uid)
                targets.append(node_ids[v])
                expiries.append(pair.max_expiry)
        if sources:
            src = np.asarray(sources, dtype=np.int64)
            dst = np.asarray(targets, dtype=np.int64)
            exp = np.asarray(expiries, dtype=np.float64)
            order = np.argsort(src, kind="stable")
            src = src[order]
            indices = dst[order]
            exp = exp[order]
            counts = np.bincount(src, minlength=num_nodes)
        else:
            indices = np.empty(0, dtype=np.int64)
            exp = np.empty(0, dtype=np.float64)
            counts = np.zeros(num_nodes, dtype=np.int64)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        resolve_scalar_pair_limit(scalar_pair_limit)  # calibrate at build
        return cls(
            num_nodes, indptr, indices, exp, graph.version,
            scalar_pair_limit=scalar_pair_limit,
        )

    # ------------------------------------------------------------------
    def reachable_count(
        self, source_ids: Iterable[int], min_expiry: Optional[float] = None
    ) -> int:
        """Number of distinct nodes reachable from ``source_ids``.

        Sources count themselves (reachability via the empty path), exactly
        matching :func:`repro.influence.reachability.reachable_set`.  With
        ``min_expiry`` only pairs whose max expiry clears the horizon are
        traversed.
        """
        if self.num_pairs <= self._scalar_limit():
            return len(self._scalar_reach(source_ids, min_expiry))
        frontier = self._seed_frontier(source_ids)
        if frontier is None:
            return 0
        count = int(frontier.size)
        for frontier in self._expand_levels(frontier, min_expiry):
            count += int(frontier.size)
        return count

    def reachable_ids(
        self, source_ids: Iterable[int], min_expiry: Optional[float] = None
    ) -> Set[int]:
        """The reachable id set itself (tests and offline analysis)."""
        if self.num_pairs <= self._scalar_limit():
            return self._scalar_reach(source_ids, min_expiry)
        frontier = self._seed_frontier(source_ids)
        if frontier is None:
            return set()
        reached = set(frontier.tolist())
        for frontier in self._expand_levels(frontier, min_expiry):
            reached.update(frontier.tolist())
        return reached

    # ------------------------------------------------------------------
    def _scalar_reach(
        self, source_ids: Iterable[int], min_expiry: Optional[float]
    ) -> Set[int]:
        """Plain-Python traversal of the flat arrays (small-graph path)."""
        indptr, indices, expiries = self._scalar_view()
        visited = set()
        stack = []
        for node_id in source_ids:
            if node_id < 0 or node_id >= self.num_nodes:
                raise IndexError(
                    f"source id {node_id} out of range [0, {self.num_nodes})"
                )
            if node_id not in visited:
                visited.add(node_id)
                stack.append(node_id)
        while stack:
            node_id = stack.pop()
            for slot in range(indptr[node_id], indptr[node_id + 1]):
                if min_expiry is not None and expiries[slot] < min_expiry:
                    continue
                successor = indices[slot]
                if successor not in visited:
                    visited.add(successor)
                    stack.append(successor)
        return visited

    def _scalar_view(self):
        """Python-list mirror of the arrays, built once per snapshot."""
        if self._scalar is None:
            self._scalar = (
                self.indptr.tolist(),
                self.indices.tolist(),
                self.expiries.tolist(),
            )
        return self._scalar

    def _seed_frontier(self, source_ids: Iterable[int]) -> Optional[np.ndarray]:
        """Deduplicated, stamped source frontier (None when empty)."""
        frontier = np.unique(np.asarray(list(source_ids), dtype=np.int64))
        if frontier.size == 0:
            return None
        if frontier[0] < 0 or frontier[-1] >= self.num_nodes:
            raise IndexError(
                f"source id out of range [0, {self.num_nodes}) in {frontier}"
            )
        self._stamp += 1
        self._visit[frontier] = self._stamp
        return frontier

    def _expand_levels(self, frontier: np.ndarray, min_expiry: Optional[float]):
        """Yield successive BFS frontiers (each already stamped visited)."""
        indptr = self.indptr
        indices = self.indices
        expiries = self.expiries
        visit = self._visit
        stamp = self._stamp
        while frontier.size:
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                return
            # Gather the concatenated adjacency slices of the frontier:
            # block i contributes positions starts[i] .. starts[i]+counts[i].
            ends = np.cumsum(counts)
            slots = np.repeat(starts - ends + counts, counts) + np.arange(total)
            if min_expiry is not None:
                slots = slots[expiries[slots] >= min_expiry]
            neighbors = indices[slots]
            neighbors = neighbors[visit[neighbors] != stamp]
            if neighbors.size == 0:
                return
            frontier = np.unique(neighbors)
            visit[frontier] = stamp
            yield frontier

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRSnapshot(nodes={self.num_nodes}, pairs={self.num_pairs}, "
            f"version={self.version})"
        )


class DeltaCSR:
    """Incrementally maintained delta-CSR reachability engine.

    Owned by the graph (:meth:`TDNGraph.csr` creates it lazily and keeps it
    for the graph's lifetime); the graph's mutation hooks feed it directly:

    * :meth:`record_arrival` appends one overlay entry per inserted edge —
      forward (``u -> (v, expiry)``) and reverse (``v -> (u, expiry)``), so
      the transpose never needs a per-version rebuild either;
    * :meth:`record_pair_death` counts a tombstone when a pair's last alive
      edge expires.  The dead pair's base entry stays in place: its
      recorded expiry is ``<= t`` while every query horizon is clamped to
      ``>= t + 1``, so it can never be traversed again.

    :meth:`sync` (called from :meth:`TDNGraph.csr`) compacts overlay and
    tombstones into a fresh base once their combined count crosses
    ``max(COMPACT_MIN, COMPACT_FRACTION * base pairs)``; between
    compactions every mutation is O(1) and every query sees the exact
    current graph.  ``mode="rebuild"`` forces a compaction on every version
    change, reproducing the PR 1 rebuild-per-version cost model for
    benchmarking.
    """

    #: Compact when overlay entries + tombstones exceed this fraction of
    #: the base pair count ...
    COMPACT_FRACTION = 0.25
    #: ... but never before this many deltas have accumulated (tiny bases
    #: would otherwise compact on every batch).
    COMPACT_MIN = 512
    #: Candidate sets packed per bit-plane traversal (uint64 mask width).
    PLANE_WIDTH = 64

    __slots__ = (
        "_graph",
        "mode",
        "scalar_pair_limit",
        "_base",
        "_tindptr",
        "_tindices",
        "_texpiries",
        "_tscalar",
        "_ov_out",
        "_ov_in",
        "_ov_out_flag",
        "_ov_in_flag",
        "_ov_entries",
        "_tombstones",
        "_visit",
        "_stamp",
        "compactions",
        "version",
    )

    def __init__(
        self,
        graph,
        mode: str = "delta",
        scalar_pair_limit: Optional[int] = None,
    ) -> None:
        if mode not in CSR_MODES:
            raise ValueError(f"mode must be one of {CSR_MODES}, got {mode!r}")
        self._graph = graph
        self.mode = mode
        self.scalar_pair_limit = scalar_pair_limit
        self.compactions = 0
        self._visit = np.zeros(graph.num_interned, dtype=np.int64)
        self._stamp = 0
        self._compact()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Current interned-id space (grows as nodes appear)."""
        return self._graph.num_interned

    @property
    def num_entries(self) -> int:
        """Base pair entries plus overlay entries (stale ones included)."""
        return self._base.num_pairs + self._ov_entries

    @property
    def overlay_entries(self) -> int:
        """Overlay arrivals accumulated since the last compaction."""
        return self._ov_entries

    @property
    def tombstones(self) -> int:
        """Pair deaths accumulated since the last compaction."""
        return self._tombstones

    @property
    def base(self) -> CSRSnapshot:
        """The immutable compacted base snapshot."""
        return self._base

    # ------------------------------------------------------------------
    # Mutation hooks (called by TDNGraph)
    # ------------------------------------------------------------------
    def record_arrival(self, uid: int, vid: int, expiry: float) -> None:
        """Append one arrived edge to the forward and reverse overlays."""
        top = uid if uid > vid else vid
        if top >= self._ov_out_flag.shape[0]:
            self._grow(top + 1)
        self._ov_out.setdefault(uid, []).append((vid, expiry))
        self._ov_in.setdefault(vid, []).append((uid, expiry))
        self._ov_out_flag[uid] = True
        self._ov_in_flag[vid] = True
        self._ov_entries += 1

    def record_pair_death(self) -> None:
        """Count a tombstone for a pair whose last alive edge expired."""
        self._tombstones += 1

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Bring the engine up to date with the graph (maybe compact)."""
        graph = self._graph
        if self.mode == "rebuild":
            if self.version != graph.version:
                self._compact()
            return
        if self._ov_entries + self._tombstones > max(
            self.COMPACT_MIN, self.COMPACT_FRACTION * self._base.num_pairs
        ):
            self._compact()
        else:
            self.version = graph.version

    def _scalar_limit(self) -> int:
        """The cutover in force *now* (class knob re-checked per query)."""
        return resolve_scalar_pair_limit(self.scalar_pair_limit)

    def _compact(self) -> None:
        """Fold overlay and tombstones into a fresh immutable base."""
        graph = self._graph
        self._base = CSRSnapshot.build(
            graph, scalar_pair_limit=self.scalar_pair_limit
        )
        self._tindptr = None
        self._tindices = None
        self._texpiries = None
        self._tscalar = None
        self._ov_out = {}
        self._ov_in = {}
        capacity = max(self._visit.shape[0], graph.num_interned)
        self._ov_out_flag = np.zeros(capacity, dtype=bool)
        self._ov_in_flag = np.zeros(capacity, dtype=bool)
        self._ov_entries = 0
        self._tombstones = 0
        self.compactions += 1
        self.version = graph.version

    def _grow(self, needed: int) -> None:
        """Amortized-doubling growth of the id-indexed buffers."""
        capacity = max(needed, 2 * self._visit.shape[0])
        grown = np.zeros(capacity, dtype=np.int64)
        grown[: self._visit.shape[0]] = self._visit
        self._visit = grown
        for name in ("_ov_out_flag", "_ov_in_flag"):
            flags = getattr(self, name)
            grown_flags = np.zeros(capacity, dtype=bool)
            grown_flags[: flags.shape[0]] = flags
            setattr(self, name, grown_flags)

    def _effective_horizon(self, min_expiry: Optional[float]) -> float:
        """Clamp the query horizon to ``t + 1``.

        Every alive edge satisfies ``expiry >= t + 1`` (an edge alive at
        ``t`` is removed at ``expiry > t``), so the clamp never hides a
        traversable pair; it *does* hide every stale base/overlay entry,
        whose recorded expiry is ``<= t``.  This is what makes expiries
        O(1): lazy deletion with the horizon test as the filter.
        """
        floor = float(self._graph.time + 1)
        if min_expiry is None or min_expiry < floor:
            return floor
        return min_expiry

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def reachable_count(
        self, source_ids: Iterable[int], min_expiry: Optional[float] = None
    ) -> int:
        """Number of distinct nodes reachable from ``source_ids``."""
        eff = self._effective_horizon(min_expiry)
        if self.num_entries <= self._scalar_limit():
            return len(self._scalar_traverse(source_ids, eff, reverse=False))
        frontier = self._seed_frontier(source_ids)
        if frontier is None:
            return 0
        count = int(frontier.size)
        for frontier in self._vector_frontiers(frontier, eff, reverse=False):
            count += int(frontier.size)
        return count

    def reachable_ids(
        self, source_ids: Iterable[int], min_expiry: Optional[float] = None
    ) -> Set[int]:
        """The reachable id set itself (weighted oracle, tests)."""
        eff = self._effective_horizon(min_expiry)
        if self.num_entries <= self._scalar_limit():
            return self._scalar_traverse(source_ids, eff, reverse=False)
        frontier = self._seed_frontier(source_ids)
        if frontier is None:
            return set()
        reached = set(frontier.tolist())
        for frontier in self._vector_frontiers(frontier, eff, reverse=False):
            reached.update(frontier.tolist())
        return reached

    def ancestor_ids(
        self, target_ids: Iterable[int], min_expiry: Optional[float] = None
    ) -> Set[int]:
        """All ids that can reach ``target_ids`` (transpose-backed).

        This is the engine behind ``changed_nodes``: the reverse BFS runs
        on the lazily built transpose of the base plus the reverse overlay,
        with the same array-visited stamping as the forward sweep.
        """
        eff = self._effective_horizon(min_expiry)
        if self.num_entries <= self._scalar_limit():
            return self._scalar_traverse(target_ids, eff, reverse=True)
        frontier = self._seed_frontier(target_ids)
        if frontier is None:
            return set()
        reached = set(frontier.tolist())
        for frontier in self._vector_frontiers(frontier, eff, reverse=True):
            reached.update(frontier.tolist())
        return reached

    def touched_cone_ids(self, seed_ids: Iterable[int]) -> Set[int]:
        """Ids whose forward cone a batch of deltas touched (seeds closed).

        ``seed_ids`` are the dirty sources journaled by the graph since a
        consumer's last sync: the sources of overlay arrivals plus the
        sources of tombstoned pairs.  Inserting or expiring an edge
        ``u -> v`` can only change the reachable set of nodes that can
        reach ``u`` *now*, so closing the seeds under the reverse-transpose
        :meth:`ancestor_ids` sweep (at the widest live horizon, ``t + 1``)
        yields a superset of every node whose spread may have changed —
        the delta-aware oracle memo evicts exactly the entries whose key
        intersects this set and provably keeps everything else.
        """
        return self.ancestor_ids(seed_ids, None)

    def spread_counts(
        self,
        id_sets: Sequence[Sequence[int]],
        min_expiry: Optional[float] = None,
    ) -> List[int]:
        """Per-set reachable counts for a whole batch of candidate sets.

        Semantically ``[self.reachable_count(s, min_expiry) for s in
        id_sets]``, but the physical traversal is shared: up to
        :attr:`PLANE_WIDTH` sets are packed into uint64 visited-mask
        planes (bit *i* of ``masks[v]`` = "set *i* reaches *v*") and all
        planes propagate to fixpoint in one multi-source sweep.  Callers
        own the per-set *accounting*; this method only shares the physics.
        """
        eff = self._effective_horizon(min_expiry)
        if self.num_entries <= self._scalar_limit():
            return [
                len(self._scalar_traverse(ids, eff, reverse=False))
                for ids in id_sets
            ]
        results = [0] * len(id_sets)
        width = self.PLANE_WIDTH
        for chunk_start in range(0, len(id_sets), width):
            chunk = id_sets[chunk_start : chunk_start + width]
            counts = self._bitplane_counts(chunk, eff)
            results[chunk_start : chunk_start + len(chunk)] = counts
        return results

    # ------------------------------------------------------------------
    # Traversal internals
    # ------------------------------------------------------------------
    def _seed_frontier(self, source_ids: Iterable[int]) -> Optional[np.ndarray]:
        frontier = np.unique(np.asarray(list(source_ids), dtype=np.int64))
        if frontier.size == 0:
            return None
        if frontier[0] < 0 or frontier[-1] >= self.num_nodes:
            raise IndexError(
                f"source id out of range [0, {self.num_nodes}) in {frontier}"
            )
        self._stamp += 1
        self._visit[frontier] = self._stamp
        return frontier

    def _direction(self, reverse: bool):
        """(indptr, indices, expiries, overlay, overlay_flag) for a sweep."""
        if reverse:
            tindptr, tindices, texpiries = self._transpose_arrays()
            return tindptr, tindices, texpiries, self._ov_in, self._ov_in_flag
        base = self._base
        return base.indptr, base.indices, base.expiries, self._ov_out, self._ov_out_flag

    def _transpose_arrays(self):
        """Lazily build the transpose of the base (overlay stays separate)."""
        if self._tindptr is None:
            base = self._base
            base_n = base.num_nodes
            if base.num_pairs:
                order = np.argsort(base.indices, kind="stable")
                counts = np.bincount(base.indices, minlength=base_n)
                sources = np.repeat(
                    np.arange(base_n, dtype=np.int64), np.diff(base.indptr)
                )
                self._tindices = sources[order]
                self._texpiries = base.expiries[order]
            else:
                counts = np.zeros(base_n, dtype=np.int64)
                self._tindices = np.empty(0, dtype=np.int64)
                self._texpiries = np.empty(0, dtype=np.float64)
            self._tindptr = np.zeros(base_n + 1, dtype=np.int64)
            np.cumsum(counts, out=self._tindptr[1:])
        return self._tindptr, self._tindices, self._texpiries

    def _scalar_lists(self, reverse: bool):
        """Plain-list mirrors of the directional arrays (small-graph path)."""
        if not reverse:
            return self._base._scalar_view()
        if self._tscalar is None:
            tindptr, tindices, texpiries = self._transpose_arrays()
            self._tscalar = (
                tindptr.tolist(),
                tindices.tolist(),
                texpiries.tolist(),
            )
        return self._tscalar

    def _scalar_traverse(
        self, source_ids: Iterable[int], eff: float, reverse: bool
    ) -> Set[int]:
        """Plain-Python DFS over base-plus-overlay (small-graph path)."""
        indptr, indices, expiries = self._scalar_lists(reverse)
        overlay = self._ov_in if reverse else self._ov_out
        base_n = len(indptr) - 1
        num_nodes = self.num_nodes
        visited = set()
        stack = []
        for node_id in source_ids:
            if node_id < 0 or node_id >= num_nodes:
                raise IndexError(f"source id {node_id} out of range [0, {num_nodes})")
            if node_id not in visited:
                visited.add(node_id)
                stack.append(node_id)
        while stack:
            node_id = stack.pop()
            if node_id < base_n:
                for slot in range(indptr[node_id], indptr[node_id + 1]):
                    if expiries[slot] < eff:
                        continue
                    successor = indices[slot]
                    if successor not in visited:
                        visited.add(successor)
                        stack.append(successor)
            entries = overlay.get(node_id)
            if entries:
                for successor, expiry in entries:
                    if expiry >= eff and successor not in visited:
                        visited.add(successor)
                        stack.append(successor)
        return visited

    def _vector_frontiers(self, frontier: np.ndarray, eff: float, reverse: bool):
        """Yield successive stamped BFS frontiers over base-plus-overlay."""
        indptr, indices, expiries, overlay, ov_flag = self._direction(reverse)
        base_n = indptr.shape[0] - 1
        visit = self._visit
        stamp = self._stamp
        while frontier.size:
            parts = []
            in_base = (
                frontier[frontier < base_n] if base_n < self.num_nodes else frontier
            )
            if in_base.size:
                starts = indptr[in_base]
                counts = indptr[in_base + 1] - starts
                total = int(counts.sum())
                if total:
                    ends = np.cumsum(counts)
                    slots = np.repeat(starts - ends + counts, counts) + np.arange(total)
                    slots = slots[expiries[slots] >= eff]
                    neighbors = indices[slots]
                    neighbors = neighbors[visit[neighbors] != stamp]
                    if neighbors.size:
                        parts.append(neighbors)
            overlay_nodes = frontier[ov_flag[frontier]]
            if overlay_nodes.size:
                extra = []
                for node_id in overlay_nodes.tolist():
                    for successor, expiry in overlay[node_id]:
                        if expiry >= eff and visit[successor] != stamp:
                            extra.append(successor)
                if extra:
                    parts.append(np.asarray(extra, dtype=np.int64))
            if not parts:
                return
            frontier = np.unique(np.concatenate(parts) if len(parts) > 1 else parts[0])
            visit[frontier] = stamp
            yield frontier

    def _bitplane_counts(self, chunk: Sequence[Sequence[int]], eff: float) -> List[int]:
        """One shared multi-source fixpoint sweep for up to 64 seed sets."""
        num_nodes = self.num_nodes
        masks = np.zeros(num_nodes, dtype=np.uint64)
        seed_parts = []
        for plane, ids in enumerate(chunk):
            seeds = np.asarray(list(ids), dtype=np.int64)
            if seeds.size == 0:
                continue
            if seeds.min() < 0 or seeds.max() >= num_nodes:
                raise IndexError(f"source id out of range [0, {num_nodes}) in {seeds}")
            masks[seeds] |= np.uint64(1 << plane)
            seed_parts.append(seeds)
        if not seed_parts:
            return [0] * len(chunk)
        indptr, indices, expiries, overlay, ov_flag = self._direction(False)
        base_n = indptr.shape[0] - 1
        frontier = np.unique(np.concatenate(seed_parts))
        while frontier.size:
            changed_parts = []
            in_base = frontier[frontier < base_n] if base_n < num_nodes else frontier
            if in_base.size:
                starts = indptr[in_base]
                counts = indptr[in_base + 1] - starts
                nonzero = counts > 0
                in_base = in_base[nonzero]
                starts = starts[nonzero]
                counts = counts[nonzero]
                total = int(counts.sum())
                if total:
                    ends = np.cumsum(counts)
                    slots = np.repeat(starts - ends + counts, counts) + np.arange(total)
                    sources = np.repeat(in_base, counts)
                    keep = expiries[slots] >= eff
                    slots = slots[keep]
                    sources = sources[keep]
                    if slots.size:
                        targets = indices[slots]
                        contrib = masks[sources]
                        before = masks[targets]
                        np.bitwise_or.at(masks, targets, contrib)
                        changed = targets[masks[targets] != before]
                        if changed.size:
                            changed_parts.append(changed)
            overlay_nodes = frontier[ov_flag[frontier]]
            if overlay_nodes.size:
                extra = []
                for node_id in overlay_nodes.tolist():
                    node_mask = int(masks[node_id])
                    for successor, expiry in overlay[node_id]:
                        if expiry < eff:
                            continue
                        old = int(masks[successor])
                        new = old | node_mask
                        if new != old:
                            masks[successor] = new
                            extra.append(successor)
                if extra:
                    changed_parts.append(np.asarray(extra, dtype=np.int64))
            if not changed_parts:
                break
            frontier = np.unique(
                np.concatenate(changed_parts)
                if len(changed_parts) > 1
                else changed_parts[0]
            )
        reached = masks[masks != np.uint64(0)]
        return [
            int(np.count_nonzero(reached & np.uint64(1 << plane)))
            for plane in range(len(chunk))
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaCSR(mode={self.mode!r}, nodes={self.num_nodes}, "
            f"base_pairs={self._base.num_pairs}, overlay={self._ov_entries}, "
            f"tombstones={self._tombstones}, compactions={self.compactions})"
        )
