"""Compact CSR snapshots of a :class:`~repro.tdn.graph.TDNGraph`.

The influence oracle's cost model bottoms out in directed reachability, and
the reference implementation walks the graph's dict-of-dict adjacency one
Python object at a time.  This module is the compact engine behind the
oracle's ``backend="csr"`` mode: the alive pair adjacency is flattened into
three numpy arrays —

* ``indptr``  (``num_nodes + 1``): per-node slice boundaries,
* ``indices``: successor ids, grouped by source id,
* ``expiries``: the per-pair *maximum* alive expiry,

indexed by the graph's dense interned node ids.  Horizon filtering stays
O(1) per neighbor exactly as in the dict substrate (compare a pair's max
expiry against ``min_expiry``), but the BFS frontier expansion becomes a
handful of vectorized gathers per level instead of per-edge Python dict
probes.

Snapshots are immutable and keyed to the graph ``version`` they were built
from; :meth:`TDNGraph.csr` caches one per version so a whole batch of
evaluations (one SIEVEADN candidate sweep, one ``spread_many`` call) shares
a single O(V + P) build.  The visited buffer uses an epoch *stamp* instead
of a boolean array so repeated traversals do not pay an O(V) clear each.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import numpy as np

__all__ = ["CSRSnapshot"]


class CSRSnapshot:
    """Immutable flat-array view of the alive directed pairs of a TDN.

    Build with :meth:`build` (or, in practice, via the caching
    :meth:`TDNGraph.csr` accessor).  All arrays are indexed by the graph's
    interned node ids, including ids whose node has no alive edges (their
    adjacency slice is simply empty), so id-keyed callers never need to
    translate between id spaces across versions.
    """

    __slots__ = (
        "num_nodes",
        "num_pairs",
        "indptr",
        "indices",
        "expiries",
        "version",
        "_visit",
        "_stamp",
        "_scalar",
    )

    #: Below this many alive pairs, traversal walks the flat arrays with a
    #: plain Python loop: per-level numpy dispatch overhead dominates on
    #: tiny graphs, while the vectorized frontier expansion wins by a wide
    #: margin above it.  Tests pin both paths to identical results.
    SCALAR_PAIR_LIMIT = 2048

    def __init__(
        self,
        num_nodes: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        expiries: np.ndarray,
        version: int,
    ) -> None:
        self.num_nodes = num_nodes
        self.num_pairs = int(indices.shape[0])
        self.indptr = indptr
        self.indices = indices
        self.expiries = expiries
        self.version = version
        # Epoch-stamped visited buffer: visit[i] == _stamp means "seen in
        # the current traversal"; bumping the stamp is an O(1) clear.
        self._visit = np.zeros(num_nodes, dtype=np.int64)
        self._stamp = 0
        self._scalar = None  # lazily materialized plain-list view

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph) -> "CSRSnapshot":
        """Flatten ``graph``'s alive pair adjacency into CSR arrays.

        Cost is O(V + P log P) for P alive pairs (one stable sort groups
        the pair list by source id); the per-pair max expiry is read off
        the graph's cached :class:`_PairEdges` maxima, so no multiset is
        ever re-scanned.
        """
        num_nodes = graph.num_interned
        node_ids = graph._node_ids
        sources = []
        targets = []
        expiries = []
        for u, nbrs in graph._out.items():
            if not nbrs:
                continue
            uid = node_ids[u]
            for v, pair in nbrs.items():
                sources.append(uid)
                targets.append(node_ids[v])
                expiries.append(pair.max_expiry)
        if sources:
            src = np.asarray(sources, dtype=np.int64)
            dst = np.asarray(targets, dtype=np.int64)
            exp = np.asarray(expiries, dtype=np.float64)
            order = np.argsort(src, kind="stable")
            src = src[order]
            indices = dst[order]
            exp = exp[order]
            counts = np.bincount(src, minlength=num_nodes)
        else:
            indices = np.empty(0, dtype=np.int64)
            exp = np.empty(0, dtype=np.float64)
            counts = np.zeros(num_nodes, dtype=np.int64)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(num_nodes, indptr, indices, exp, graph.version)

    # ------------------------------------------------------------------
    def reachable_count(
        self, source_ids: Iterable[int], min_expiry: Optional[float] = None
    ) -> int:
        """Number of distinct nodes reachable from ``source_ids``.

        Sources count themselves (reachability via the empty path), exactly
        matching :func:`repro.influence.reachability.reachable_set`.  With
        ``min_expiry`` only pairs whose max expiry clears the horizon are
        traversed.
        """
        if self.num_pairs <= self.SCALAR_PAIR_LIMIT:
            return len(self._scalar_reach(source_ids, min_expiry))
        frontier = self._seed_frontier(source_ids)
        if frontier is None:
            return 0
        count = int(frontier.size)
        for frontier in self._expand_levels(frontier, min_expiry):
            count += int(frontier.size)
        return count

    def reachable_ids(
        self, source_ids: Iterable[int], min_expiry: Optional[float] = None
    ) -> Set[int]:
        """The reachable id set itself (tests and offline analysis)."""
        if self.num_pairs <= self.SCALAR_PAIR_LIMIT:
            return self._scalar_reach(source_ids, min_expiry)
        frontier = self._seed_frontier(source_ids)
        if frontier is None:
            return set()
        reached = set(frontier.tolist())
        for frontier in self._expand_levels(frontier, min_expiry):
            reached.update(frontier.tolist())
        return reached

    # ------------------------------------------------------------------
    def _scalar_reach(
        self, source_ids: Iterable[int], min_expiry: Optional[float]
    ) -> Set[int]:
        """Plain-Python traversal of the flat arrays (small-graph path)."""
        indptr, indices, expiries = self._scalar_view()
        visited = set()
        stack = []
        for node_id in source_ids:
            if node_id < 0 or node_id >= self.num_nodes:
                raise IndexError(
                    f"source id {node_id} out of range [0, {self.num_nodes})"
                )
            if node_id not in visited:
                visited.add(node_id)
                stack.append(node_id)
        while stack:
            node_id = stack.pop()
            for slot in range(indptr[node_id], indptr[node_id + 1]):
                if min_expiry is not None and expiries[slot] < min_expiry:
                    continue
                successor = indices[slot]
                if successor not in visited:
                    visited.add(successor)
                    stack.append(successor)
        return visited

    def _scalar_view(self):
        """Python-list mirror of the arrays, built once per snapshot."""
        if self._scalar is None:
            self._scalar = (
                self.indptr.tolist(),
                self.indices.tolist(),
                self.expiries.tolist(),
            )
        return self._scalar

    def _seed_frontier(self, source_ids: Iterable[int]) -> Optional[np.ndarray]:
        """Deduplicated, stamped source frontier (None when empty)."""
        frontier = np.unique(np.asarray(list(source_ids), dtype=np.int64))
        if frontier.size == 0:
            return None
        if frontier[0] < 0 or frontier[-1] >= self.num_nodes:
            raise IndexError(
                f"source id out of range [0, {self.num_nodes}) in {frontier}"
            )
        self._stamp += 1
        self._visit[frontier] = self._stamp
        return frontier

    def _expand_levels(self, frontier: np.ndarray, min_expiry: Optional[float]):
        """Yield successive BFS frontiers (each already stamped visited)."""
        indptr = self.indptr
        indices = self.indices
        expiries = self.expiries
        visit = self._visit
        stamp = self._stamp
        while frontier.size:
            starts = indptr[frontier]
            counts = indptr[frontier + 1] - starts
            total = int(counts.sum())
            if total == 0:
                return
            # Gather the concatenated adjacency slices of the frontier:
            # block i contributes positions starts[i] .. starts[i]+counts[i].
            ends = np.cumsum(counts)
            slots = np.repeat(starts - ends + counts, counts) + np.arange(total)
            if min_expiry is not None:
                slots = slots[expiries[slots] >= min_expiry]
            neighbors = indices[slots]
            neighbors = neighbors[visit[neighbors] != stamp]
            if neighbors.size == 0:
                return
            frontier = np.unique(neighbors)
            visit[frontier] = stamp
            yield frontier

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRSnapshot(nodes={self.num_nodes}, pairs={self.num_pairs}, "
            f"version={self.version})"
        )
