"""Compact CSR engines for a :class:`~repro.tdn.graph.TDNGraph`.

The influence oracle's cost model bottoms out in directed reachability, and
the reference implementation walks the graph's dict-of-dict adjacency one
Python object at a time.  This module holds the compact engines behind the
oracle's ``backend="csr"`` mode.

Two layers
----------
:class:`CSRSnapshot` is the immutable base layer: the alive pair adjacency
flattened into three numpy arrays —

* ``indptr``  (``num_nodes + 1``): per-node slice boundaries,
* ``indices``: successor ids, grouped by source id,
* ``expiries``: the per-pair *maximum* alive expiry,

indexed by the graph's dense interned node ids.  Horizon filtering stays
O(1) per neighbor exactly as in the dict substrate (compare a pair's max
expiry against ``min_expiry``), but the BFS frontier expansion becomes a
handful of vectorized gathers per level instead of per-edge Python dict
probes.

:class:`DeltaCSR` is the *incrementally maintained* engine the graph
actually serves queries from (:meth:`TDNGraph.csr`).  Instead of rebuilding
a snapshot on every graph version (O(V + P) per batch), it keeps

* an immutable :class:`CSRSnapshot` **base**,
* a per-node **append overlay** of post-base arrivals (forward and reverse,
  so the transpose stays incremental too), and
* a lazy **tombstone count** for expiries.

Arrivals append one ``(neighbor, expiry)`` entry in O(1); expiries cost
O(1) because a dead pair's base entry is *stale-but-harmless*: an expired
edge has ``expiry <= t``, while every live query horizon is at least
``t + 1`` (an alive edge always satisfies ``expiry >= t + 1``), so queries
clamp their horizon to ``max(min_expiry, t + 1)`` and stale entries filter
themselves out.  When the overlay-plus-tombstone fraction crosses
:attr:`DeltaCSR.COMPACT_FRACTION` of the base, the engine compacts into a
fresh base — so a stream of B-edge batches pays amortized O(B), not
O(V + P), per step.

Traversals
----------
Neither engine carries a frontier or bit-plane loop of its own any more:
every sweep — forward reachability, the transpose-backed reverse
(ancestor) sweep behind ``changed_nodes``, the 64-wide bit-plane
``spread_counts``, and the weighted bit-plane ``weighted_spread_sums`` —
routes through the shared :class:`repro.kernels.TraversalKernel`.
:class:`CSRSnapshot` adapts one forward kernel over its arrays;
:class:`DeltaCSR` adapts one kernel per direction, injecting its arrival
overlay through the kernel's overlay protocol (:class:`repro.kernels.
DictOverlay`) and resolving the ``t + 1`` horizon clamp before every
call.  The worker-side :class:`repro.parallel.plane.PlaneEngine` adapts
the *same* kernel over the published flat arrays, which is what makes
the sharded executor's bit-for-bit guarantee structural rather than a
hand-synced convention.
"""

from __future__ import annotations

import os
import time
from typing import Iterable, List, Optional, Sequence, Set

import numpy as np

from repro.kernels import (
    PLANE_WIDTH,
    DictOverlay,
    Fold,
    TraversalKernel,
    build_transpose,
    max_in_expiries,
    resolve_backend,
    resolve_fold,
)
from repro.utils.rng import make_np_rng

__all__ = ["CSRSnapshot", "DeltaCSR", "calibrate_scalar_pair_limit"]

#: Selectable maintenance policies for :class:`DeltaCSR`.
CSR_MODES = ("delta", "rebuild")

#: Environment override for the scalar/vector traversal cutover.
SCALAR_LIMIT_ENV = "REPRO_SCALAR_PAIR_LIMIT"

#: Fallback cutover when calibration is unavailable or implausible —
#: the historical fixed constant, measured on commodity x86.
DEFAULT_SCALAR_PAIR_LIMIT = 2048

#: Calibration probe sizes (alive pairs) and clamp bounds.
_PROBE_SIZES = (256, 1024, 4096, 16384)
_LIMIT_BOUNDS = (128, 65536)

#: Process-wide cache of the measured cutover (calibrate once, reuse).
_calibrated_limit: Optional[int] = None


def _probe_arrays(num_pairs: int) -> tuple:
    """Deterministic synthetic CSR arrays for the calibration probe.

    A random-ish sparse digraph (mean out-degree 4) whose BFS runs a
    handful of levels — the same shape the oracle's spread sweeps see —
    built directly in array form so the probe never touches a graph.
    """
    num_nodes = max(num_pairs // 4, 8)
    rng = make_np_rng(12345)
    targets = rng.integers(0, num_nodes, size=num_pairs)
    counts = np.bincount(
        rng.integers(0, num_nodes, size=num_pairs), minlength=num_nodes
    )
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    expiries = np.full(num_pairs, np.inf, dtype=np.float64)
    return num_nodes, indptr, targets.astype(np.int64), expiries


def calibrate_scalar_pair_limit(force: bool = False) -> int:
    """Measure where vectorized traversal starts beating the scalar loop.

    Runs once per process (cached; ``force=True`` re-measures): for
    increasing probe sizes, a full-reach sweep is timed on both of the
    kernel's paths over identical arrays, and the cutover is placed at
    the midpoint below the first size the vector path wins.  The result
    is clamped to a plausible band and falls back to the historical 2048
    constant if the probe misbehaves — both paths are result-identical,
    so a miscalibrated cutover can only ever cost time, never change a
    value.
    """
    global _calibrated_limit
    if _calibrated_limit is not None and not force:
        return _calibrated_limit

    def best_of(runs, func):
        best = float("inf")
        for _ in range(runs):
            started = time.perf_counter()
            func()
            best = min(best, time.perf_counter() - started)
        return best

    limit = _LIMIT_BOUNDS[1]
    try:
        for num_pairs in _PROBE_SIZES:
            num_nodes, indptr, indices, expiries = _probe_arrays(num_pairs)
            probe = TraversalKernel(indptr, indices, expiries)
            seeds = list(range(min(4, num_nodes)))
            scalar_s = best_of(3, lambda: probe.reach_scalar(seeds, None))
            vector_s = best_of(3, lambda: probe.reach_vector(seeds, None))
            if vector_s <= scalar_s:
                limit = max(num_pairs // 2, _PROBE_SIZES[0] // 2)
                break
    except Exception:  # pragma: no cover - probe must never break queries
        limit = DEFAULT_SCALAR_PAIR_LIMIT
    lo, hi = _LIMIT_BOUNDS
    _calibrated_limit = min(max(limit, lo), hi)
    return _calibrated_limit


def resolve_scalar_pair_limit(
    override: Optional[int] = None, backend: str = "python"
) -> int:
    """The active scalar/vector cutover, by descending precedence.

    1. ``CSRSnapshot.SCALAR_PAIR_LIMIT`` when not ``None`` — the legacy
       one-knob class attribute (tests monkeypatch it; both engines and
       every snapshot obey it immediately);
    2. a per-engine constructor ``override``;
    3. the ``REPRO_SCALAR_PAIR_LIMIT`` environment variable;
    4. per resolved kernel ``backend``: under ``"native"`` the cutover is
       pinned to 0 (always vectorized — the calibration probe measures
       interpreted loops against numpy dispatch, a crossover the compiled
       fixpoints don't have, and the scalar path would *leave* the jit);
       under ``"python"`` the measured per-process calibration
       (:func:`calibrate_scalar_pair_limit`) applies as before.
    """
    knob = CSRSnapshot.SCALAR_PAIR_LIMIT
    if knob is not None:
        return knob
    if override is not None:
        return override
    env = os.environ.get(SCALAR_LIMIT_ENV)
    if env is not None:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    if backend == "native":
        return 0
    return calibrate_scalar_pair_limit()


class CSRSnapshot:
    """Immutable flat-array view of the alive directed pairs of a TDN.

    Build with :meth:`build`.  All arrays are indexed by the graph's
    interned node ids, including ids whose node has no alive edges (their
    adjacency slice is simply empty), so id-keyed callers never need to
    translate between id spaces across versions.  In production the
    snapshot is the *base layer* of :class:`DeltaCSR`; standalone use
    (tests, offline analysis) queries it directly, as a thin adapter over
    one forward :class:`~repro.kernels.TraversalKernel`.
    """

    __slots__ = (
        "num_nodes",
        "num_pairs",
        "indptr",
        "indices",
        "expiries",
        "version",
        "scalar_pair_limit",
        "backend",
        "_kernel",
    )

    #: Below this many alive pairs, traversal walks the flat arrays with a
    #: plain Python loop: per-level numpy dispatch overhead dominates on
    #: tiny graphs, while the vectorized frontier expansion wins by a wide
    #: margin above it.  Tests pin both paths to identical results.  The
    #: delta engine reads this class attribute too, so one knob (and one
    #: monkeypatch) governs both engines.  ``None`` (the default) means
    #: *adaptive*: the cutover is resolved per process through
    #: :func:`resolve_scalar_pair_limit` — constructor override, then the
    #: ``REPRO_SCALAR_PAIR_LIMIT`` environment variable, then a measured
    #: calibration probe (:func:`calibrate_scalar_pair_limit`); setting a
    #: number here pins both engines exactly as before.
    SCALAR_PAIR_LIMIT: Optional[int] = None

    def __init__(
        self,
        num_nodes: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        expiries: np.ndarray,
        version: int,
        scalar_pair_limit: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.num_nodes = num_nodes
        self.num_pairs = int(indices.shape[0])
        self.indptr = indptr
        self.indices = indices
        self.expiries = expiries
        self.version = version
        self.scalar_pair_limit = scalar_pair_limit
        # Resolved here (not just in the kernel) so the cutover resolver
        # can re-resolve per backend: the calibrated scalar/vector
        # crossover measured for the python loops is wrong for jitted
        # loops, so "native" pins the kernel to the vectorized entry.
        self.backend = resolve_backend(backend)
        self._kernel = TraversalKernel(
            indptr,
            indices,
            expiries,
            num_nodes=num_nodes,
            entry_count=self.num_pairs,
            limit_resolver=self._scalar_limit,
            backend=self.backend,
        )

    def _scalar_limit(self) -> int:
        """The cutover in force *now* (class knob re-checked per query)."""
        return resolve_scalar_pair_limit(self.scalar_pair_limit, self.backend)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph,
        scalar_pair_limit: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> "CSRSnapshot":
        """Flatten ``graph``'s alive pair adjacency into CSR arrays.

        Cost is O(V + P log P) for P alive pairs (one stable sort groups
        the pair list by source id); the per-pair max expiry is read off
        the graph's cached :class:`_PairEdges` maxima, so no multiset is
        ever re-scanned.  The adaptive scalar/vector cutover is resolved
        here — i.e. the calibration probe, if it has not run yet in this
        process, runs at snapshot build, never inside a query.
        """
        num_nodes = graph.num_interned
        node_ids = graph._node_ids
        sources = []
        targets = []
        expiries = []
        for u, nbrs in graph._out.items():
            if not nbrs:
                continue
            uid = node_ids[u]
            for v, pair in nbrs.items():
                sources.append(uid)
                targets.append(node_ids[v])
                expiries.append(pair.max_expiry)
        if sources:
            src = np.asarray(sources, dtype=np.int64)
            dst = np.asarray(targets, dtype=np.int64)
            exp = np.asarray(expiries, dtype=np.float64)
            order = np.argsort(src, kind="stable")
            src = src[order]
            indices = dst[order]
            exp = exp[order]
            counts = np.bincount(src, minlength=num_nodes)
        else:
            indices = np.empty(0, dtype=np.int64)
            exp = np.empty(0, dtype=np.float64)
            counts = np.zeros(num_nodes, dtype=np.int64)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        resolved = resolve_backend(backend)
        resolve_scalar_pair_limit(scalar_pair_limit, resolved)  # calibrate
        return cls(
            num_nodes, indptr, indices, exp, graph.version,
            scalar_pair_limit=scalar_pair_limit,
            backend=resolved,
        )

    # ------------------------------------------------------------------
    def reachable_count(
        self, source_ids: Iterable[int], min_expiry: Optional[float] = None
    ) -> int:
        """Number of distinct nodes reachable from ``source_ids``.

        Sources count themselves (reachability via the empty path), exactly
        matching :func:`repro.influence.reachability.reachable_set`.  With
        ``min_expiry`` only pairs whose max expiry clears the horizon are
        traversed.
        """
        return self._kernel.reachable_count(source_ids, min_expiry)

    def reachable_ids(
        self, source_ids: Iterable[int], min_expiry: Optional[float] = None
    ) -> Set[int]:
        """The reachable id set itself (tests and offline analysis)."""
        return self._kernel.reachable_ids(source_ids, min_expiry)

    def fold_node_values(
        self, fold: Fold, min_expiry: Optional[float] = None
    ) -> np.ndarray:
        """Dense node values a derived fold scores reached nodes with.

        For :class:`~repro.kernels.folds.TimeDecayFold` this is the
        per-node max alive in-expiry squashed through the decay curve;
        derived fresh per ``(arrays, horizon)`` so the values always
        describe the adjacency the sweep itself traverses.
        """
        max_in = max_in_expiries(
            self.indices, self.expiries, self.num_nodes, min_expiry
        )
        return fold.values_from_max_in(max_in, min_expiry)

    def fold_spread_sums(
        self,
        id_sets: Sequence[Sequence[int]],
        min_expiry: Optional[float],
        fold: Fold,
        weights: Optional[np.ndarray] = None,
    ) -> List[float]:
        """Per-set scores under an arbitrary registered fold semantics.

        ``count`` routes through the byte-identical popcount path,
        ``weighted_sum`` expects caller-supplied ``weights``, and derived
        folds (``time_decay``) compute their node values from this
        snapshot's own arrays — see :mod:`repro.kernels.folds`.
        """
        fold = resolve_fold(fold)
        node_values = weights
        if fold.derives_node_values:
            node_values = self.fold_node_values(fold, min_expiry)
        return fold.batch(self._kernel, id_sets, min_expiry, node_values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CSRSnapshot(nodes={self.num_nodes}, pairs={self.num_pairs}, "
            f"version={self.version})"
        )


class DeltaCSR:
    """Incrementally maintained delta-CSR reachability engine.

    Owned by the graph (:meth:`TDNGraph.csr` creates it lazily and keeps it
    for the graph's lifetime); the graph's mutation hooks feed it directly:

    * :meth:`record_arrival` appends one overlay entry per inserted edge —
      forward (``u -> (v, expiry)``) and reverse (``v -> (u, expiry)``), so
      the transpose never needs a per-version rebuild either;
    * :meth:`record_pair_death` counts a tombstone when a pair's last alive
      edge expires.  The dead pair's base entry stays in place: its
      recorded expiry is ``<= t`` while every query horizon is clamped to
      ``>= t + 1``, so it can never be traversed again.

    :meth:`sync` (called from :meth:`TDNGraph.csr`) compacts overlay and
    tombstones into a fresh base once their combined count crosses
    ``max(COMPACT_MIN, COMPACT_FRACTION * base pairs)``; between
    compactions every mutation is O(1) and every query sees the exact
    current graph.  ``mode="rebuild"`` forces a compaction on every version
    change, reproducing the PR 1 rebuild-per-version cost model for
    benchmarking.

    Every traversal is served by one shared :class:`~repro.kernels.
    TraversalKernel` per direction — base arrays (forward) or the lazily
    built base transpose (reverse), with the matching arrival overlay
    injected through the kernel's overlay protocol.  The engine's only
    jobs are maintenance (overlay, tombstones, compaction) and resolving
    the ``t + 1`` horizon clamp before each kernel call.
    """

    #: Compact when overlay entries + tombstones exceed this fraction of
    #: the base pair count ...
    COMPACT_FRACTION = 0.25
    #: ... but never before this many deltas have accumulated (tiny bases
    #: would otherwise compact on every batch).
    COMPACT_MIN = 512
    #: Candidate sets packed per bit-plane traversal — the kernel's
    #: uint64 mask width, re-exported from the single source of truth
    #: (:data:`repro.kernels.PLANE_WIDTH`; fixed, not an override knob).
    PLANE_WIDTH = PLANE_WIDTH

    __slots__ = (
        "_graph",
        "mode",
        "scalar_pair_limit",
        "backend",
        "_base",
        "_tindptr",
        "_tindices",
        "_texpiries",
        "_ov_out",
        "_ov_in",
        "_ov_out_flag",
        "_ov_in_flag",
        "_ov_entries",
        "_tombstones",
        "_fwd",
        "_rev",
        "compactions",
        "version",
    )

    def __init__(
        self,
        graph,
        mode: str = "delta",
        scalar_pair_limit: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        if mode not in CSR_MODES:
            raise ValueError(f"mode must be one of {CSR_MODES}, got {mode!r}")
        self._graph = graph
        self.mode = mode
        self.scalar_pair_limit = scalar_pair_limit
        self.backend = resolve_backend(backend)
        self.compactions = 0
        self._fwd: Optional[TraversalKernel] = None
        self._rev: Optional[TraversalKernel] = None
        self._compact()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Current interned-id space (grows as nodes appear)."""
        return self._graph.num_interned

    @property
    def num_entries(self) -> int:
        """Base pair entries plus overlay entries (stale ones included)."""
        return self._base.num_pairs + self._ov_entries

    @property
    def overlay_entries(self) -> int:
        """Overlay arrivals accumulated since the last compaction."""
        return self._ov_entries

    @property
    def tombstones(self) -> int:
        """Pair deaths accumulated since the last compaction."""
        return self._tombstones

    @property
    def base(self) -> CSRSnapshot:
        """The immutable compacted base snapshot."""
        return self._base

    # ------------------------------------------------------------------
    # Mutation hooks (called by TDNGraph)
    # ------------------------------------------------------------------
    def record_arrival(self, uid: int, vid: int, expiry: float) -> None:
        """Append one arrived edge to the forward and reverse overlays."""
        top = uid if uid > vid else vid
        if top >= self._ov_out_flag.shape[0]:
            self._grow(top + 1)
        self._ov_out.setdefault(uid, []).append((vid, expiry))
        self._ov_in.setdefault(vid, []).append((uid, expiry))
        self._ov_out_flag[uid] = True
        self._ov_in_flag[vid] = True
        self._ov_entries += 1

    def record_pair_death(self) -> None:
        """Count a tombstone for a pair whose last alive edge expired."""
        self._tombstones += 1

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def sync(self) -> None:
        """Bring the engine up to date with the graph (maybe compact)."""
        graph = self._graph
        if self.mode == "rebuild":
            if self.version != graph.version:
                self._compact()
            return
        if self._ov_entries + self._tombstones > max(
            self.COMPACT_MIN, self.COMPACT_FRACTION * self._base.num_pairs
        ):
            self._compact()
        else:
            self.version = graph.version

    def _scalar_limit(self) -> int:
        """The cutover in force *now* (class knob re-checked per query)."""
        return resolve_scalar_pair_limit(self.scalar_pair_limit, self.backend)

    def _compact(self) -> None:
        """Fold overlay and tombstones into a fresh immutable base."""
        graph = self._graph
        self._base = CSRSnapshot.build(
            graph,
            scalar_pair_limit=self.scalar_pair_limit,
            backend=self.backend,
        )
        self._tindptr = None
        self._tindices = None
        self._texpiries = None
        self._ov_out = {}
        self._ov_in = {}
        capacity = graph.num_interned
        if self._fwd is not None:
            capacity = max(capacity, self._fwd.num_nodes)
        self._ov_out_flag = np.zeros(capacity, dtype=bool)
        self._ov_in_flag = np.zeros(capacity, dtype=bool)
        self._ov_entries = 0
        self._tombstones = 0
        self._fwd = None
        self._rev = None
        self.compactions += 1
        self.version = graph.version

    def _grow(self, needed: int) -> None:
        """Amortized-doubling growth of the id-indexed overlay buffers."""
        capacity = max(needed, 2 * self._ov_out_flag.shape[0])
        for name in ("_ov_out_flag", "_ov_in_flag"):
            flags = getattr(self, name)
            grown_flags = np.zeros(capacity, dtype=bool)
            grown_flags[: flags.shape[0]] = flags
            setattr(self, name, grown_flags)
        # The kernels hold references to the replaced flag arrays; rebuild
        # them lazily against the fresh buffers on the next query.
        self._fwd = None
        self._rev = None

    def _effective_horizon(self, min_expiry: Optional[float]) -> float:
        """Clamp the query horizon to ``t + 1``.

        Every alive edge satisfies ``expiry >= t + 1`` (an edge alive at
        ``t`` is removed at ``expiry > t``), so the clamp never hides a
        traversable pair; it *does* hide every stale base/overlay entry,
        whose recorded expiry is ``<= t``.  This is what makes expiries
        O(1): lazy deletion with the horizon test as the filter.
        """
        floor = float(self._graph.time + 1)
        if min_expiry is None or min_expiry < floor:
            return floor
        return min_expiry

    def _kernel(self, reverse: bool) -> TraversalKernel:
        """The direction's shared kernel, current as of this call."""
        kernel = self._rev if reverse else self._fwd
        if kernel is None:
            if reverse:
                tindptr, tindices, texpiries = self._transpose_arrays()
                kernel = TraversalKernel(
                    tindptr,
                    tindices,
                    texpiries,
                    num_nodes=self.num_nodes,
                    overlay=DictOverlay(self._ov_in, self._ov_in_flag),
                    limit_resolver=self._scalar_limit,
                    backend=self.backend,
                )
                self._rev = kernel
            else:
                base = self._base
                kernel = TraversalKernel(
                    base.indptr,
                    base.indices,
                    base.expiries,
                    num_nodes=self.num_nodes,
                    overlay=DictOverlay(self._ov_out, self._ov_out_flag),
                    limit_resolver=self._scalar_limit,
                    backend=self.backend,
                )
                self._fwd = kernel
        kernel.entry_count = self.num_entries
        kernel.ensure_capacity(self.num_nodes)
        return kernel

    def kernel_clone(self, reverse: bool = False) -> TraversalKernel:
        """A private-workspace clone of a direction's current kernel.

        Built for the thread-mode executor: clones share this engine's
        (query-immutable) arrays and overlay but own their visited
        buffers, so concurrent sweeps cannot trample each other.  Callers
        must treat a clone as stale once the graph version moves.
        """
        return self._kernel(reverse).clone()

    def _transpose_arrays(self):
        """Lazily build the transpose of the base (overlay stays separate)."""
        if self._tindptr is None:
            base = self._base
            self._tindptr, self._tindices, self._texpiries = build_transpose(
                base.indptr, base.indices, base.expiries
            )
        return self._tindptr, self._tindices, self._texpiries

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def reachable_count(
        self, source_ids: Iterable[int], min_expiry: Optional[float] = None
    ) -> int:
        """Number of distinct nodes reachable from ``source_ids``."""
        eff = self._effective_horizon(min_expiry)
        return self._kernel(False).reachable_count(source_ids, eff)

    def reachable_ids(
        self, source_ids: Iterable[int], min_expiry: Optional[float] = None
    ) -> Set[int]:
        """The reachable id set itself (weighted oracle, tests)."""
        eff = self._effective_horizon(min_expiry)
        return self._kernel(False).reachable_ids(source_ids, eff)

    def ancestor_ids(
        self, target_ids: Iterable[int], min_expiry: Optional[float] = None
    ) -> Set[int]:
        """All ids that can reach ``target_ids`` (transpose-backed).

        This is the engine behind ``changed_nodes``: the reverse BFS runs
        on the lazily built transpose of the base plus the reverse overlay,
        through the same shared kernel as the forward sweep.
        """
        eff = self._effective_horizon(min_expiry)
        return self._kernel(True).reachable_ids(target_ids, eff)

    def touched_cone_ids(self, seed_ids: Iterable[int]) -> Set[int]:
        """Ids whose forward cone a batch of deltas touched (seeds closed).

        ``seed_ids`` are the dirty sources journaled by the graph since a
        consumer's last sync: the sources of overlay arrivals plus the
        sources of tombstoned pairs.  Inserting or expiring an edge
        ``u -> v`` can only change the reachable set of nodes that can
        reach ``u`` *now*, so closing the seeds under the reverse-transpose
        :meth:`ancestor_ids` sweep (at the widest live horizon, ``t + 1``)
        yields a superset of every node whose spread may have changed —
        the delta-aware oracle memo evicts exactly the entries whose key
        intersects this set and provably keeps everything else.
        """
        return self.ancestor_ids(seed_ids, None)

    def spread_counts(
        self,
        id_sets: Sequence[Sequence[int]],
        min_expiry: Optional[float] = None,
    ) -> List[int]:
        """Per-set reachable counts for a whole batch of candidate sets.

        Semantically ``[self.reachable_count(s, min_expiry) for s in
        id_sets]``, but the physical traversal is shared: the kernel packs
        up to :attr:`PLANE_WIDTH` sets into uint64 visited-mask planes
        (bit *i* of ``masks[v]`` = "set *i* reaches *v*") and propagates
        all planes to fixpoint in one multi-source sweep.  Callers own the
        per-set *accounting*; this method only shares the physics.
        """
        eff = self._effective_horizon(min_expiry)
        return self._kernel(False).spread_counts(id_sets, eff)

    def weighted_spread_sums(
        self,
        id_sets: Sequence[Sequence[int]],
        min_expiry: Optional[float],
        weights: np.ndarray,
    ) -> List[float]:
        """Per-set reached-weight sums via the weighted bit-plane sweep.

        Semantically ``[sum of weights over self.reachable_ids(s,
        min_expiry) for s in id_sets]`` with the canonical ascending-id
        summation of :func:`repro.kernels.dense_weight_sum` — and
        bit-identical to that loop — but 64 weighted evaluations share
        each physical traversal.  ``weights`` is a dense id-indexed
        float64 array covering at least :attr:`num_nodes` entries.
        """
        eff = self._effective_horizon(min_expiry)
        return self._kernel(False).weighted_spread_sums(id_sets, eff, weights)

    def fold_node_values(
        self, fold: Fold, min_expiry: Optional[float] = None
    ) -> np.ndarray:
        """Dense node values for a derived fold, overlay included.

        The base arrays may carry stale entries for updated pairs, but
        every refresh also lives in the reverse overlay and ``max`` is
        associative — so layering the overlay maxima over the stale base
        lands on exactly the values a fresh :class:`CSRSnapshot` of the
        current graph would derive, which is what keeps delta-served and
        snapshot-served (and therefore sharded) fold scores bit-identical.
        """
        eff = self._effective_horizon(min_expiry)
        base = self._base
        max_in = max_in_expiries(
            base.indices, base.expiries, self.num_nodes, eff
        )
        for vid, entries in self._ov_in.items():
            for _, expiry in entries:
                if expiry >= eff and expiry > max_in[vid]:
                    max_in[vid] = expiry
        return fold.values_from_max_in(max_in, eff)

    def fold_spread_sums(
        self,
        id_sets: Sequence[Sequence[int]],
        min_expiry: Optional[float],
        fold: Fold,
        weights: Optional[np.ndarray] = None,
    ) -> List[float]:
        """Per-set scores under an arbitrary registered fold semantics.

        The delta twin of :meth:`CSRSnapshot.fold_spread_sums`: the
        ``t + 1`` horizon clamp is resolved here, derived node values
        fold the arrival overlay in, and the sweep itself runs through
        the shared kernel with the overlay injected as usual.
        """
        fold = resolve_fold(fold)
        eff = self._effective_horizon(min_expiry)
        node_values = weights
        if fold.derives_node_values:
            node_values = self.fold_node_values(fold, min_expiry)
        return fold.batch(self._kernel(False), id_sets, eff, node_values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaCSR(mode={self.mode!r}, nodes={self.num_nodes}, "
            f"base_pairs={self._base.num_pairs}, overlay={self._ov_entries}, "
            f"tombstones={self._tombstones}, compactions={self.compactions})"
        )
