"""Interaction streams (paper Definition 2) and batching helpers.

A stream yields ``(t, batch)`` pairs in strictly increasing time order, where
``batch`` is the list of interactions arriving at step ``t`` (the paper
allows a batch of interactions per discrete step).  Algorithms never see the
stream directly — the experiment harness replays it into a shared
:class:`~repro.tdn.graph.TDNGraph` and forwards batches to each tracker — but
the abstractions here make streams composable: lifetimes can be assigned
lazily, long gaps can be compressed, and any iterable of interactions can be
replayed as a stream.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.tdn.interaction import Interaction
from repro.tdn.lifetimes import LifetimePolicy

Batch = List[Interaction]


class InteractionStream(ABC):
    """Abstract chronological source of interaction batches."""

    @abstractmethod
    def __iter__(self) -> Iterator[Tuple[int, Batch]]:
        """Yield ``(t, batch)`` pairs with strictly increasing ``t``."""

    def with_lifetimes(self, policy: LifetimePolicy) -> "InteractionStream":
        """Return a stream whose interactions carry lifetimes from ``policy``.

        Interactions that already carry a lifetime are left untouched, so a
        policy can be used as a default for partially annotated data.
        """
        return _LifetimeAssignedStream(self, policy)

    def take(self, max_steps: int) -> "InteractionStream":
        """Return a stream truncated to the first ``max_steps`` batches."""
        return _TruncatedStream(self, max_steps)

    def materialize(self) -> List[Tuple[int, Batch]]:
        """Consume the stream into a list (for tests and re-runs)."""
        return list(self)


class MemoryStream(InteractionStream):
    """A stream backed by an in-memory collection of interactions.

    Interactions are grouped by timestamp and replayed in order.  Timestamps
    may be sparse; :class:`MemoryStream` yields only steps that actually have
    arrivals unless ``fill_gaps=True``, in which case empty batches are
    yielded for the intermediate steps (some trackers want to observe every
    tick so that expiries alone can change the solution).
    """

    def __init__(
        self, interactions: Iterable[Interaction], *, fill_gaps: bool = False
    ) -> None:
        by_time: Dict[int, Batch] = {}
        for interaction in interactions:
            by_time.setdefault(interaction.time, []).append(interaction)
        self._times = sorted(by_time)
        self._by_time = by_time
        self._fill_gaps = fill_gaps

    def __iter__(self) -> Iterator[Tuple[int, Batch]]:
        if not self._times:
            return
        if self._fill_gaps:
            for t in range(self._times[0], self._times[-1] + 1):
                yield (t, self._by_time.get(t, []))
        else:
            for t in self._times:
                yield (t, self._by_time[t])

    def __len__(self) -> int:
        if not self._times:
            return 0
        if self._fill_gaps:
            return self._times[-1] - self._times[0] + 1
        return len(self._times)


class BatchedStream(InteractionStream):
    """Re-times an interaction sequence into fixed-size batches.

    The paper's experiments feed interactions "sequentially according to
    their timestamps" with one (or a few) interactions per step; replaying a
    large trace at full temporal resolution is wasteful when only the
    *order* matters.  ``BatchedStream`` assigns consecutive groups of
    ``batch_size`` interactions to consecutive time steps 0, 1, 2, ...,
    preserving order while compressing the clock.
    """

    def __init__(
        self, interactions: Sequence[Interaction], batch_size: int = 1
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._interactions = list(interactions)
        self._batch_size = batch_size

    def __iter__(self) -> Iterator[Tuple[int, Batch]]:
        step = 0
        for start in range(0, len(self._interactions), self._batch_size):
            chunk = self._interactions[start : start + self._batch_size]
            batch = [
                Interaction(i.source, i.target, step, i.lifetime) for i in chunk
            ]
            yield (step, batch)
            step += 1

    def __len__(self) -> int:
        return -(-len(self._interactions) // self._batch_size)


class _LifetimeAssignedStream(InteractionStream):
    """Lazily applies a lifetime policy to an upstream stream."""

    def __init__(self, upstream: InteractionStream, policy: LifetimePolicy) -> None:
        self._upstream = upstream
        self._policy = policy

    def __iter__(self) -> Iterator[Tuple[int, Batch]]:
        for t, batch in self._upstream:
            assigned = [
                i if i.lifetime is not None else self._policy.assign(i)
                for i in batch
            ]
            yield (t, assigned)


class _TruncatedStream(InteractionStream):
    """Yields at most ``max_steps`` batches from an upstream stream."""

    def __init__(self, upstream: InteractionStream, max_steps: int) -> None:
        if max_steps < 0:
            raise ValueError(f"max_steps must be >= 0, got {max_steps}")
        self._upstream = upstream
        self._max_steps = max_steps

    def __iter__(self) -> Iterator[Tuple[int, Batch]]:
        for index, item in enumerate(self._upstream):
            if index >= self._max_steps:
                return
            yield item


def group_by_lifetime(batch: Iterable[Interaction]) -> Dict[Optional[int], Batch]:
    """Partition a batch by lifetime: the paper's ``E_t^(l)`` groups.

    BASICREDUCTION and HISTAPPROX both route the arriving edges by lifetime
    (``E_t = union of E_t^(l)``); infinite lifetimes map to key ``None``.
    """
    groups: Dict[Optional[int], Batch] = {}
    for interaction in batch:
        groups.setdefault(interaction.lifetime, []).append(interaction)
    return groups
