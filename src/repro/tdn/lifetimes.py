"""Lifetime assignment policies (paper Section II-B, Examples 3-5).

A lifetime policy decides, for each arriving interaction, how many time steps
the corresponding edge survives in the TDN.  The policy is the single knob
that configures the TDN model:

* :class:`InfiniteLifetime` — addition-only networks (ADNs, Example 3);
* :class:`ConstantLifetime` — sliding-window networks of width ``W``
  (Example 4);
* :class:`GeometricLifetime` — probabilistic time-decaying networks where
  each existing edge is forgotten with probability ``p`` per step
  (Example 5); this is the assignment used throughout the paper's
  experiments (Section V-B), truncated at the maximum lifetime ``L``;
* :class:`UniformLifetime`, :class:`PowerLawLifetime` — additional decay
  shapes mentioned in the paper's remarks on BASICREDUCTION efficiency;
* :class:`FunctionLifetime` — arbitrary user-chosen assignment, matching the
  paper's statement that ``l_tau(e)`` is a user-chosen input.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Callable, Optional

from repro.tdn.interaction import Interaction
from repro.utils.rng import SeedLike, make_rng
from repro.utils.validation import check_fraction, check_positive, check_positive_int


class LifetimePolicy(ABC):
    """Assigns a lifetime to each arriving interaction.

    Subclasses implement :meth:`draw`; :meth:`assign` wraps it to produce a
    new :class:`Interaction` carrying the drawn lifetime.  Policies with a
    finite maximum expose it via :attr:`max_lifetime` (the paper's ``L``),
    which BASICREDUCTION uses to size its instance array.
    """

    #: Upper bound ``L`` on any drawn lifetime, or ``None`` when unbounded.
    max_lifetime: Optional[int] = None

    @abstractmethod
    def draw(self, interaction: Interaction) -> Optional[int]:
        """Return a lifetime (>= 1) for ``interaction``, or ``None`` = infinite."""

    def assign(self, interaction: Interaction) -> Interaction:
        """Return a copy of ``interaction`` carrying a freshly drawn lifetime."""
        return interaction.with_lifetime(self.draw(interaction))


class InfiniteLifetime(LifetimePolicy):
    """Every edge lives forever: the addition-only network of Example 3."""

    max_lifetime = None

    def draw(self, interaction: Interaction) -> Optional[int]:
        return None

    def __repr__(self) -> str:
        return "InfiniteLifetime()"


class ConstantLifetime(LifetimePolicy):
    """Every edge lives exactly ``window`` steps: Example 4's sliding window."""

    def __init__(self, window: int) -> None:
        self.window = check_positive_int(window, "window")
        self.max_lifetime = self.window

    def draw(self, interaction: Interaction) -> int:
        return self.window

    def __repr__(self) -> str:
        return f"ConstantLifetime(window={self.window})"


class GeometricLifetime(LifetimePolicy):
    """Lifetimes sampled from ``Pr(l) ∝ (1 - p)^(l-1) p`` truncated at ``L``.

    Equivalent to deleting each existing edge independently with probability
    ``p`` at every step (paper Example 5).  The paper's experiments use this
    policy with ``p`` between 0.001 and 0.008 and ``L`` between 1 000 and
    100 000.

    Sampling uses the inverse-CDF of the truncated geometric so that a single
    uniform draw produces the lifetime; this keeps streams with millions of
    interactions cheap to generate.
    """

    def __init__(
        self, p: float, max_lifetime: Optional[int] = None, *, seed: SeedLike = None
    ) -> None:
        self.p = check_fraction(p, "p")
        if max_lifetime is not None:
            max_lifetime = check_positive_int(max_lifetime, "max_lifetime")
        self.max_lifetime = max_lifetime
        self._rng = make_rng(seed)
        # Precompute log(1 - p) once; the inverse CDF is
        # l = ceil(log(1 - u * mass) / log(1 - p)) with mass the truncated
        # total probability.
        self._log_q = math.log1p(-self.p)
        if max_lifetime is None:
            self._trunc_mass = 1.0
        else:
            # Pr(l <= L) = 1 - (1 - p)^L
            self._trunc_mass = -math.expm1(max_lifetime * self._log_q)

    def draw(self, interaction: Interaction) -> int:
        u = self._rng.random()
        # Inverse CDF of the (truncated) geometric distribution.
        value = math.ceil(math.log1p(-u * self._trunc_mass) / self._log_q)
        value = max(1, value)
        if self.max_lifetime is not None:
            value = min(value, self.max_lifetime)
        return value

    def __repr__(self) -> str:
        return f"GeometricLifetime(p={self.p}, max_lifetime={self.max_lifetime})"


class UniformLifetime(LifetimePolicy):
    """Lifetimes drawn uniformly from ``[low, high]`` (inclusive)."""

    def __init__(self, low: int, high: int, *, seed: SeedLike = None) -> None:
        self.low = check_positive_int(low, "low")
        self.high = check_positive_int(high, "high")
        if self.high < self.low:
            raise ValueError(f"high must be >= low, got [{low}, {high}]")
        self.max_lifetime = self.high
        self._rng = make_rng(seed)

    def draw(self, interaction: Interaction) -> int:
        return self._rng.randint(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLifetime(low={self.low}, high={self.high})"


class PowerLawLifetime(LifetimePolicy):
    """Lifetimes with ``Pr(l) ∝ l^(-alpha)`` on ``{1, ..., L}``.

    The paper remarks that power-law-distributed lifetimes keep
    BASICREDUCTION nearly as efficient as SIEVEADN because most edges fan out
    to only a few instances; this policy exists to exercise that regime in
    the ablation benchmarks.
    """

    def __init__(
        self, alpha: float, max_lifetime: int, *, seed: SeedLike = None
    ) -> None:
        self.alpha = check_positive(alpha, "alpha")
        self.max_lifetime = check_positive_int(max_lifetime, "max_lifetime")
        self._rng = make_rng(seed)
        # Build the CDF once; L is at most ~100K in the paper's experiments
        # so a table is fine and makes draws O(log L).
        weights = [n ** -self.alpha for n in range(1, self.max_lifetime + 1)]
        total = sum(weights)
        acc = 0.0
        self._cdf = []
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against floating-point shortfall

    def draw(self, interaction: Interaction) -> int:
        u = self._rng.random()
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo + 1

    def __repr__(self) -> str:
        return f"PowerLawLifetime(alpha={self.alpha}, max_lifetime={self.max_lifetime})"


class FunctionLifetime(LifetimePolicy):
    """Delegates lifetime assignment to a user-supplied callable.

    The callable receives the :class:`Interaction` and must return an ``int``
    (>= 1) or ``None`` for infinite.  This realizes the paper's statement
    that the lifetime assignment ``l_tau(e)`` is a user-chosen input to the
    framework.
    """

    def __init__(
        self,
        func: Callable[[Interaction], Optional[int]],
        max_lifetime: Optional[int] = None,
    ) -> None:
        if not callable(func):
            raise TypeError("func must be callable")
        self._func = func
        if max_lifetime is not None:
            max_lifetime = check_positive_int(max_lifetime, "max_lifetime")
        self.max_lifetime = max_lifetime

    def draw(self, interaction: Interaction) -> Optional[int]:
        value = self._func(interaction)
        if value is not None and value < 1:
            raise ValueError(
                f"lifetime function returned {value}; must be >= 1 or None"
            )
        if value is not None and self.max_lifetime is not None:
            value = min(value, self.max_lifetime)
        return value

    def __repr__(self) -> str:
        return f"FunctionLifetime(max_lifetime={self.max_lifetime})"
