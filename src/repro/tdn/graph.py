"""The time-decaying dynamic interaction network ``G_t`` (paper Section II-B).

``TDNGraph`` is the single shared substrate on which every algorithm in this
library operates.  It is a directed multigraph whose edges carry an *expiry
time*: an interaction arriving at ``tau`` with lifetime ``l`` is alive during
``[tau, tau + l - 1]`` and is removed at time ``tau + l``.  Nodes are removed
when their last alive edge expires, exactly as the paper specifies.

Horizon filtering
-----------------
The reproduction's key implementation device (DESIGN.md Section 2) is that a
SIEVEADN instance indexed ``i`` at time ``t`` — which, per BASICREDUCTION's
construction, has processed exactly the edges still alive at ``t + i - 1`` —
can be identified by the absolute *horizon* ``h = t + i``.  The edges that
instance must see are exactly those with ``expiry >= h``.  ``TDNGraph``
therefore exposes ``min_expiry``-filtered adjacency iterators: a single graph
serves every instance, and the per-pair *maximum* expiry decides in O(1)
whether a directed pair is traversable for a given horizon.

Bookkeeping
-----------
* ``_out[u][v]`` and ``_in[v][u]`` share one :class:`_PairEdges` record per
  directed pair, holding the multiset of expiries and a cached maximum.
* ``_expiry_buckets[x]`` lists the pairs with an edge expiring at time ``x``;
  the bucket keys are tracked twice, cheaply: a lazily-deduped *min-heap*
  feeds :meth:`advance_to`'s drain (O(expired log K), never O(Δt) over a
  sparse timestamp gap and never an O(K) list shift per insert), while a
  *sorted overlay* — a sorted snapshot plus an unsorted pending appendix,
  merged amortized-O(1) per key — lets :meth:`edges_with_expiry_in`
  bisect a range instead of re-sorting.
* every node ever seen is *interned* to a dense integer id
  (:meth:`node_id`); ids are stable for the graph's lifetime and are what
  the CSR reachability engine (:mod:`repro.tdn.csr`) indexes by.
* ``version`` increments on every structural change; the influence oracle
  keys its memoization on it.
* a bounded *dirty-source journal* records, per structural change, the
  interned id whose forward cone the change touched — an arrival's source,
  or the source of a directed pair whose last alive edge expired.  Memo
  consumers (the delta-aware oracle caches) read the journal suffix since
  their last sync through :meth:`dirty_source_ids_since` and evict only
  entries whose key intersects the ancestor closure of those ids, instead
  of dropping their whole table on every version bump.
* alive-node and alive-pair counters are maintained inline by
  :meth:`add_interaction` / :meth:`_remove_one_edge`, so :attr:`num_nodes`
  and :attr:`num_pairs` are O(1) property reads instead of full adjacency
  scans.
* :meth:`csr` owns the incrementally maintained :class:`~repro.tdn.csr.
  DeltaCSR` engine: every mutation feeds its overlay/tombstone deltas
  directly (O(1) per edge), so evaluation-heavy ingestion never pays a
  per-version O(V + P) snapshot rebuild.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.tdn.interaction import Interaction

Node = Hashable

#: Sentinel expiry for infinite-lifetime edges (addition-only networks).
INFINITE_EXPIRY = float("inf")


class _PairEdges:
    """Multiset of expiry times for one directed pair ``u -> v``.

    Tracks total multiplicity (parallel interactions are allowed and
    meaningful: the IC baselines convert the count into a diffusion
    probability) and caches the maximum alive expiry so that horizon-filtered
    traversal costs O(1) per neighbor.
    """

    __slots__ = ("expiries", "count", "max_expiry")

    def __init__(self) -> None:
        self.expiries: Dict[float, int] = {}
        self.count = 0
        self.max_expiry: float = 0.0

    def add(self, expiry: float) -> None:
        self.expiries[expiry] = self.expiries.get(expiry, 0) + 1
        self.count += 1
        if expiry > self.max_expiry:
            self.max_expiry = expiry

    def remove(self, expiry: float) -> None:
        remaining = self.expiries.get(expiry)
        if not remaining:
            raise KeyError(f"no edge with expiry {expiry} to remove")
        if remaining == 1:
            del self.expiries[expiry]
        else:
            self.expiries[expiry] = remaining - 1
        self.count -= 1
        if expiry == self.max_expiry and expiry not in self.expiries:
            self.max_expiry = max(self.expiries) if self.expiries else 0.0


class TDNGraph:
    """A time-decaying dynamic interaction network.

    Args:
        start_time: the initial clock value (default 0).
        csr_mode: maintenance policy of the CSR reachability engine —
            ``"delta"`` (default; incremental overlay + lazy compaction)
            or ``"rebuild"`` (full snapshot rebuild per version, the PR 1
            cost model, kept for benchmarking the incremental engine).

    Typical usage mirrors the paper's processing loop::

        graph = TDNGraph()
        for t, batch in stream:
            graph.advance_to(t)         # expire outdated edges
            for interaction in batch:   # add the new arrivals
                graph.add_interaction(interaction)
            ...                         # query / update algorithms

    All mutating operations bump :attr:`version` so downstream caches can
    invalidate precisely.
    """

    def __init__(self, start_time: int = 0, csr_mode: str = "delta") -> None:
        from repro.tdn.csr import CSR_MODES

        if csr_mode not in CSR_MODES:
            raise ValueError(f"csr_mode must be one of {CSR_MODES}, got {csr_mode!r}")
        self._time = start_time
        self._out: Dict[Node, Dict[Node, _PairEdges]] = {}
        self._in: Dict[Node, Dict[Node, _PairEdges]] = {}
        self._expiry_buckets: Dict[int, List[Tuple[Node, Node]]] = {}
        # Bucket keys, tracked two ways so no operation ever pays an O(K)
        # mid-list shift (the old bisect.insort hazard for million-scale
        # lifetime spreads):
        #  * _expiry_heap — min-heap of pending keys driving the drain.
        #    Pushes are O(log K); a popped key whose bucket is already
        #    gone is simply skipped (lazy dedup).
        #  * _expiry_sorted + _expiry_pending — the sorted overlay behind
        #    edges_with_expiry_in: new keys append to the unsorted
        #    appendix in O(1) and are merged into the sorted snapshot
        #    lazily (on scan, or when the appendix outgrows the
        #    proportional threshold), so merges amortize to O(log K) per
        #    key.  Drained keys are <= time and every scan clamps its
        #    lower bound to time + 1, so stale overlay entries can never
        #    be yielded; they are pruned at merge time.
        self._expiry_heap: List[int] = []
        self._expiry_sorted: List[int] = []
        self._expiry_pending: List[int] = []
        # Running minimum of the pending appendix (inf when empty): lets
        # a drain skip the appendix rewrite entirely unless some pending
        # key is actually due, keeping advance_to independent of the
        # appendix size on the common no-due-pending path.
        self._expiry_pending_min: float = float("inf")
        self._node_ids: Dict[Node, int] = {}
        self._id_nodes: List[Node] = []
        self._num_edges = 0
        self._alive_nodes = 0
        self._alive_pairs = 0
        self._removal_listeners: List = []
        self._csr_mode = csr_mode
        self._delta = None  # DeltaCSR engine, created lazily by csr()
        # Dirty-source journal: interned ids of nodes whose forward cone a
        # structural change touched, in mutation order.  ``_dirty_trimmed``
        # counts entries dropped by trimming, so journal positions (cursors)
        # stay monotone for the graph's lifetime.
        self._dirty_log: List[int] = []
        self._dirty_trimmed = 0
        self.version = 0

    #: Journal length bound: when the log exceeds this many entries it is
    #: dropped wholesale (consumers behind the trim point fall back to a
    #: full memo clear).  Oracles sync on every query, so in practice the
    #: log stays far below the cap between consumer reads.
    DIRTY_LOG_MAX = 1 << 17

    def add_removal_listener(self, callback) -> None:
        """Register ``callback(u, v, remaining_count)`` fired on edge expiry.

        Incremental baselines (the DIM-style dynamic RR index) need to know
        which directed pairs lost edges as the clock advanced; the listener
        fires once per removed edge instance with the pair's remaining alive
        multiplicity.
        """
        self._removal_listeners.append(callback)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def time(self) -> int:
        """The current time step ``t``."""
        return self._time

    def advance_to(self, t: int) -> int:
        """Move the clock to ``t``, expiring edges along the way.

        Returns the number of edge instances removed.  Advancing backwards is
        an error: the TDN model is forward-only.

        Cost is O(expired edges + expired keys x log #buckets), independent
        of the width of the gap ``t - time``: the min-heap yields exactly
        the due bucket keys in order, so sparse (e.g. unix-second)
        timestamp jumps are as cheap as dense single-step ticks.
        """
        if t < self._time:
            raise ValueError(f"cannot rewind time from {self._time} to {t}")
        removed = 0
        heap = self._expiry_heap
        # Drop every due key from the scan overlay (sorted prefix *and*
        # pending appendix) *before* draining — the seed behavior, which
        # spliced the due prefix up front: a removal listener may legally
        # call edges_with_expiry_in mid-drain, and must never iterate
        # keys whose buckets this very drain is popping.
        if heap and heap[0] <= t:
            sorted_keys = self._expiry_sorted
            if sorted_keys and sorted_keys[0] <= t:
                del sorted_keys[: bisect.bisect_right(sorted_keys, t)]
            if self._expiry_pending_min <= t:
                pending = self._expiry_pending
                pending[:] = [step for step in pending if step > t]
                self._expiry_pending_min = min(pending, default=float("inf"))
        while heap and heap[0] <= t:
            step = heapq.heappop(heap)
            # pop with a default: the heap is lazily deduped, and a removal
            # listener may legally mutate the graph mid-drain, re-bucketing
            # keys under us; a vanished bucket is simply skipped, and a
            # re-created due bucket re-pushes its key, so the loop drains
            # it before finishing.
            bucket = self._expiry_buckets.pop(step, None)
            if bucket is None:
                continue
            for u, v in bucket:
                self._remove_one_edge(u, v, float(step))
                removed += 1
        # Keep the sorted overlay's dead prefix from accumulating; this is
        # a prefix splice (one memmove of the survivors), the same cost
        # profile the drain always had.
        sorted_keys = self._expiry_sorted
        if sorted_keys and sorted_keys[0] <= t:
            del sorted_keys[: bisect.bisect_right(sorted_keys, t)]
        self._time = t
        if removed:
            self.version += 1
        return removed

    def tick(self) -> int:
        """Advance the clock by one step; returns the number of expiries."""
        return self.advance_to(self._time + 1)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_interaction(self, interaction: Interaction) -> None:
        """Insert one interaction as a (possibly parallel) directed edge.

        The interaction must be alive at the current time; in particular the
        stream must be replayed in chronological order (advance the clock
        before adding a batch).
        """
        if not interaction.alive_at(self._time):
            raise ValueError(
                f"interaction {interaction} is not alive at current time {self._time}; "
                "advance_to() the batch time before adding"
            )
        u, v = interaction.source, interaction.target
        expiry = interaction.expiry
        if u not in self._node_ids:
            self._node_ids[u] = len(self._id_nodes)
            self._id_nodes.append(u)
        if v not in self._node_ids:
            self._node_ids[v] = len(self._id_nodes)
            self._id_nodes.append(v)
        out_u = self._out.setdefault(u, {})
        pair = out_u.get(v)
        if pair is None:
            # New alive pair: maintain the O(1) counters before inserting
            # (aliveness of u/v is read off the pre-insert adjacency).
            u_alive = bool(out_u) or bool(self._in.get(u))
            v_alive = bool(self._out.get(v)) or bool(self._in.get(v))
            pair = _PairEdges()
            out_u[v] = pair
            self._in.setdefault(v, {})[u] = pair
            self._alive_pairs += 1
            if not u_alive:
                self._alive_nodes += 1
            if not v_alive:
                self._alive_nodes += 1
        pair.add(expiry)
        if expiry != INFINITE_EXPIRY:
            step = int(expiry)
            bucket = self._expiry_buckets.get(step)
            if bucket is None:
                self._expiry_buckets[step] = [(u, v)]
                heapq.heappush(self._expiry_heap, step)
                pending = self._expiry_pending
                pending.append(step)
                if step < self._expiry_pending_min:
                    self._expiry_pending_min = step
                if len(pending) > 1024 and len(pending) * 4 > len(
                    self._expiry_sorted
                ):
                    self._merge_expiry_overlay()
            else:
                bucket.append((u, v))
        self._num_edges += 1
        self.version += 1
        self._log_dirty(self._node_ids[u])
        if self._delta is not None:
            self._delta.record_arrival(self._node_ids[u], self._node_ids[v], expiry)

    def add_batch(self, interactions: Iterable[Interaction]) -> int:
        """Insert several interactions; returns how many were added."""
        count = 0
        for interaction in interactions:
            self.add_interaction(interaction)
            count += 1
        return count

    def _remove_one_edge(self, u: Node, v: Node, expiry: float) -> None:
        pair = self._out[u][v]
        pair.remove(expiry)
        self._num_edges -= 1
        for callback in self._removal_listeners:
            callback(u, v, pair.count)
        if pair.count == 0:
            del self._out[u][v]
            del self._in[v][u]
            if not self._out[u] and not self._in.get(u):
                self._out.pop(u, None)
                self._in.pop(u, None)
            if not self._in.get(v) and not self._out.get(v):
                self._in.pop(v, None)
                self._out.pop(v, None)
            self._alive_pairs -= 1
            if not self._out.get(u) and not self._in.get(u):
                self._alive_nodes -= 1
            if not self._out.get(v) and not self._in.get(v):
                self._alive_nodes -= 1
            self._log_dirty(self._node_ids[u])
            if self._delta is not None:
                self._delta.record_pair_death()

    # ------------------------------------------------------------------
    # Dirty-source journal
    # ------------------------------------------------------------------
    def _log_dirty(self, uid: int) -> None:
        """Record that ``uid``'s forward cone was touched by a mutation.

        Called once per arrival (the new edge's source) and once per pair
        death (the dead pair's source).  Non-final parallel-edge removals
        are *not* logged: expiries drain in increasing order, so removing
        one of several parallel edges can never lower the pair's maximum
        alive expiry, and no cached spread at a live horizon can change.
        """
        log = self._dirty_log
        log.append(uid)
        if len(log) > self.DIRTY_LOG_MAX:
            self._dirty_trimmed += len(log)
            log.clear()

    @property
    def dirty_cursor(self) -> int:
        """Monotone journal position; pass it back to read the suffix."""
        return self._dirty_trimmed + len(self._dirty_log)

    def dirty_source_ids_since(self, cursor: int) -> Optional[set]:
        """Distinct dirty source ids journaled at or after ``cursor``.

        Returns ``None`` when ``cursor`` predates the retained journal
        (entries were trimmed away), in which case the caller cannot
        reconstruct the delta and must invalidate wholesale.
        """
        trimmed = self._dirty_trimmed
        if cursor < trimmed:
            return None
        return set(self._dirty_log[cursor - trimmed :])

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of alive edge instances (parallel edges counted)."""
        return self._num_edges

    @property
    def num_pairs(self) -> int:
        """Number of distinct alive directed pairs ``(u, v)`` (O(1))."""
        return self._alive_pairs

    @property
    def num_nodes(self) -> int:
        """Number of nodes with at least one alive edge (O(1))."""
        return self._alive_nodes

    def node_set(self) -> set:
        """Return the alive node set ``V_t``."""
        nodes = set()
        for u, nbrs in self._out.items():
            if nbrs:
                nodes.add(u)
                nodes.update(nbrs)
        for v, nbrs in self._in.items():
            if nbrs:
                nodes.add(v)
        return nodes

    def nodes(self) -> Iterator[Node]:
        """Iterate over the alive node set."""
        return iter(self.node_set())

    def has_node(self, node: Node) -> bool:
        """Return whether ``node`` has any alive edge."""
        return bool(self._out.get(node)) or bool(self._in.get(node))

    # ------------------------------------------------------------------
    # Node interning & CSR snapshot
    # ------------------------------------------------------------------
    @property
    def num_interned(self) -> int:
        """Number of nodes ever seen (dense-id space; never shrinks)."""
        return len(self._id_nodes)

    def node_id(self, node: Node) -> Optional[int]:
        """Dense integer id of ``node``, or None if it was never seen.

        Ids are assigned in first-appearance order and are stable for the
        graph's lifetime — a node keeps its id even after all of its edges
        expire, so array-indexed state (CSR snapshots, visited buffers)
        stays valid across structural updates.
        """
        return self._node_ids.get(node)

    def node_of_id(self, node_id: int) -> Node:
        """Inverse of :meth:`node_id` (raises IndexError for unknown ids)."""
        return self._id_nodes[node_id]

    def intern_ids(self, nodes: Iterable[Node]) -> Tuple[List[int], int]:
        """Map ``nodes`` to dense ids; count the never-seen remainder.

        Returns ``(ids, unknown)`` where ``ids`` are the ids of the known
        nodes and ``unknown`` is how many *distinct* inputs were never
        interned (the caller passes de-duplicated sets; unknown nodes still
        trivially reach themselves in spread accounting).
        """
        ids: List[int] = []
        unknown = 0
        lookup = self._node_ids
        for node in nodes:
            node_id = lookup.get(node)
            if node_id is None:
                unknown += 1
            else:
                ids.append(node_id)
        return ids, unknown

    def csr(self):
        """The incrementally maintained CSR engine, synced to this version.

        The first call builds the :class:`~repro.tdn.csr.DeltaCSR` engine
        (one O(V + P) base compaction); from then on every mutation feeds
        the engine's overlay/tombstone deltas in O(1) via the hooks in
        :meth:`add_interaction` / :meth:`_remove_one_edge`, and this
        accessor merely checks the compaction threshold.  Under
        ``csr_mode="rebuild"`` the engine instead compacts on every
        version change (the PR 1 cost model, kept for benchmarking).
        """
        if self._delta is None:
            from repro.tdn.csr import DeltaCSR

            self._delta = DeltaCSR(self, mode=self._csr_mode)
        else:
            self._delta.sync()
        return self._delta

    def out_neighbors(
        self, node: Node, min_expiry: Optional[float] = None
    ) -> Iterator[Node]:
        """Iterate successors of ``node`` traversable at the given horizon.

        With ``min_expiry=None`` every alive pair qualifies; otherwise only
        pairs with at least one edge expiring at or after ``min_expiry``
        (i.e. still alive at time ``min_expiry - 1``) are yielded.
        """
        nbrs = self._out.get(node)
        if not nbrs:
            return
        if min_expiry is None:
            yield from nbrs
        else:
            for v, pair in nbrs.items():
                if pair.max_expiry >= min_expiry:
                    yield v

    def in_neighbors(
        self, node: Node, min_expiry: Optional[float] = None
    ) -> Iterator[Node]:
        """Iterate predecessors of ``node`` traversable at the given horizon."""
        nbrs = self._in.get(node)
        if not nbrs:
            return
        if min_expiry is None:
            yield from nbrs
        else:
            for u, pair in nbrs.items():
                if pair.max_expiry >= min_expiry:
                    yield u

    def out_degree(self, node: Node) -> int:
        """Number of distinct alive successors of ``node``."""
        return len(self._out.get(node, ()))

    def in_degree(self, node: Node) -> int:
        """Number of distinct alive predecessors of ``node``."""
        return len(self._in.get(node, ()))

    def interaction_count(self, u: Node, v: Node) -> int:
        """Multiplicity of alive parallel edges ``u -> v``.

        The IC-model baselines map this count ``x`` to a diffusion
        probability ``p_uv = 2 / (1 + exp(-0.2 x)) - 1`` (paper Section V-C).
        """
        pair = self._out.get(u, {}).get(v)
        return pair.count if pair is not None else 0

    def max_expiry(self, u: Node, v: Node) -> float:
        """Largest expiry among alive ``u -> v`` edges (0.0 if none)."""
        pair = self._out.get(u, {}).get(v)
        return pair.max_expiry if pair is not None else 0.0

    def remaining_lifetime(self, u: Node, v: Node) -> float:
        """Largest remaining lifetime over parallel ``u -> v`` edges."""
        pair = self._out.get(u, {}).get(v)
        if pair is None:
            return 0.0
        return pair.max_expiry - self._time

    def alive_pairs(self) -> Iterator[Tuple[Node, Node]]:
        """Iterate distinct alive directed pairs."""
        for u, nbrs in self._out.items():
            for v in nbrs:
                yield (u, v)

    def alive_pairs_with_counts(self) -> Iterator[Tuple[Node, Node, int]]:
        """Iterate ``(u, v, multiplicity)`` for distinct alive pairs."""
        for u, nbrs in self._out.items():
            for v, pair in nbrs.items():
                yield (u, v, pair.count)

    def edges_with_expiry_in(
        self, lo: float, hi: float
    ) -> Iterator[Tuple[Node, Node, int]]:
        """Iterate edge instances with expiry in ``[lo, hi)``.

        Used by HISTAPPROX when a newly created instance is copied from its
        successor: the copy must additionally process the alive edges whose
        remaining lifetime lies in ``[l, l*)``, i.e. expiry in
        ``[t + l, t + l*)``.  Entries are per edge instance (a pair appears
        once per parallel edge in range).  Expired buckets below the current
        clock are skipped.  ``hi`` may be ``math.inf`` (successor instance
        with an infinite horizon); infinite-expiry edges themselves are never
        yielded because ``hi`` is exclusive.

        The scan bisects the sorted key overlay for the range endpoints
        (merging any pending appendix first), so its cost is proportional
        to the number of distinct expiry times in range plus the matching
        edges — never the width of a sparse range, and never an
        O(B log B) re-sort of all buckets.
        """
        lo = max(lo, self._time + 1)
        if self._expiry_pending:
            self._merge_expiry_overlay()
        keys = self._expiry_sorted
        start = bisect.bisect_left(keys, lo)
        stop = bisect.bisect_left(keys, hi)
        for step in keys[start:stop]:
            # get() with a default: mid-drain callers (removal listeners)
            # may observe a key whose bucket was popped an instant ago
            # while the clock still reads the pre-drain time.
            bucket = self._expiry_buckets.get(step)
            if bucket is None:
                continue
            for u, v in bucket:
                yield (u, v, step)

    def _merge_expiry_overlay(self) -> None:
        """Fold the pending appendix into the sorted key overlay.

        Drained keys (all ``<= time``) are pruned while merging, so the
        overlay holds exactly the live bucket keys afterwards.  Cost is
        O(live + pending log pending); the proportional merge trigger in
        :meth:`add_interaction` amortizes this to O(log K) per new key.
        """
        time = self._time
        buckets = self._expiry_buckets
        fresh = sorted(step for step in set(self._expiry_pending) if step in buckets)
        self._expiry_pending.clear()
        self._expiry_pending_min = float("inf")
        stale = self._expiry_sorted
        if stale and stale[0] <= time:
            del stale[: bisect.bisect_right(stale, time)]
        if not stale:
            self._expiry_sorted = fresh
        elif fresh:
            self._expiry_sorted = list(heapq.merge(stale, fresh))

    def alive_interactions(self) -> List[Interaction]:
        """Materialize the alive edge instances as :class:`Interaction` rows.

        Expiries are converted back to lifetimes relative to the current
        clock (arrival times are not retained — the TDN only needs expiry).
        Intended for tests and debugging; cost is O(edges).
        """
        rows: List[Interaction] = []
        for u, nbrs in self._out.items():
            for v, pair in nbrs.items():
                for expiry, multiplicity in pair.expiries.items():
                    if expiry == INFINITE_EXPIRY:
                        lifetime = None
                    else:
                        lifetime = int(expiry) - self._time
                    for _ in range(multiplicity):
                        rows.append(Interaction(u, v, self._time, lifetime))
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TDNGraph(time={self._time}, nodes={self.num_nodes}, "
            f"edges={self._num_edges}, version={self.version})"
        )
