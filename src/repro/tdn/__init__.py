"""Time-decaying dynamic interaction network (TDN) substrate.

This package implements Section II of the paper: the interaction record
(Definition 1), the interaction stream (Definition 2), the TDN model with its
time-decaying edge-lifetime mechanism, and the lifetime-assignment policies
that specialize the TDN into addition-only, sliding-window, and probabilistic
time-decaying networks (Examples 3-5).
"""

from repro.tdn.interaction import Interaction
from repro.tdn.lifetimes import (
    ConstantLifetime,
    FunctionLifetime,
    GeometricLifetime,
    InfiniteLifetime,
    LifetimePolicy,
    PowerLawLifetime,
    UniformLifetime,
)
from repro.tdn.graph import INFINITE_EXPIRY, TDNGraph
from repro.tdn.stream import (
    BatchedStream,
    InteractionStream,
    MemoryStream,
    group_by_lifetime,
)

def __getattr__(name):
    # CSRSnapshot is re-exported lazily: importing repro.tdn must not pull
    # in numpy (the CSR engine's only dependency) for dict-backend users.
    if name == "CSRSnapshot":
        from repro.tdn.csr import CSRSnapshot

        return CSRSnapshot
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Interaction",
    "LifetimePolicy",
    "ConstantLifetime",
    "InfiniteLifetime",
    "GeometricLifetime",
    "UniformLifetime",
    "PowerLawLifetime",
    "FunctionLifetime",
    "TDNGraph",
    "CSRSnapshot",
    "INFINITE_EXPIRY",
    "InteractionStream",
    "MemoryStream",
    "BatchedStream",
    "group_by_lifetime",
]
