"""The interaction record (paper Definition 1).

An interaction ``<u, v, tau>`` states that node ``u`` exerted influence on
node ``v`` at (discrete) time ``tau`` — for example ``v`` retweeted ``u``'s
tweet, or place ``u`` attracted user ``v`` to check in.  Interactions are the
*only* input to every algorithm in this library; there is no separate
influence-probability estimation step (the approach is data driven, Section
VI of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable


@dataclass(frozen=True)
class Interaction:
    """A directed, timestamped influence event ``source -> target``.

    Attributes:
        source: the influencing node (``u`` in the paper; e.g. the retweeted
            user, or the checked-in place).
        target: the influenced node (``v``; e.g. the retweeting user).
        time: the discrete arrival timestamp ``tau`` (>= 0).
        lifetime: the edge lifetime ``l_tau(e)`` assigned at creation, in
            time steps (>= 1), or ``None`` for an infinite lifetime
            (addition-only networks, paper Example 3).

    The record is frozen so that interactions can live in sets and serve as
    dictionary keys; streams treat them as immutable facts.
    """

    source: Hashable
    target: Hashable
    time: int
    lifetime: int = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.source == self.target:
            raise ValueError(
                f"self-loop interaction not allowed (node {self.source!r}); "
                "the paper's TDN model forbids a node influencing itself"
            )
        if not isinstance(self.time, int) or isinstance(self.time, bool):
            raise TypeError(f"time must be an int, got {type(self.time).__name__}")
        if self.time < 0:
            raise ValueError(f"time must be >= 0, got {self.time}")
        if self.lifetime is not None:
            if not isinstance(self.lifetime, int) or isinstance(self.lifetime, bool):
                raise TypeError(
                    f"lifetime must be an int or None, got {type(self.lifetime).__name__}"
                )
            if self.lifetime < 1:
                raise ValueError(f"lifetime must be >= 1, got {self.lifetime}")

    @property
    def expiry(self) -> float:
        """First time step at which this interaction is no longer alive.

        An edge arriving at ``tau`` with lifetime ``l`` is alive during
        ``[tau, tau + l - 1]`` and expires at ``tau + l``.  Infinite-lifetime
        edges never expire (``math.inf``).
        """
        if self.lifetime is None:
            return float("inf")
        return self.time + self.lifetime

    def alive_at(self, t: int) -> bool:
        """Return whether the interaction is alive at time ``t``.

        Implements the paper's membership rule ``e in E_t`` iff
        ``tau <= t < tau + l_tau(e)``.
        """
        return self.time <= t < self.expiry

    def remaining_lifetime(self, t: int) -> float:
        """Return ``l_t(e) = l_tau(e) - (t - tau)``, the lifetime left at ``t``.

        Zero or negative values mean the edge has expired; callers that only
        deal in alive edges should consult :meth:`alive_at` first.
        """
        return self.expiry - t

    def with_lifetime(self, lifetime) -> "Interaction":
        """Return a copy of this interaction with a different lifetime."""
        return Interaction(self.source, self.target, self.time, lifetime)
