"""Analysis utilities for tracked solutions and TDN streams.

The paper's motivation (Fig. 1) is that the influential set *evolves*; this
package quantifies that evolution and the stream properties driving it:

* :mod:`repro.analysis.stability` — solution churn over time: Jaccard
  stability, turnover rate, node tenure.  Used to compare the smooth TDN
  decay against hard sliding windows (the paper's Example 1 argument).
* :mod:`repro.analysis.graph_stats` — TDN snapshots over time: alive
  edges/nodes, degree concentration, effective lifetime empirics.
"""

from repro.analysis.stability import (
    SolutionHistory,
    jaccard,
    mean_jaccard_stability,
    node_tenures,
    turnover_rate,
)
from repro.analysis.graph_stats import (
    GraphSnapshotStats,
    degree_concentration,
    snapshot_stats,
)

__all__ = [
    "SolutionHistory",
    "jaccard",
    "mean_jaccard_stability",
    "turnover_rate",
    "node_tenures",
    "GraphSnapshotStats",
    "snapshot_stats",
    "degree_concentration",
]
