"""Solution-stability metrics: how fast does the influential set churn?

The paper's Example 1 argues that a hard sliding window produces *unstable*
solutions (a briefly absent influencer vanishes), while the TDN's smooth
decay retains them.  These metrics make that claim measurable: record the
tracked node set over time with :class:`SolutionHistory`, then summarize
with Jaccard stability (average similarity between consecutive solutions),
turnover rate (fraction of the set replaced per step), and per-node tenure
(how long each node stayed in the solution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

Node = Hashable


def jaccard(a: Iterable[Node], b: Iterable[Node]) -> float:
    """Jaccard similarity of two node collections (1.0 for two empties)."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    return len(set_a & set_b) / len(set_a | set_b)


@dataclass
class SolutionHistory:
    """Chronological record of tracked solutions.

    Example:
        >>> history = SolutionHistory()
        >>> history.record(0, ["a", "b"])
        >>> history.record(1, ["a", "c"])
        >>> round(history.mean_stability(), 3)
        0.333
    """

    times: List[int] = field(default_factory=list)
    solutions: List[Tuple[Node, ...]] = field(default_factory=list)

    def record(self, t: int, nodes: Iterable[Node]) -> None:
        """Append the solution observed at time ``t``."""
        if self.times and t <= self.times[-1]:
            raise ValueError(
                f"solutions must be recorded in increasing time order; "
                f"got {t} after {self.times[-1]}"
            )
        self.times.append(t)
        self.solutions.append(tuple(nodes))

    def __len__(self) -> int:
        return len(self.solutions)

    # ------------------------------------------------------------------
    def mean_stability(self) -> float:
        """Average Jaccard similarity between consecutive solutions."""
        return mean_jaccard_stability(self.solutions)

    def mean_turnover(self) -> float:
        """Average fraction of the solution replaced per step."""
        return turnover_rate(self.solutions)

    def tenures(self) -> Dict[Node, int]:
        """Total number of recorded steps each node spent in the solution."""
        return node_tenures(self.solutions)

    def ever_selected(self) -> Set[Node]:
        """All nodes that appeared in any recorded solution."""
        return {node for solution in self.solutions for node in solution}


def mean_jaccard_stability(solutions: Sequence[Sequence[Node]]) -> float:
    """Mean Jaccard similarity of consecutive solutions (1.0 if < 2)."""
    if len(solutions) < 2:
        return 1.0
    total = sum(jaccard(a, b) for a, b in zip(solutions, solutions[1:]))
    return total / (len(solutions) - 1)


def turnover_rate(solutions: Sequence[Sequence[Node]]) -> float:
    """Mean fraction of the previous solution absent from the next one.

    0.0 means the set never changes; 1.0 means it is fully replaced at
    every step.  Empty previous solutions contribute zero turnover.
    """
    if len(solutions) < 2:
        return 0.0
    total = 0.0
    for prev, nxt in zip(solutions, solutions[1:]):
        prev_set = set(prev)
        if not prev_set:
            continue
        total += len(prev_set - set(nxt)) / len(prev_set)
    return total / (len(solutions) - 1)


def node_tenures(solutions: Sequence[Sequence[Node]]) -> Dict[Node, int]:
    """Number of recorded solutions each node appears in."""
    tenures: Dict[Node, int] = {}
    for solution in solutions:
        for node in set(solution):
            tenures[node] = tenures.get(node, 0) + 1
    return tenures
