"""TDN snapshot statistics: what does the alive graph look like over time?

The decay regime (lifetime policy) controls how much history the TDN
retains; these statistics make the regime observable — alive edge and node
counts, mean remaining lifetime, and how concentrated influence potential
is across out-degrees (the Zipf-ness the synthetic generators are
calibrated for).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.tdn.graph import INFINITE_EXPIRY, TDNGraph


@dataclass(frozen=True)
class GraphSnapshotStats:
    """One snapshot's summary numbers.

    Attributes:
        time: the snapshot time step.
        num_nodes: alive nodes.
        num_edges: alive edge instances (parallel edges counted).
        num_pairs: distinct alive directed pairs.
        mean_remaining_lifetime: average remaining lifetime over finite-
            lifetime pairs (their max-expiry edge), ``inf`` if only
            infinite-lifetime edges exist, 0.0 on an empty graph.
        max_out_degree: largest out-degree.
        degree_concentration: fraction of all out-edges owned by the top
            10% of source nodes (see :func:`degree_concentration`).
    """

    time: int
    num_nodes: int
    num_edges: int
    num_pairs: int
    mean_remaining_lifetime: float
    max_out_degree: int
    degree_concentration: float


def snapshot_stats(graph: TDNGraph) -> GraphSnapshotStats:
    """Summarize the current alive graph."""
    out_degrees: Dict = {}
    remaining: List[float] = []
    infinite_only = True
    for u, v, _count in graph.alive_pairs_with_counts():
        out_degrees[u] = out_degrees.get(u, 0) + 1
        expiry = graph.max_expiry(u, v)
        if expiry != INFINITE_EXPIRY:
            remaining.append(expiry - graph.time)
            infinite_only = False
    if remaining:
        mean_lifetime = sum(remaining) / len(remaining)
    elif out_degrees and infinite_only:
        mean_lifetime = math.inf
    else:
        mean_lifetime = 0.0
    return GraphSnapshotStats(
        time=graph.time,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_pairs=graph.num_pairs,
        mean_remaining_lifetime=mean_lifetime,
        max_out_degree=max(out_degrees.values(), default=0),
        degree_concentration=degree_concentration(list(out_degrees.values())),
    )


def degree_concentration(degrees: List[int], top_fraction: float = 0.1) -> float:
    """Share of total degree owned by the top ``top_fraction`` of nodes.

    1.0 means a single dominant hub regime; ``top_fraction`` itself means a
    perfectly uniform degree distribution.  Returns 0.0 for no degrees.
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError(f"top_fraction must be in (0, 1], got {top_fraction}")
    if not degrees:
        return 0.0
    total = sum(degrees)
    if total == 0:
        return 0.0
    ordered = sorted(degrees, reverse=True)
    top_count = max(1, int(len(ordered) * top_fraction))
    return sum(ordered[:top_count]) / total
