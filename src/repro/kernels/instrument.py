"""Switchboard between the traversal kernel and the metrics layer.

:mod:`repro.kernels.traversal` deliberately knows nothing about
:mod:`repro.obs` (it only defines the ``SweepSampler`` protocol), and
:mod:`repro.obs` is rank 0 so it cannot import kernels.  This module is
the one place the two meet: it builds a
:class:`~repro.obs.sampling.KernelSampler` over a registry and installs
it process-wide.  Living in the kernels layer (rank 1) keeps it
importable from everywhere above — including ``repro.track``, which sits
below ``repro.api`` in the DAG and could not use an api-level helper.
"""

from __future__ import annotations

from typing import Optional

from repro.kernels.traversal import set_sweep_sampler
from repro.obs.registry import MetricsRegistry, metrics_registry
from repro.obs.sampling import KernelSampler

__all__ = ["disable_kernel_metrics", "enable_kernel_metrics"]


def enable_kernel_metrics(
    every: int = 1, registry: Optional[MetricsRegistry] = None
) -> KernelSampler:
    """Start recording kernel sweeps, sampling 1 in ``every``.

    Records into ``registry`` (default: the process registry).  Counter
    increments are scaled by ``every`` so totals stay unbiased; histogram
    observations are the sampled sweeps themselves.  Returns the
    installed sampler.
    """
    sampler = KernelSampler(
        metrics_registry() if registry is None else registry, every
    )
    set_sweep_sampler(sampler)
    return sampler


def disable_kernel_metrics() -> None:
    """Remove the sweep sampler; the kernel reverts to the no-op branch."""
    set_sweep_sampler(None)
