"""The one array-level traversal kernel behind every engine.

Every influence quantity the paper needs — the spread ``|R(S)|``, the
changed-node set via reverse reachability, and weighted spread for
ROI-style workloads — reduces to the same time-decayed frontier sweep
over expiry-annotated CSR arrays.  Before this module the repo carried
three hand-synced copies of that sweep (``CSRSnapshot``, ``DeltaCSR``
and the worker-side ``PlaneEngine``); :class:`TraversalKernel` is the
single shared implementation they now all adapt over, so sharded and
serial physics *cannot* drift.

A kernel instance is one *direction* of traversal, parameterized by

* an ``(indptr, indices, expiries)`` CSR triple (base arrays may cover
  fewer nodes than the live id space — ids past the base simply have an
  empty base adjacency),
* an optional **overlay** injection (:class:`DictOverlay`, or any object
  with the same two-method protocol), through which :class:`~repro.tdn.
  csr.DeltaCSR` plugs its O(1) arrival overlay into the loop without
  forking it,
* the effective horizon ``eff`` passed per query (``None`` = no filter;
  engines that lazily tombstone resolve their ``t + 1`` clamp *before*
  calling, which also makes worker-side sweeps pure functions of the
  arrays), and
* an optional **cutover resolver** for the adaptive scalar/vector
  switch: below the resolved entry count the kernel walks plain Python
  lists (numpy dispatch overhead dominates on tiny graphs), above it the
  frontier expansion is vectorized.  ``None`` means always-vectorized
  (the worker plane's historical behavior).  Both paths are
  result-identical; the cutover can only ever cost time.

Sweeps
------
:meth:`TraversalKernel.reachable_ids` / :meth:`~TraversalKernel.
reachable_count` run the single-source frontier BFS with an epoch-stamped
visited buffer (bumping the stamp is an O(1) clear).  :meth:`~
TraversalKernel.spread_counts` is the multi-source **bit-plane** sweep:
up to :data:`PLANE_WIDTH` seed sets are packed into uint64 visited-mask
planes (bit *i* of ``masks[v]`` = "set *i* reaches *v*") and all planes
propagate to fixpoint in one shared traversal.  :meth:`~TraversalKernel.
weighted_spread_sums` rides the *same* fixpoint and folds a dense
float64 node-weight array over each plane's reached ids — 64 weighted
evaluations per physical traversal, in the canonical ascending-id
summation order of :func:`dense_weight_sum` so serial, batched and
sharded weighted values are bit-identical.

Seed validation is unified here: every engine raises the same
``IndexError`` message for an out-of-range seed id, on every path
(scalar, vector, bit-plane), so callers can never observe which engine —
or which traversal path — rejected their input.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.kernels.backend import (
    native_plane_level_flips,
    native_plane_masks,
    native_reach,
    resolve_backend,
)

__all__ = [
    "PLANE_WIDTH",
    "DictOverlay",
    "SweepSampler",
    "TraversalKernel",
    "build_transpose",
    "dense_weight_sum",
    "seed_range_error",
    "set_sweep_sampler",
]

#: Seed sets packed per bit-plane traversal (uint64 mask width).
PLANE_WIDTH = 64


class SweepSampler(Protocol):
    """The kernel's only observability seam (see RPL501).

    ``record`` is called once per *physical* sweep — never per frontier
    round or per edge — with the entry-point kind, the number of seed
    sets the sweep served, and the reached-node total it computed anyway.
    A ``None`` sampler (the default) costs one branch per sweep; the
    standard implementation is :class:`repro.obs.sampling.KernelSampler`,
    installed via :func:`repro.kernels.instrument.enable_kernel_metrics`.
    The protocol lives here so this module keeps zero repro imports.
    """

    def record(self, kind: str, sets: int, reached: int) -> None: ...


#: Process-wide sweep hook; ``None`` compiles every record site down to
#: a single ``is not None`` branch.
_SWEEP_SAMPLER: Optional[SweepSampler] = None


def set_sweep_sampler(sampler: Optional[SweepSampler]) -> None:
    """Install (or with ``None`` remove) the process-wide sweep sampler."""
    global _SWEEP_SAMPLER
    _SWEEP_SAMPLER = sampler


def seed_range_error(node_id: int, num_nodes: int) -> IndexError:
    """The one out-of-range seed error every engine raises."""
    return IndexError(f"seed id {int(node_id)} out of range [0, {num_nodes})")


def dense_weight_sum(weights: np.ndarray, reached: Iterable[int]) -> float:
    """Sum ``weights`` over a reached id collection, canonically ordered.

    Ids are gathered in ascending order before summing, so the float64
    accumulation is identical no matter how the reached set was produced
    — a scalar DFS set, a vectorized frontier union, a bit-plane mask, or
    a sorted list shipped back from a worker.  That canonical order is
    what makes weighted values bit-identical across serial, batched and
    sharded evaluation.
    """
    ids = np.fromiter(reached, dtype=np.int64)
    if ids.size == 0:
        return 0.0
    ids.sort()
    return float(weights[ids].sum())


def build_transpose(
    indptr: np.ndarray, indices: np.ndarray, expiries: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The reverse CSR triple of a forward one (stable per-target order)."""
    num_nodes = int(indptr.shape[0]) - 1
    if indices.shape[0]:
        order = np.argsort(indices, kind="stable")
        counts = np.bincount(indices, minlength=num_nodes)
        sources = np.repeat(
            np.arange(num_nodes, dtype=np.int64), np.diff(indptr)
        )
        tindices = sources[order]
        texpiries = expiries[order]
    else:
        counts = np.zeros(num_nodes, dtype=np.int64)
        tindices = np.empty(0, dtype=np.int64)
        texpiries = np.empty(0, dtype=np.float64)
    tindptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=tindptr[1:])
    return tindptr, tindices, texpiries


class DictOverlay:
    """Adjacency overlay injected into kernel sweeps.

    The standard adapter over :class:`~repro.tdn.csr.DeltaCSR`'s overlay
    state: a dict ``node id -> [(neighbor, expiry), ...]`` plus a boolean
    flag array marking which ids have entries (so the vectorized sweep
    selects overlay nodes out of a frontier in one gather instead of one
    dict probe per node).  Any object with the same two methods plugs in
    — the kernel never looks past this protocol:

    * ``select(frontier)`` — the subset of a frontier id array that has
      overlay entries;
    * ``entries(node_id)`` — that node's ``(neighbor, expiry)`` list, or
      ``None``/empty when it has none.
    """

    __slots__ = ("entry_map", "flags")

    def __init__(
        self, entry_map: Dict[int, List[Tuple[int, float]]], flags: np.ndarray
    ) -> None:
        self.entry_map = entry_map
        self.flags = flags

    def select(self, frontier: np.ndarray) -> np.ndarray:
        return frontier[self.flags[frontier]]

    def entries(self, node_id: int) -> Optional[List[Tuple[int, float]]]:
        return self.entry_map.get(node_id)


class TraversalKernel:
    """One direction of time-decayed frontier sweeps over a CSR triple.

    Engines own one kernel per direction (forward, and transpose-backed
    reverse) and route every traversal through it; the kernel owns the
    epoch-stamped visited workspace and the lazily built plain-list
    mirror the scalar path walks.

    Args:
        indptr, indices, expiries: the CSR triple.  ``len(indptr) - 1``
            may be smaller than ``num_nodes`` — ids past the base have an
            empty base adjacency (the delta engine's overlay serves them).
        num_nodes: the live id space (defaults to the base node count).
        overlay: optional overlay injection (see :class:`DictOverlay`).
        entry_count: adjacency entries the cutover weighs (base pairs
            plus overlay entries); engines refresh it before queries.
        limit_resolver: zero-arg callable returning the scalar/vector
            cutover in force *now* (re-checked per query so a class-knob
            monkeypatch takes effect immediately); ``None`` pins the
            kernel to the vectorized path.
        backend: ``"python"`` | ``"native"`` | ``"auto"`` | ``None``
            (= honor ``REPRO_KERNEL_BACKEND``, else auto-probe).  The
            native (numba) fixpoints serve only overlay-free sweeps;
            queries through a populated overlay, a duck-typed overlay,
            or the scalar cutover stay on the interpreted reference
            paths regardless of backend — results are bit-identical
            either way.
    """

    __slots__ = (
        "indptr",
        "indices",
        "expiries",
        "overlay",
        "num_nodes",
        "entry_count",
        "limit_resolver",
        "backend",
        "_visit",
        "_stamp",
        "_scalar",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        expiries: np.ndarray,
        *,
        num_nodes: Optional[int] = None,
        overlay: Optional[DictOverlay] = None,
        entry_count: Optional[int] = None,
        limit_resolver: Optional[Callable[[], int]] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.indptr = indptr
        self.indices = indices
        self.expiries = expiries
        self.overlay = overlay
        base_nodes = int(indptr.shape[0]) - 1
        self.num_nodes = base_nodes if num_nodes is None else num_nodes
        self.entry_count = int(indices.shape[0]) if entry_count is None else entry_count
        self.limit_resolver = limit_resolver
        # Resolved once at construction: "python" or "native" (see
        # repro.kernels.backend for the explicit > env > auto ladder).
        self.backend = resolve_backend(backend)
        # Epoch-stamped visited buffer: visit[i] == _stamp means "seen in
        # the current traversal"; bumping the stamp is an O(1) clear.
        self._visit = np.zeros(self.num_nodes, dtype=np.int64)
        self._stamp = 0
        # Lazily materialized plain-list mirror for the scalar path.
        self._scalar: Optional[Tuple[list, list, list]] = None

    # ------------------------------------------------------------------
    # Workspace maintenance
    # ------------------------------------------------------------------
    def ensure_capacity(self, num_nodes: int) -> None:
        """Grow the id space (and visited buffer) to ``num_nodes``."""
        if num_nodes <= self.num_nodes:
            return
        grown = np.zeros(num_nodes, dtype=np.int64)
        grown[: self._visit.shape[0]] = self._visit
        self._visit = grown
        self.num_nodes = num_nodes

    def _use_scalar(self) -> bool:
        resolver = self.limit_resolver
        return resolver is not None and self.entry_count <= resolver()

    def _native_ok(self) -> bool:
        """Whether this query may run the compiled fixpoints.

        Per-call, because the overlay fills and drains between queries:
        the native sweeps know nothing of overlays, so any *populated*
        overlay (or a duck-typed one whose emptiness we cannot see)
        routes to the interpreted paths.  An empty :class:`DictOverlay`
        — the delta engine right after a compaction — is equivalent to
        no overlay at all.
        """
        if self.backend != "native":
            return False
        overlay = self.overlay
        if overlay is None:
            return True
        entry_map = getattr(overlay, "entry_map", None)
        return entry_map is not None and len(entry_map) == 0

    def clone(self) -> "TraversalKernel":
        """A same-arrays twin with a private visited workspace.

        Shares the (read-only during queries) CSR triple, overlay,
        cutover resolver and resolved backend, but owns a fresh
        epoch-stamp buffer — exactly what a thread-mode executor worker
        needs to sweep concurrently with its siblings.
        """
        return TraversalKernel(
            self.indptr,
            self.indices,
            self.expiries,
            num_nodes=self.num_nodes,
            overlay=self.overlay,
            entry_count=self.entry_count,
            limit_resolver=self.limit_resolver,
            backend=self.backend,
        )

    def _scalar_view(self) -> Tuple[list, list, list]:
        if self._scalar is None:
            self._scalar = (
                self.indptr.tolist(),
                self.indices.tolist(),
                self.expiries.tolist(),
            )
        return self._scalar

    # ------------------------------------------------------------------
    # Single/multi-source reachability
    # ------------------------------------------------------------------
    def reachable_ids(
        self, seed_ids: Iterable[int], eff: Optional[float]
    ) -> Set[int]:
        """Distinct ids reachable from ``seed_ids`` (seeds included)."""
        if self._use_scalar():
            return self.reach_scalar(seed_ids, eff)
        if self._native_ok():
            return self.reach_native(seed_ids, eff)
        return self.reach_vector(seed_ids, eff)

    def reachable_count(
        self, seed_ids: Iterable[int], eff: Optional[float]
    ) -> int:
        """``len(reachable_ids(...))`` without materializing the set
        on the vectorized path."""
        if self._use_scalar():
            return len(self.reach_scalar(seed_ids, eff))
        if self._native_ok():
            frontier = self._seed_frontier(seed_ids)
            if frontier is None:
                return 0
            count = int(
                native_reach(
                    self.indptr, self.indices, self.expiries,
                    frontier, self._visit, self._stamp, eff,
                ).size
            )
            sampler = _SWEEP_SAMPLER
            if sampler is not None:
                sampler.record("reach", 1, count)
            return count
        frontier = self._seed_frontier(seed_ids)
        if frontier is None:
            return 0
        count = int(frontier.size)
        for frontier in self._frontiers(frontier, eff):
            count += int(frontier.size)
        sampler = _SWEEP_SAMPLER
        if sampler is not None:
            sampler.record("reach", 1, count)
        return count

    def reach_scalar(
        self, seed_ids: Iterable[int], eff: Optional[float]
    ) -> Set[int]:
        """Plain-Python traversal (small-graph path; forced by tests and
        the calibration probe)."""
        indptr, indices, expiries = self._scalar_view()
        overlay = self.overlay
        base_nodes = len(indptr) - 1
        num_nodes = self.num_nodes
        visited: Set[int] = set()
        stack: List[int] = []
        for node_id in seed_ids:
            if node_id < 0 or node_id >= num_nodes:
                raise seed_range_error(node_id, num_nodes)
            if node_id not in visited:
                visited.add(node_id)
                stack.append(node_id)
        while stack:
            node_id = stack.pop()
            if node_id < base_nodes:
                for slot in range(indptr[node_id], indptr[node_id + 1]):
                    if eff is not None and expiries[slot] < eff:
                        continue
                    successor = indices[slot]
                    if successor not in visited:
                        visited.add(successor)
                        stack.append(successor)
            if overlay is not None:
                entries = overlay.entries(node_id)
                if entries:
                    for successor, expiry in entries:
                        if (eff is None or expiry >= eff) and (
                            successor not in visited
                        ):
                            visited.add(successor)
                            stack.append(successor)
        sampler = _SWEEP_SAMPLER
        if sampler is not None:
            sampler.record("reach_scalar", 1, len(visited))
        return visited

    def reach_native(
        self, seed_ids: Iterable[int], eff: Optional[float]
    ) -> Set[int]:
        """Compiled frontier traversal (same seed validation/stamping as
        the vectorized path; overlay-free by :meth:`_native_ok`)."""
        frontier = self._seed_frontier(seed_ids)
        if frontier is None:
            return set()
        reached = native_reach(
            self.indptr, self.indices, self.expiries,
            frontier, self._visit, self._stamp, eff,
        )
        result = set(reached.tolist())
        sampler = _SWEEP_SAMPLER
        if sampler is not None:
            sampler.record("reach", 1, len(result))
        return result

    def reach_vector(
        self, seed_ids: Iterable[int], eff: Optional[float]
    ) -> Set[int]:
        """Vectorized frontier traversal (forced by the calibration probe)."""
        frontier = self._seed_frontier(seed_ids)
        if frontier is None:
            return set()
        reached = set(frontier.tolist())
        for frontier in self._frontiers(frontier, eff):
            reached.update(frontier.tolist())
        sampler = _SWEEP_SAMPLER
        if sampler is not None:
            sampler.record("reach", 1, len(reached))
        return reached

    # ------------------------------------------------------------------
    # Bit-plane multi-source sweeps
    # ------------------------------------------------------------------
    def spread_counts(
        self, id_sets: Sequence[Sequence[int]], eff: Optional[float]
    ) -> List[int]:
        """Per-set reachable counts for a whole batch of seed sets.

        Semantically ``[self.reachable_count(s, eff) for s in id_sets]``;
        up to :data:`PLANE_WIDTH` sets share each physical traversal.
        Callers own per-set *accounting* — this only shares the physics.
        """
        if self._use_scalar():
            return [len(self.reach_scalar(ids, eff)) for ids in id_sets]
        results = [0] * len(id_sets)
        for start in range(0, len(id_sets), PLANE_WIDTH):
            chunk = id_sets[start : start + PLANE_WIDTH]
            masks = self._masks_for(chunk, eff)
            if masks is None:
                continue
            reached = masks[masks != np.uint64(0)]
            sampler = _SWEEP_SAMPLER
            if sampler is not None:
                sampler.record("spread", len(chunk), int(reached.size))
            results[start : start + len(chunk)] = [
                int(np.count_nonzero(reached & np.uint64(1 << plane)))
                for plane in range(len(chunk))
            ]
        return results

    def weighted_spread_sums(
        self,
        id_sets: Sequence[Sequence[int]],
        eff: Optional[float],
        weights: np.ndarray,
    ) -> List[float]:
        """Per-set reached-weight sums folded over the bit-plane sweep.

        Semantically ``[dense_weight_sum(weights, self.reachable_ids(s,
        eff)) for s in id_sets]`` — and bit-identical to it, because each
        plane's reached ids are extracted in ascending order before the
        float64 gather-sum — but 64 weighted evaluations share each
        physical traversal instead of materializing one Python set per
        set of seeds.
        """
        if self._use_scalar():
            return [
                dense_weight_sum(weights, self.reach_scalar(ids, eff))
                for ids in id_sets
            ]
        results = [0.0] * len(id_sets)
        for start in range(0, len(id_sets), PLANE_WIDTH):
            chunk = id_sets[start : start + PLANE_WIDTH]
            masks = self._masks_for(chunk, eff)
            if masks is None:
                continue
            reached_ids = np.flatnonzero(masks)
            reached_masks = masks[reached_ids]
            sampler = _SWEEP_SAMPLER
            if sampler is not None:
                sampler.record("wspread", len(chunk), int(reached_ids.size))
            results[start : start + len(chunk)] = [
                float(
                    weights[
                        reached_ids[
                            (reached_masks & np.uint64(1 << plane))
                            != np.uint64(0)
                        ]
                    ].sum()
                )
                for plane in range(len(chunk))
            ]
        return results

    def spread_level_counts(
        self, id_sets: Sequence[Sequence[int]], eff: Optional[float]
    ) -> List[List[int]]:
        """Per-set histogram of first-reach hop levels.

        ``result[i][d]`` is the number of distinct nodes whose shortest
        alive-edge hop distance from seed set ``i`` is exactly ``d``
        (seeds are level 0); the list ends at the set's eccentricity.
        This is the physics under hop-discounted folds: the fold layer
        turns each histogram into a score without ever re-walking the
        graph, and up to :data:`PLANE_WIDTH` sets share each physical
        traversal exactly as :meth:`spread_counts` does.  A set's counts
        always sum to its :meth:`spread_counts` entry — levels refine
        the reached set, they never change it.
        """
        if self._use_scalar():
            return [self._level_counts_scalar(ids, eff) for ids in id_sets]
        results: List[List[int]] = [[] for _ in id_sets]
        for start in range(0, len(id_sets), PLANE_WIDTH):
            chunk = id_sets[start : start + PLANE_WIDTH]
            per_plane = self._level_counts_for(chunk, eff)
            sampler = _SWEEP_SAMPLER
            if sampler is not None:
                sampler.record(
                    "spread_levels",
                    len(chunk),
                    sum(sum(levels) for levels in per_plane),
                )
            results[start : start + len(chunk)] = per_plane
        return results

    def _level_counts_scalar(
        self, seed_ids: Sequence[int], eff: Optional[float]
    ) -> List[int]:
        """Level-synchronous plain-Python BFS (the scalar-cutover twin of
        :meth:`_plane_level_counts` for a single seed set)."""
        indptr, indices, expiries = self._scalar_view()
        overlay = self.overlay
        base_nodes = len(indptr) - 1
        num_nodes = self.num_nodes
        visited: Set[int] = set()
        frontier: List[int] = []
        for node_id in seed_ids:
            if node_id < 0 or node_id >= num_nodes:
                raise seed_range_error(node_id, num_nodes)
            if node_id not in visited:
                visited.add(node_id)
                frontier.append(node_id)
        counts: List[int] = []
        while frontier:
            counts.append(len(frontier))
            successors: List[int] = []
            for node_id in frontier:
                if node_id < base_nodes:
                    for slot in range(indptr[node_id], indptr[node_id + 1]):
                        if eff is not None and expiries[slot] < eff:
                            continue
                        successor = indices[slot]
                        if successor not in visited:
                            visited.add(successor)
                            successors.append(successor)
                if overlay is not None:
                    entries = overlay.entries(node_id)
                    if entries:
                        for successor, expiry in entries:
                            if (eff is None or expiry >= eff) and (
                                successor not in visited
                            ):
                                visited.add(successor)
                                successors.append(successor)
            frontier = successors
        return counts

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _seed_frontier(
        self, seed_ids: Iterable[int]
    ) -> Optional[np.ndarray]:
        """Deduplicated, validated, stamped seed frontier (None = empty)."""
        frontier = np.unique(np.asarray(list(seed_ids), dtype=np.int64))
        if frontier.size == 0:
            return None
        if frontier[0] < 0:
            raise seed_range_error(frontier[0], self.num_nodes)
        if frontier[-1] >= self.num_nodes:
            raise seed_range_error(frontier[-1], self.num_nodes)
        self._stamp += 1
        self._visit[frontier] = self._stamp
        return frontier

    def _frontiers(
        self, frontier: np.ndarray, eff: Optional[float]
    ) -> Iterator[np.ndarray]:
        """Yield successive stamped BFS frontiers over base plus overlay."""
        indptr = self.indptr
        indices = self.indices
        expiries = self.expiries
        overlay = self.overlay
        base_nodes = indptr.shape[0] - 1
        visit = self._visit
        stamp = self._stamp
        while frontier.size:
            parts = []
            in_base = (
                frontier[frontier < base_nodes]
                if base_nodes < self.num_nodes
                else frontier
            )
            if in_base.size:
                starts = indptr[in_base]
                counts = indptr[in_base + 1] - starts
                total = int(counts.sum())
                if total:
                    # Gather the concatenated adjacency slices of the
                    # frontier: block i spans starts[i] .. starts[i]+counts[i].
                    ends = np.cumsum(counts)
                    slots = np.repeat(starts - ends + counts, counts)
                    slots += np.arange(total)
                    if eff is not None:
                        slots = slots[expiries[slots] >= eff]
                    neighbors = indices[slots]
                    neighbors = neighbors[visit[neighbors] != stamp]
                    if neighbors.size:
                        parts.append(neighbors)
            if overlay is not None:
                overlay_nodes = overlay.select(frontier)
                if overlay_nodes.size:
                    extra = []
                    for node_id in overlay_nodes.tolist():
                        for successor, expiry in overlay.entries(node_id):
                            if (eff is None or expiry >= eff) and visit[
                                successor
                            ] != stamp:
                                extra.append(successor)
                    if extra:
                        parts.append(np.asarray(extra, dtype=np.int64))
            if not parts:
                return
            frontier = np.unique(
                np.concatenate(parts) if len(parts) > 1 else parts[0]
            )
            visit[frontier] = stamp
            yield frontier

    def _seed_planes(
        self, chunk: Sequence[Sequence[int]]
    ) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Validated plane-seeded mask array plus the per-plane seed
        arrays (empty list = every set was empty) — shared by both
        backends so seeding and rejection cannot drift."""
        num_nodes = self.num_nodes
        masks = np.zeros(num_nodes, dtype=np.uint64)
        seed_parts: List[np.ndarray] = []
        for plane, ids in enumerate(chunk):
            seeds = np.asarray(list(ids), dtype=np.int64)
            if seeds.size == 0:
                continue
            low = int(seeds.min())
            if low < 0:
                raise seed_range_error(low, num_nodes)
            high = int(seeds.max())
            if high >= num_nodes:
                raise seed_range_error(high, num_nodes)
            masks[seeds] |= np.uint64(1 << plane)
            seed_parts.append(seeds)
        return masks, seed_parts

    def _masks_for(
        self, chunk: Sequence[Sequence[int]], eff: Optional[float]
    ) -> Optional[np.ndarray]:
        """Backend dispatch for the bit-plane fixpoint: both paths
        produce the identical uint64 mask array, so every downstream
        float fold runs the same numpy expression either way."""
        if self._native_ok():
            masks, seed_parts = self._seed_planes(chunk)
            if not seed_parts:
                return None
            frontier = np.unique(np.concatenate(seed_parts))
            native_plane_masks(
                self.indptr, self.indices, self.expiries,
                masks, frontier, eff,
            )
            return masks
        return self._plane_masks(chunk, eff)

    def _level_counts_for(
        self, chunk: Sequence[Sequence[int]], eff: Optional[float]
    ) -> List[List[int]]:
        """Backend dispatch for the level-counting fixpoint."""
        if self._native_ok():
            return self._plane_level_counts_native(chunk, eff)
        return self._plane_level_counts(chunk, eff)

    def _plane_level_counts_native(
        self, chunk: Sequence[Sequence[int]], eff: Optional[float]
    ) -> List[List[int]]:
        """Native twin of :meth:`_plane_level_counts`.

        The compiled fixpoint reports per-round, per-plane flip counts;
        this rebuilds the histogram lists with the python sweep's exact
        bookkeeping — seed level first, zeros appended only to planes
        already live, trailing zeros trimmed — so both backends return
        identical lists, element for element.
        """
        masks, seed_parts = self._seed_planes(chunk)
        counts: List[List[int]] = [[] for _ in chunk]
        for plane, ids in enumerate(chunk):
            seeds = np.asarray(list(ids), dtype=np.int64)
            if seeds.size:
                counts[plane].append(int(np.unique(seeds).size))
        if not seed_parts:
            return counts
        frontier = np.unique(np.concatenate(seed_parts))
        flips = native_plane_level_flips(
            self.indptr, self.indices, self.expiries, masks, frontier, eff
        )
        for round_index in range(flips.shape[0]):
            for plane in range(len(chunk)):
                flipped = int(flips[round_index, plane])
                if flipped:
                    counts[plane].append(flipped)
                elif counts[plane]:
                    counts[plane].append(0)
        for plane_counts_list in counts:
            while plane_counts_list and plane_counts_list[-1] == 0:
                plane_counts_list.pop()
        return counts

    def _plane_masks(
        self, chunk: Sequence[Sequence[int]], eff: Optional[float]
    ) -> Optional[np.ndarray]:
        """Run one shared fixpoint sweep for up to 64 seed sets.

        Returns the final uint64 mask array (bit *i* of ``masks[v]`` =
        "set *i* reaches *v*"), or ``None`` when every set was empty.
        """
        masks, seed_parts = self._seed_planes(chunk)
        if not seed_parts:
            return None
        num_nodes = self.num_nodes
        indptr = self.indptr
        indices = self.indices
        expiries = self.expiries
        overlay = self.overlay
        base_nodes = indptr.shape[0] - 1
        frontier = np.unique(np.concatenate(seed_parts))
        while frontier.size:
            changed_parts = []
            in_base = (
                frontier[frontier < base_nodes]
                if base_nodes < num_nodes
                else frontier
            )
            if in_base.size:
                starts = indptr[in_base]
                counts = indptr[in_base + 1] - starts
                nonzero = counts > 0
                in_base = in_base[nonzero]
                starts = starts[nonzero]
                counts = counts[nonzero]
                total = int(counts.sum())
                if total:
                    ends = np.cumsum(counts)
                    slots = np.repeat(starts - ends + counts, counts)
                    slots += np.arange(total)
                    sources = np.repeat(in_base, counts)
                    if eff is not None:
                        keep = expiries[slots] >= eff
                        slots = slots[keep]
                        sources = sources[keep]
                    if slots.size:
                        targets = indices[slots]
                        contrib = masks[sources]
                        before = masks[targets]
                        np.bitwise_or.at(masks, targets, contrib)
                        changed = targets[masks[targets] != before]
                        if changed.size:
                            changed_parts.append(changed)
            if overlay is not None:
                overlay_nodes = overlay.select(frontier)
                if overlay_nodes.size:
                    extra = []
                    for node_id in overlay_nodes.tolist():
                        node_mask = int(masks[node_id])
                        for successor, expiry in overlay.entries(node_id):
                            if eff is not None and expiry < eff:
                                continue
                            old = int(masks[successor])
                            new = old | node_mask
                            if new != old:
                                masks[successor] = new
                                extra.append(successor)
                    if extra:
                        changed_parts.append(
                            np.asarray(extra, dtype=np.int64)
                        )
            if not changed_parts:
                break
            frontier = np.unique(
                np.concatenate(changed_parts)
                if len(changed_parts) > 1
                else changed_parts[0]
            )
        return masks

    def _plane_level_counts(
        self, chunk: Sequence[Sequence[int]], eff: Optional[float]
    ) -> List[List[int]]:
        """One shared fixpoint sweep that also histograms first-reach levels.

        The same bit-plane propagation as :meth:`_plane_masks`, with one
        addition: after each round's or-update the newly-set bits
        (``after & ~before``) are counted per plane, because a bit that
        flips in round ``r`` marks a node first reached at hop level
        ``r``.  Kept separate from :meth:`_plane_masks` so the count and
        weighted sweeps stay byte-identical to their pre-fold selves.
        """
        num_nodes = self.num_nodes
        masks = np.zeros(num_nodes, dtype=np.uint64)
        counts: List[List[int]] = [[] for _ in chunk]
        seed_parts = []
        for plane, ids in enumerate(chunk):
            seeds = np.asarray(list(ids), dtype=np.int64)
            if seeds.size == 0:
                continue
            low = int(seeds.min())
            if low < 0:
                raise seed_range_error(low, num_nodes)
            high = int(seeds.max())
            if high >= num_nodes:
                raise seed_range_error(high, num_nodes)
            masks[seeds] |= np.uint64(1 << plane)
            counts[plane].append(int(np.unique(seeds).size))
            seed_parts.append(seeds)
        if not seed_parts:
            return counts
        indptr = self.indptr
        indices = self.indices
        expiries = self.expiries
        overlay = self.overlay
        base_nodes = indptr.shape[0] - 1
        frontier = np.unique(np.concatenate(seed_parts))
        while frontier.size:
            changed_parts = []
            gained_parts = []
            extra_gained: List[int] = []
            in_base = (
                frontier[frontier < base_nodes]
                if base_nodes < num_nodes
                else frontier
            )
            if in_base.size:
                starts = indptr[in_base]
                plane_counts = indptr[in_base + 1] - starts
                nonzero = plane_counts > 0
                in_base = in_base[nonzero]
                starts = starts[nonzero]
                plane_counts = plane_counts[nonzero]
                total = int(plane_counts.sum())
                if total:
                    ends = np.cumsum(plane_counts)
                    slots = np.repeat(starts - ends + plane_counts, plane_counts)
                    slots += np.arange(total)
                    sources = np.repeat(in_base, plane_counts)
                    if eff is not None:
                        keep = expiries[slots] >= eff
                        slots = slots[keep]
                        sources = sources[keep]
                    if slots.size:
                        targets = indices[slots]
                        contrib = masks[sources]
                        before = masks[targets]
                        np.bitwise_or.at(masks, targets, contrib)
                        gained = masks[targets] & ~before
                        hit = gained != np.uint64(0)
                        changed = targets[hit]
                        if changed.size:
                            # Duplicate targets carry identical before/
                            # after gathers, so any one representative's
                            # gained mask is the round's full flip set.
                            uniq, first = np.unique(
                                changed, return_index=True
                            )
                            changed_parts.append(uniq)
                            gained_parts.append(gained[hit][first])
            if overlay is not None:
                overlay_nodes = overlay.select(frontier)
                if overlay_nodes.size:
                    extra = []
                    for node_id in overlay_nodes.tolist():
                        node_mask = int(masks[node_id])
                        for successor, expiry in overlay.entries(node_id):
                            if eff is not None and expiry < eff:
                                continue
                            old = int(masks[successor])
                            new = old | node_mask
                            if new != old:
                                masks[successor] = new
                                extra.append(successor)
                                extra_gained.append(new & ~old)
                    if extra:
                        changed_parts.append(
                            np.asarray(extra, dtype=np.int64)
                        )
            if not changed_parts:
                break
            for plane in range(len(chunk)):
                bit = np.uint64(1 << plane)
                flipped = sum(
                    int(np.count_nonzero(part & bit))
                    for part in gained_parts
                )
                flipped += sum(1 for g in extra_gained if g & (1 << plane))
                if flipped:
                    counts[plane].append(flipped)
                elif counts[plane]:
                    counts[plane].append(0)
            frontier = np.unique(
                np.concatenate(changed_parts)
                if len(changed_parts) > 1
                else changed_parts[0]
            )
        for plane_counts_list in counts:
            while plane_counts_list and plane_counts_list[-1] == 0:
                plane_counts_list.pop()
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraversalKernel(nodes={self.num_nodes}, "
            f"entries={self.entry_count}, "
            f"overlay={self.overlay is not None})"
        )
