"""Pluggable influence semantics: the fold registry behind every engine.

PR 5 unified the *physics* of influence evaluation — the time-decayed
frontier sweep — into one :class:`~repro.kernels.traversal.
TraversalKernel`.  This module unifies the *accumulation*: what a seed
set scores once the sweep knows which nodes it reaches (and at which hop
depth).  Every semantics is a :class:`Fold` — a commutative-monoid fold
``finalize(combine(identity, term(v)) for v in R(S))`` over the reached
set — registered under a stable name that engines, oracles, the sharded
worker protocol and persistence all speak:

``count``
    ``term(v) = 1``: today's spread ``|R(S)|``.  Routed through the
    pre-existing bit-plane popcount path, byte-identical to before this
    module existed.
``weighted_sum``
    ``term(v) = w[v]`` for a caller-supplied dense weight array: the
    PR 5 ROI path, expressed as a fold.
``hop_discount``
    ``term(v) = alpha ** d(v)`` where ``d(v)`` is the BFS hop distance
    from the seed set (seeds are depth 0): geometric per-hop decay in
    the Katz / communicability family.  ``alpha ** min(a, b) ==
    max(alpha ** a, alpha ** b)`` for ``alpha <= 1``, so this is a
    max-coverage objective — monotone and submodular, safe for every
    sieve in :mod:`repro.core`.
``time_decay``
    ``term(v) = 1 - exp(-lam * (maxexp_in(v) - eff))`` where
    ``maxexp_in(v)`` is the latest expiry over ``v``'s alive in-edges at
    horizon ``eff`` — how much lifetime ``v``'s freshest incoming
    interaction has left, squashed to ``[0, 1)``.  Nodes with no alive
    in-edge (reachable only as seeds; self-presence never expires) score
    exactly ``1``, as does an infinite-lifetime edge (``exp(-inf) == 0``
    — no special case).  A pure weighted coverage, hence submodular.

Each fold declares the monoid (:meth:`Fold.identity` /
:meth:`~Fold.combine` / :meth:`~Fold.finalize`), a vectorized bit-plane
accumulator (:meth:`~Fold.batch`, delegating to the kernel sweep that
shares one physical traversal across 64 seed sets), and an independent
scalar reference (:meth:`~Fold.reference`, a plain fold over a
``node -> hop level`` mapping) that the differential suites pin the
vectorized path against.  Folds are value objects: picklable as a
``(name, params)`` spec so a worker process can rebuild one from a task
message, and hashable via :meth:`~Fold.token` so memo tables can key
cache entries per semantics.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Type, Union

import numpy as np

from repro.errors import SemanticsError
from repro.kernels.traversal import TraversalKernel, dense_weight_sum

__all__ = [
    "FOLD_NAMES",
    "CountFold",
    "Fold",
    "FoldSpec",
    "HopDiscountFold",
    "TimeDecayFold",
    "WeightedSumFold",
    "hop_discount_sum",
    "max_in_expiries",
    "resolve_fold",
]

#: The picklable wire/persistence form of a fold: ``(name, params)``.
FoldSpec = Tuple[str, Dict[str, float]]

#: Anything :func:`resolve_fold` accepts.
SemanticsLike = Union[str, "Fold", FoldSpec]


def hop_discount_sum(level_counts: Iterable[int], alpha: float) -> float:
    """The one accumulation order for geometric hop discounts.

    ``sum(alpha**level * count)`` in strictly ascending level order, in
    Python floats.  Both the kernel's bit-plane accumulator and the
    scalar reference route through this function, so the float64 result
    is bit-identical no matter which path produced the level counts.
    """
    acc = 0.0
    for level, count in enumerate(level_counts):
        if count:
            acc += (alpha**level) * count
    return acc


def max_in_expiries(
    indices: np.ndarray,
    expiries: np.ndarray,
    num_nodes: int,
    eff: Optional[float],
) -> np.ndarray:
    """Per-node max expiry over alive in-edges of a forward CSR.

    ``indices``/``expiries`` are the *forward* adjacency arrays — entry
    ``j`` is an edge into node ``indices[j]`` expiring at
    ``expiries[j]``.  Entries below the horizon are dead and ignored.
    Nodes with no alive in-edge get ``-inf`` (the monoid identity of
    ``max``), which callers layer overlay maxima onto before converting
    to decay weights: ``max`` is associative, so a stale base plus an
    overlay maximum lands on exactly the fresh-snapshot value.
    """
    out = np.full(num_nodes, -np.inf, dtype=np.float64)
    if indices.shape[0]:
        if eff is None:
            alive_idx, alive_exp = indices, expiries
        else:
            keep = expiries >= eff
            alive_idx, alive_exp = indices[keep], expiries[keep]
        if alive_idx.shape[0]:
            np.maximum.at(out, alive_idx, alive_exp)
    return out


class Fold:
    """One influence semantics over the shared traversal kernel.

    Subclasses pin ``name``, validate their parameters, and implement
    the vectorized :meth:`batch` and the scalar :meth:`reference`.  The
    monoid itself is the same for every shipped fold — sum of
    non-negative per-node terms with identity ``0.0`` — which is what
    keeps each one monotone submodular and therefore safe under every
    tracker in :mod:`repro.core`.
    """

    name: str = ""

    def __init__(self, **params: float) -> None:
        self.params: Dict[str, float] = {
            key: float(value) for key, value in params.items()
        }

    # ------------------------------------------------------------------
    # Monoid contract
    # ------------------------------------------------------------------
    def identity(self) -> float:
        """The score of the empty reached set."""
        return 0.0

    def combine(self, acc: float, term: float) -> float:
        """Fold one node term into the accumulator."""
        return acc + term

    def finalize(self, acc: float) -> float:
        """Map the final accumulator to the reported score."""
        return acc

    # ------------------------------------------------------------------
    # Wiring contract
    # ------------------------------------------------------------------
    @property
    def needs_weights(self) -> bool:
        """True when :meth:`batch` requires caller-supplied node values."""
        return False

    @property
    def derives_node_values(self) -> bool:
        """True when node values come from the adjacency (see
        :meth:`values_from_max_in`), not from the caller."""
        return False

    def values_from_max_in(
        self, max_in: np.ndarray, eff: Optional[float]
    ) -> np.ndarray:
        """Dense node values from per-node max alive in-expiries."""
        raise SemanticsError(
            f"semantics {self.name!r} does not derive node values"
        )

    def batch(
        self,
        kernel: TraversalKernel,
        id_sets: Sequence[Sequence[int]],
        eff: Optional[float],
        node_values: Optional[np.ndarray] = None,
    ) -> List[float]:
        """Vectorized bit-plane evaluation of a batch of seed sets."""
        raise NotImplementedError

    def reference(
        self,
        levels: Mapping[int, int],
        node_values: Optional[np.ndarray] = None,
    ) -> float:
        """Scalar reference: fold a ``node -> hop level`` mapping.

        Independent of the bit-plane machinery — the differential suites
        feed this a dict-BFS result and assert :meth:`batch` matches it
        bit for bit.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Identity / wire form
    # ------------------------------------------------------------------
    def token(self) -> Tuple[str, Tuple[Tuple[str, float], ...]]:
        """Hashable identity for memo keys: params included, so two
        parameterizations of one fold never share cache entries."""
        return (self.name, tuple(sorted(self.params.items())))

    def spec(self) -> FoldSpec:
        """The picklable ``(name, params)`` wire/persistence form."""
        return (self.name, dict(self.params))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Fold) and self.token() == other.token()

    def __hash__(self) -> int:
        return hash(self.token())

    def __repr__(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{type(self).__name__}({args})"


class CountFold(Fold):
    """``term(v) = 1``: the paper's spread ``|R(S)|``.

    Routed through the pre-fold popcount path
    (:meth:`~repro.kernels.traversal.TraversalKernel.spread_counts`)
    unchanged, so counts stay byte-identical to the pre-refactor kernel
    and the refactor costs nothing on the hot path.
    """

    name = "count"

    def __init__(self) -> None:
        super().__init__()

    def batch(
        self,
        kernel: TraversalKernel,
        id_sets: Sequence[Sequence[int]],
        eff: Optional[float],
        node_values: Optional[np.ndarray] = None,
    ) -> List[float]:
        return [float(count) for count in kernel.spread_counts(id_sets, eff)]

    def reference(
        self,
        levels: Mapping[int, int],
        node_values: Optional[np.ndarray] = None,
    ) -> float:
        return float(len(levels))


class WeightedSumFold(Fold):
    """``term(v) = w[v]`` over a caller-supplied dense weight array."""

    name = "weighted_sum"

    def __init__(self) -> None:
        super().__init__()

    @property
    def needs_weights(self) -> bool:
        return True

    def batch(
        self,
        kernel: TraversalKernel,
        id_sets: Sequence[Sequence[int]],
        eff: Optional[float],
        node_values: Optional[np.ndarray] = None,
    ) -> List[float]:
        if node_values is None:
            raise SemanticsError(
                "semantics 'weighted_sum' requires a dense node-weight array"
            )
        return kernel.weighted_spread_sums(id_sets, eff, node_values)

    def reference(
        self,
        levels: Mapping[int, int],
        node_values: Optional[np.ndarray] = None,
    ) -> float:
        if node_values is None:
            raise SemanticsError(
                "semantics 'weighted_sum' requires a dense node-weight array"
            )
        return dense_weight_sum(node_values, levels.keys())


class HopDiscountFold(Fold):
    """``term(v) = alpha ** d(v)``: geometric per-hop decay."""

    name = "hop_discount"

    def __init__(self, alpha: float = 0.5) -> None:
        alpha = float(alpha)
        if not 0.0 < alpha <= 1.0:
            raise SemanticsError(
                f"hop_discount alpha must be in (0, 1], got {alpha!r}"
            )
        super().__init__(alpha=alpha)

    @property
    def alpha(self) -> float:
        return self.params["alpha"]

    def batch(
        self,
        kernel: TraversalKernel,
        id_sets: Sequence[Sequence[int]],
        eff: Optional[float],
        node_values: Optional[np.ndarray] = None,
    ) -> List[float]:
        alpha = self.alpha
        return [
            hop_discount_sum(counts, alpha)
            for counts in kernel.spread_level_counts(id_sets, eff)
        ]

    def reference(
        self,
        levels: Mapping[int, int],
        node_values: Optional[np.ndarray] = None,
    ) -> float:
        if not levels:
            return 0.0
        counts = [0] * (max(levels.values()) + 1)
        for level in levels.values():
            counts[level] += 1
        return hop_discount_sum(counts, self.alpha)


class TimeDecayFold(Fold):
    """``term(v) = 1 - exp(-lam * (maxexp_in(v) - eff))``: recency score.

    A node is worth more the more lifetime its freshest alive incoming
    interaction has left at the query horizon — the paper's exponential
    decay model turned into a per-node score.  Reduces to a weighted sum
    over a dense value array derived per ``(arrays, eff)`` by
    :func:`max_in_expiries` + :meth:`values_from_max_in`, so it rides
    the existing weighted bit-plane sweep.
    """

    name = "time_decay"

    def __init__(self, lam: float = 0.1) -> None:
        lam = float(lam)
        if not lam > 0.0:
            raise SemanticsError(f"time_decay lam must be > 0, got {lam!r}")
        super().__init__(lam=lam)

    @property
    def lam(self) -> float:
        return self.params["lam"]

    @property
    def derives_node_values(self) -> bool:
        return True

    def values_from_max_in(
        self, max_in: np.ndarray, eff: Optional[float]
    ) -> np.ndarray:
        base = 0.0 if eff is None else float(eff)
        with np.errstate(over="ignore"):
            values = 1.0 - np.exp(-self.lam * (max_in - base))
        # max_in == -inf (no alive in-edge) falls through the exp as
        # 1 - inf; such nodes are reachable only as seeds, and a node's
        # own presence never expires — weight exactly 1.
        values[np.isneginf(max_in)] = 1.0
        return values

    def batch(
        self,
        kernel: TraversalKernel,
        id_sets: Sequence[Sequence[int]],
        eff: Optional[float],
        node_values: Optional[np.ndarray] = None,
    ) -> List[float]:
        if node_values is None:
            raise SemanticsError(
                "semantics 'time_decay' requires derived node values; "
                "engines compute them via max_in_expiries"
            )
        return kernel.weighted_spread_sums(id_sets, eff, node_values)

    def reference(
        self,
        levels: Mapping[int, int],
        node_values: Optional[np.ndarray] = None,
    ) -> float:
        if node_values is None:
            raise SemanticsError(
                "semantics 'time_decay' requires derived node values"
            )
        return dense_weight_sum(node_values, levels.keys())


_FOLDS: Dict[str, Type[Fold]] = {
    CountFold.name: CountFold,
    WeightedSumFold.name: WeightedSumFold,
    HopDiscountFold.name: HopDiscountFold,
    TimeDecayFold.name: TimeDecayFold,
}

#: Every registered semantics name, stable and sorted.
FOLD_NAMES: Tuple[str, ...] = tuple(sorted(_FOLDS))


def resolve_fold(semantics: SemanticsLike) -> Fold:
    """Resolve a name, ``(name, params)`` spec, or ready fold instance.

    The one entry point every layer uses — oracle construction, worker
    task decoding, checkpoint loading — so an unknown semantics name
    fails with the same :class:`~repro.errors.SemanticsError` everywhere.
    """
    if isinstance(semantics, Fold):
        return semantics
    params: Dict[str, float] = {}
    if isinstance(semantics, str):
        name = semantics
    elif (
        isinstance(semantics, (tuple, list))
        and len(semantics) == 2
        and isinstance(semantics[0], str)
    ):
        name = semantics[0]
        params = dict(semantics[1]) if semantics[1] else {}
    else:
        raise SemanticsError(
            "semantics must be a name, a (name, params) pair, or a Fold; "
            f"got {semantics!r}"
        )
    cls = _FOLDS.get(name)
    if cls is None:
        raise SemanticsError(
            f"unknown influence semantics {name!r}; "
            f"expected one of {list(FOLD_NAMES)}"
        )
    try:
        return cls(**params)
    except TypeError as exc:
        raise SemanticsError(
            f"invalid parameters for semantics {name!r}: {exc}"
        ) from None
