"""Numba-compiled twins of the traversal kernel's three hot fixpoints.

Every function here is the *integer* half of a sweep the pure-python
:class:`~repro.kernels.traversal.TraversalKernel` already runs: the
epoch-stamped frontier BFS, the 64-wide uint64 bit-plane fixpoint, and
the bit-plane fixpoint with per-round flip counting (the physics under
hop-level histograms).  They produce only exact quantities — reached id
arrays, uint64 masks, integer flip counts — and never touch float
accumulation: the final float64 folds (weighted sums, hop discounts)
stay on the *same numpy expressions* the python kernel uses, which is
what makes the native backend bit-identical by construction (numba
compiles ``ndarray.sum`` to sequential accumulation, numpy uses pairwise
summation; handing floats to the jit would silently change results).

Round structure is the python kernel's, exactly: each bit-plane round
snapshots the start-of-round masks of the whole frontier before any
target is or-updated (the python sweep gathers ``contrib =
masks[sources]`` before ``np.bitwise_or.at``), so per-round frontier
sets, flip rounds, and therefore level histograms cannot drift between
backends.

Contract (enforced by lint rule RPL106): every function is
``@njit(nogil=True, cache=True)``, bodies stay on numpy scalars and
arrays (no dict/set/str operations the jit would object-mode around),
and the only caller is :mod:`repro.kernels.backend` — the dispatch layer
owns seed validation, buffer allocation, warm-up and fallback, so this
module never raises and never sees an invalid seed.  ``nogil=True`` is
what lets the thread-mode executor shard sweeps across a
``ThreadPoolExecutor`` with true parallelism.
"""

import numpy as np
from numba import njit


@njit(nogil=True, cache=True)
def reach_fixpoint(indptr, indices, expiries, frontier, visit, stamp,
                   eff, use_eff, out):
    """Expand a stamped seed frontier to its reachable set.

    ``frontier`` entries are already stamped in ``visit`` by the caller
    (the python kernel's ``_seed_frontier`` owns validation and
    stamping).  Fills ``out`` with every reached id — seeds included,
    each exactly once — and returns the count.
    """
    base_nodes = indptr.shape[0] - 1
    count = 0
    for i in range(frontier.shape[0]):
        out[count] = frontier[i]
        count += 1
    head = 0
    while head < count:
        node = out[head]
        head += 1
        if node >= base_nodes:
            continue
        for slot in range(indptr[node], indptr[node + 1]):
            if use_eff and expiries[slot] < eff:
                continue
            successor = indices[slot]
            if visit[successor] != stamp:
                visit[successor] = stamp
                out[count] = successor
                count += 1
    return count


@njit(nogil=True, cache=True)
def plane_fixpoint(indptr, indices, expiries, masks, frontier, fcount,
                   eff, use_eff, contrib, nxt, in_next):
    """Propagate up to 64 seed planes to fixpoint (masks updated in place).

    ``frontier[:fcount]`` holds the seeded node ids; ``contrib``/``nxt``
    (int64, one slot per node) and ``in_next`` (bool, all ``False``) are
    caller-provided scratch.  Each round snapshots the frontier's masks
    first, then or-propagates them, so a target changed mid-round never
    leaks new bits to the rest of the round — the same synchronous-round
    semantics the vectorized python sweep gets from gathering ``contrib``
    before ``np.bitwise_or.at``.
    """
    base_nodes = indptr.shape[0] - 1
    while fcount > 0:
        for i in range(fcount):
            contrib[i] = masks[frontier[i]]
        nxt_count = 0
        for i in range(fcount):
            source = frontier[i]
            if source >= base_nodes:
                continue
            bits = contrib[i]
            for slot in range(indptr[source], indptr[source + 1]):
                if use_eff and expiries[slot] < eff:
                    continue
                target = indices[slot]
                before = masks[target]
                after = before | bits
                if after != before:
                    masks[target] = after
                    if not in_next[target]:
                        in_next[target] = True
                        nxt[nxt_count] = target
                        nxt_count += 1
        for i in range(nxt_count):
            target = nxt[i]
            frontier[i] = target
            in_next[target] = False
        fcount = nxt_count


@njit(nogil=True, cache=True)
def plane_level_fixpoint(indptr, indices, expiries, masks, frontier,
                         fcount, eff, use_eff, contrib, nxt, old, in_next,
                         flips):
    """The bit-plane fixpoint, also counting per-round first-reach flips.

    Identical propagation to :func:`plane_fixpoint`, plus: for every
    round that changes at least one target, ``flips[round, plane]`` is
    filled with the number of distinct targets whose plane bit first
    flipped that round (``old`` records each changed target's
    start-of-round mask at its first in-round change, which a monotone
    or-fixpoint guarantees is the round baseline).  Returns the number
    of recorded rounds; the caller turns rows into the python kernel's
    level-histogram lists.
    """
    base_nodes = indptr.shape[0] - 1
    num_rounds = 0
    while fcount > 0:
        for i in range(fcount):
            contrib[i] = masks[frontier[i]]
        nxt_count = 0
        for i in range(fcount):
            source = frontier[i]
            if source >= base_nodes:
                continue
            bits = contrib[i]
            for slot in range(indptr[source], indptr[source + 1]):
                if use_eff and expiries[slot] < eff:
                    continue
                target = indices[slot]
                before = masks[target]
                after = before | bits
                if after != before:
                    masks[target] = after
                    if not in_next[target]:
                        in_next[target] = True
                        old[nxt_count] = before
                        nxt[nxt_count] = target
                        nxt_count += 1
        if nxt_count > 0:
            for i in range(nxt_count):
                gained = masks[nxt[i]] & ~old[i]
                plane = 0
                while gained != np.uint64(0):
                    if gained & np.uint64(1) != np.uint64(0):
                        flips[num_rounds, plane] += 1
                    gained = gained >> np.uint64(1)
                    plane += 1
            num_rounds += 1
        for i in range(nxt_count):
            target = nxt[i]
            frontier[i] = target
            in_next[target] = False
        fcount = nxt_count
    return num_rounds
