"""Backend dispatch for the traversal kernel: python reference vs numba.

One question, answered in one place: *which implementation of the hot
fixpoints does a kernel instance run?*  The pure-python
:class:`~repro.kernels.traversal.TraversalKernel` loops are the
reference; :mod:`repro.kernels.native` holds ``@njit(nogil=True)``
twins of the three integer fixpoints.  Resolution order:

1. an explicit ``backend=`` argument (``"python"`` | ``"native"`` |
   ``"auto"``) passed to an engine or kernel constructor,
2. the ``REPRO_KERNEL_BACKEND`` environment variable,
3. ``"auto"``: probe for numba and warm the jit up once; on success
   every subsequently built kernel runs native, otherwise the python
   path serves silently.

The policy is *degrade, never error*: numba missing, broken, or failing
to compile always lands on the python kernel.  An **explicit**
``"native"`` request that cannot be honored emits a single structured
``RuntimeWarning`` per process (tests and operators see it once, log
noise never compounds); ``"auto"`` stays silent.  The one-time warm-up
compiles all three fixpoints against the real array signatures and
records backend identity plus compile wall time in the obs registry.

This module is also the **only sanctioned caller** of
:mod:`repro.kernels.native` (lint rule RPL106): the wrappers below own
buffer allocation and ``eff``-handling so the jitted bodies stay free of
Python-object operations.  Everything float stays out of here — the
kernel folds plane masks through the same numpy expressions on both
backends, which is what keeps results bit-identical.
"""

from __future__ import annotations

import os
import time
import warnings
from types import ModuleType
from typing import Optional

import numpy as np

from repro.obs import names as metric_names
from repro.obs.registry import metrics_registry

__all__ = [
    "BACKENDS",
    "BACKEND_ENV",
    "native_available",
    "native_compile_seconds",
    "native_plane_level_flips",
    "native_plane_masks",
    "native_reach",
    "reset_backend_state",
    "resolve_backend",
]

#: Environment override consulted when no explicit backend is passed.
BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: Accepted backend spellings (resolution always lands on the first two).
BACKENDS = ("python", "native", "auto")

_BACKEND_GAUGE = metrics_registry().gauge(metric_names.KERNEL_BACKEND)
_COMPILE_GAUGE = metrics_registry().gauge(
    metric_names.KERNEL_NATIVE_COMPILE_SECONDS
)

#: Probe state: (probed, usable, native module, compile seconds).
_probed = False
_usable = False
_native: Optional[ModuleType] = None
_compile_seconds: Optional[float] = None
_warned_unavailable = False
_warned_env = False


def reset_backend_state() -> None:
    """Forget probe results and one-shot warnings (test isolation hook)."""
    global _probed, _usable, _native, _compile_seconds
    global _warned_unavailable, _warned_env
    _probed = False
    _usable = False
    _native = None
    _compile_seconds = None
    _warned_unavailable = False
    _warned_env = False


def _warm_up(native: ModuleType) -> None:
    """Compile all three fixpoints against the production signatures.

    A three-node toy CSR exercises every jitted function once with the
    exact dtypes the engines pass (int64 indptr/indices/frontier,
    float64 expiries, uint64 masks), so the first real sweep never pays
    compilation latency and a broken toolchain fails *here*, inside the
    probe's try block.
    """
    # 0 -> 1 (alive), 0 -> 2 (expired at eff=2.5), 1 -> 2 (alive): the
    # sweep must take two rounds and drop exactly one edge.
    indptr = np.asarray([0, 2, 3, 3], dtype=np.int64)
    indices = np.asarray([1, 2, 2], dtype=np.int64)
    expiries = np.asarray([5.0, 1.0, 5.0], dtype=np.float64)
    frontier = np.asarray([0], dtype=np.int64)
    visit = np.zeros(3, dtype=np.int64)
    visit[0] = 1
    out = np.empty(3, dtype=np.int64)
    count = native.reach_fixpoint(
        indptr, indices, expiries, frontier, visit, np.int64(1),
        2.5, True, out,
    )
    masks = np.zeros(3, dtype=np.uint64)
    masks[0] = np.uint64(1)
    scratch_frontier = np.empty(3, dtype=np.int64)
    scratch_frontier[0] = 0
    contrib = np.empty(3, dtype=np.uint64)
    nxt = np.empty(3, dtype=np.int64)
    in_next = np.zeros(3, dtype=np.bool_)
    native.plane_fixpoint(
        indptr, indices, expiries, masks, scratch_frontier, 1,
        2.5, True, contrib, nxt, in_next,
    )
    masks[:] = 0
    masks[0] = np.uint64(1)
    scratch_frontier[0] = 0
    old = np.empty(3, dtype=np.uint64)
    flips = np.zeros((4, 64), dtype=np.int64)
    rounds = native.plane_level_fixpoint(
        indptr, indices, expiries, masks, scratch_frontier, 1,
        2.5, True, contrib, nxt, old, in_next, flips,
    )
    if count != 3 or int(masks[2]) != 1 or rounds != 2:
        raise RuntimeError("native kernel warm-up produced wrong results")


def native_available() -> bool:
    """Probe (once) whether the compiled backend can actually serve.

    True only when numba imports *and* all three fixpoints compile and
    pass the warm-up check.  The result — and the measured compile time
    — is cached for the life of the process (see
    :func:`reset_backend_state`).
    """
    global _probed, _usable, _native, _compile_seconds
    if _probed:
        return _usable
    _probed = True
    try:
        from repro.kernels import native
    except Exception:
        _usable = False
        return False
    try:
        started = time.perf_counter()
        _warm_up(native)
        elapsed = time.perf_counter() - started
    except Exception:
        _usable = False
        return False
    _native = native
    _compile_seconds = elapsed
    _usable = True
    _COMPILE_GAUGE.set(elapsed)
    return True


def native_compile_seconds() -> Optional[float]:
    """Warm-up (JIT compile) wall time, or ``None`` before/without it."""
    return _compile_seconds


def _warn_once_native_unavailable() -> None:
    global _warned_unavailable
    if _warned_unavailable:
        return
    _warned_unavailable = True
    warnings.warn(
        "kernel backend 'native' requested but unavailable "
        "(numba missing or JIT warm-up failed); serving the python "
        "reference kernel instead — install the [native] extra to "
        "enable compilation",
        RuntimeWarning,
        stacklevel=3,
    )


def resolve_backend(explicit: Optional[str] = None) -> str:
    """The backend a kernel built *now* should run: python or native.

    Precedence: ``explicit`` argument > :data:`BACKEND_ENV` environment
    variable > ``"auto"``.  An unknown explicit value raises
    ``ValueError`` (programmer error); an unknown environment value
    warns once and falls back to ``"auto"`` (operator typo must not take
    the service down).  The resolved identity is recorded in the
    :data:`~repro.obs.names.KERNEL_BACKEND` gauge.
    """
    global _warned_env
    choice = explicit
    if choice is None:
        choice = os.environ.get(BACKEND_ENV) or "auto"
        if choice not in BACKENDS:
            if not _warned_env:
                _warned_env = True
                warnings.warn(
                    f"ignoring unknown {BACKEND_ENV}={choice!r} "
                    f"(expected one of {BACKENDS}); using 'auto'",
                    RuntimeWarning,
                    stacklevel=2,
                )
            choice = "auto"
    elif choice not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {choice!r}; expected one of {BACKENDS}"
        )
    if choice == "native":
        resolved = "native" if native_available() else "python"
        if resolved == "python":
            _warn_once_native_unavailable()
    elif choice == "auto":
        resolved = "native" if native_available() else "python"
    else:
        resolved = "python"
    _BACKEND_GAUGE.set(1.0 if resolved == "native" else 0.0)
    return resolved


# ----------------------------------------------------------------------
# Native sweep wrappers — the only call sites of repro.kernels.native.
# ----------------------------------------------------------------------
def native_reach(
    indptr: np.ndarray,
    indices: np.ndarray,
    expiries: np.ndarray,
    frontier: np.ndarray,
    visit: np.ndarray,
    stamp: int,
    eff: Optional[float],
) -> np.ndarray:
    """Reached ids (seeds included) for a validated, stamped frontier."""
    assert _native is not None
    out = np.empty(visit.shape[0], dtype=np.int64)
    count = _native.reach_fixpoint(
        indptr, indices, expiries, frontier, visit, np.int64(stamp),
        0.0 if eff is None else float(eff), eff is not None, out,
    )
    return out[:count]


def native_plane_masks(
    indptr: np.ndarray,
    indices: np.ndarray,
    expiries: np.ndarray,
    masks: np.ndarray,
    frontier: np.ndarray,
    eff: Optional[float],
) -> None:
    """Run the seeded bit-plane fixpoint in place over ``masks``."""
    assert _native is not None
    num_nodes = masks.shape[0]
    scratch = np.empty(num_nodes, dtype=np.int64)
    scratch[: frontier.shape[0]] = frontier
    contrib = np.empty(num_nodes, dtype=np.uint64)
    nxt = np.empty(num_nodes, dtype=np.int64)
    in_next = np.zeros(num_nodes, dtype=np.bool_)
    _native.plane_fixpoint(
        indptr, indices, expiries, masks, scratch, frontier.shape[0],
        0.0 if eff is None else float(eff), eff is not None,
        contrib, nxt, in_next,
    )


def native_plane_level_flips(
    indptr: np.ndarray,
    indices: np.ndarray,
    expiries: np.ndarray,
    masks: np.ndarray,
    frontier: np.ndarray,
    eff: Optional[float],
) -> np.ndarray:
    """Per-round, per-plane first-reach flip counts (rows = rounds).

    Rounds are exactly the python sweep's while-iterations that changed
    at least one target; the caller rebuilds the level-histogram lists
    (including the seed level and trailing-zero trim) from the rows.
    """
    assert _native is not None
    num_nodes = masks.shape[0]
    scratch = np.empty(num_nodes, dtype=np.int64)
    scratch[: frontier.shape[0]] = frontier
    contrib = np.empty(num_nodes, dtype=np.uint64)
    nxt = np.empty(num_nodes, dtype=np.int64)
    old = np.empty(num_nodes, dtype=np.uint64)
    in_next = np.zeros(num_nodes, dtype=np.bool_)
    # A bit propagates one hop per round, so rounds <= num_nodes.
    flips = np.zeros((num_nodes + 1, 64), dtype=np.int64)
    rounds = _native.plane_level_fixpoint(
        indptr, indices, expiries, masks, scratch, frontier.shape[0],
        0.0 if eff is None else float(eff), eff is not None,
        contrib, nxt, old, in_next, flips,
    )
    return flips[:rounds]
