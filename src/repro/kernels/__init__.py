"""Shared array-level traversal kernels and fold semantics.

One implementation of the time-decayed frontier sweep — forward level
expansion, the 64-wide uint64 bit-plane multi-source sweep (counted,
weighted, and level-histogrammed), and the transpose helper behind
reverse (ancestor) sweeps — that :class:`~repro.tdn.csr.CSRSnapshot`,
:class:`~repro.tdn.csr.DeltaCSR` and the worker-side :class:`~repro.
parallel.plane.PlaneEngine` all adapt over.  See :mod:`repro.kernels.
traversal` for the physics and :mod:`repro.kernels.folds` for the
pluggable accumulation semantics layered on top of it.
"""

from repro.kernels.backend import (
    BACKEND_ENV,
    BACKENDS,
    native_available,
    native_compile_seconds,
    reset_backend_state,
    resolve_backend,
)
from repro.kernels.folds import (
    FOLD_NAMES,
    CountFold,
    Fold,
    HopDiscountFold,
    TimeDecayFold,
    WeightedSumFold,
    hop_discount_sum,
    max_in_expiries,
    resolve_fold,
)
from repro.kernels.instrument import (
    disable_kernel_metrics,
    enable_kernel_metrics,
)
from repro.kernels.traversal import (
    PLANE_WIDTH,
    DictOverlay,
    SweepSampler,
    TraversalKernel,
    build_transpose,
    dense_weight_sum,
    seed_range_error,
    set_sweep_sampler,
)

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "FOLD_NAMES",
    "PLANE_WIDTH",
    "CountFold",
    "DictOverlay",
    "Fold",
    "HopDiscountFold",
    "SweepSampler",
    "TimeDecayFold",
    "TraversalKernel",
    "WeightedSumFold",
    "build_transpose",
    "dense_weight_sum",
    "disable_kernel_metrics",
    "enable_kernel_metrics",
    "hop_discount_sum",
    "max_in_expiries",
    "native_available",
    "native_compile_seconds",
    "reset_backend_state",
    "resolve_backend",
    "seed_range_error",
    "set_sweep_sampler",
]
