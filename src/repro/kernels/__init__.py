"""Shared array-level traversal kernels.

One implementation of the time-decayed frontier sweep — forward level
expansion, the 64-wide uint64 bit-plane multi-source sweep (counted and
weighted), and the transpose helper behind reverse (ancestor) sweeps —
that :class:`~repro.tdn.csr.CSRSnapshot`, :class:`~repro.tdn.csr.
DeltaCSR` and the worker-side :class:`~repro.parallel.plane.PlaneEngine`
all adapt over.  See :mod:`repro.kernels.traversal`.
"""

from repro.kernels.traversal import (
    PLANE_WIDTH,
    DictOverlay,
    TraversalKernel,
    build_transpose,
    dense_weight_sum,
    seed_range_error,
)

__all__ = [
    "PLANE_WIDTH",
    "DictOverlay",
    "TraversalKernel",
    "build_transpose",
    "dense_weight_sum",
    "seed_range_error",
]
