"""``repro.lint``: the repo-specific architecture & concurrency checker.

A custom static analyzer (``python -m repro.lint [paths]``) built on
:mod:`ast` that machine-checks the contracts ARCHITECTURE.md only *states*:
the layer DAG, single-kernel traversal ownership, shared-memory segment
lifecycle, concurrency hazards in the async service, and the determinism
rules behind the bit-identical-to-serial guarantee.

Four pass families, each emitting coded findings:

* ``RPL1xx`` — layer contracts (:mod:`repro.lint.layers`)
* ``RPL2xx`` — shared-memory lifecycle (:mod:`repro.lint.shm`)
* ``RPL3xx`` — concurrency hazards (:mod:`repro.lint.concurrency`)
* ``RPL4xx`` — determinism (:mod:`repro.lint.determinism`)

Findings carry ``file:line``, are suppressible inline with
``# repro-lint: disable=RPLxxx`` (or ``disable-next=`` on the preceding
line) and can be grandfathered in a baseline file that is only ever
allowed to shrink (:mod:`repro.lint.baseline`).  See
``ARCHITECTURE.md`` ("Enforced invariants") for the full error-code
table and the declared layer DAG.
"""

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.findings import CODES, Finding
from repro.lint.runner import lint_paths, lint_source, main

__all__ = [
    "CODES",
    "Finding",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "main",
    "write_baseline",
]
