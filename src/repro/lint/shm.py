"""RPL2xx — shared-memory segment lifecycle.

The parallel plane's ownership discipline (ARCHITECTURE.md): the creator
of a segment is its *sole unlink authority* and must actually reach an
``unlink()`` through a teardown path; attachers only ever ``close()``
their mappings; and nothing outside ``plane.py``'s name-derivation
helpers may spell a segment name, so owner and workers can never drift
on the naming scheme.

* **RPL201** — a scope (class, or bare function) calling
  ``SharedMemory(create=True)`` must contain an ``.unlink()`` call, and a
  class owner must additionally expose a teardown path: a ``close``
  method, ``__del__``, or a ``weakref.finalize`` registration.
* **RPL202** — a scope attaching (``SharedMemory(name=...)`` without
  ``create=True``) must contain a paired ``.close()`` call.
* **RPL203** — string literals that look like segment-name fragments
  (``-hdr``, ``-ip``/``-ix``/``-ex`` data suffixes, or ``-g``/``-w``
  generation/weights stems feeding an f-string hole) outside
  ``repro/parallel/plane.py``.

Scope granularity is the enclosing class when there is one (create in
``__init__``, unlink in ``close`` is the canonical owner shape), else
the enclosing function (probe helpers that create, measure and unlink
inline).
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Tuple

from repro.lint.config import SEGMENT_NAME_OWNER, is_under
from repro.lint.findings import Finding

_SEGMENT_FRAGMENT = re.compile(r"-(hdr|ip|ix|ex)($|[^A-Za-z0-9])")
_SEGMENT_STEM = re.compile(r"-[gw]$")


def check(tree: ast.Module, path: str) -> List[Finding]:
    findings = _check_lifecycle(tree, path)
    if not is_under(path, SEGMENT_NAME_OWNER):
        findings.extend(_check_name_literals(tree, path))
    return findings


# ----------------------------------------------------------------------
# Create/attach lifecycle
# ----------------------------------------------------------------------
def _is_shared_memory_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "SharedMemory"
    if isinstance(func, ast.Attribute):
        return func.attr == "SharedMemory"
    return False


def _is_create(node: ast.Call) -> bool:
    for keyword in node.keywords:
        if keyword.arg == "create":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def _scopes(tree: ast.Module):
    """Yield (scope node, owning class or None) for classes and bare
    functions; methods are folded into their class scope."""
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            yield node, node
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, None


def _calls_method(scope: ast.AST, method: str) -> bool:
    for node in ast.walk(scope):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
        ):
            return True
    return False


def _has_teardown_path(cls: ast.ClassDef) -> bool:
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name in ("close", "__del__", "detach"):
                return True
    # weakref.finalize(...) registration anywhere in the class counts.
    for node in ast.walk(cls):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "finalize"
        ):
            return True
    return False


def _shm_calls(scope: ast.AST) -> List[Tuple[ast.Call, bool]]:
    """(call node, is_create) for every SharedMemory(...) in ``scope``."""
    calls = []
    for node in ast.walk(scope):
        if isinstance(node, ast.Call) and _is_shared_memory_call(node):
            calls.append((node, _is_create(node)))
    return calls


def _check_lifecycle(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for scope, cls in _scopes(tree):
        calls = _shm_calls(scope)
        if not calls:
            continue
        creates = [node for node, is_create in calls if is_create]
        attaches = [node for node, is_create in calls if not is_create]
        scope_name = scope.name
        if creates:
            has_unlink = _calls_method(scope, "unlink")
            has_teardown = _has_teardown_path(cls) if cls is not None else has_unlink
            if not (has_unlink and has_teardown):
                missing = "unlink()" if not has_unlink else (
                    "a teardown path (close()/__del__/weakref.finalize)"
                )
                for node in creates:
                    findings.append(
                        Finding(
                            path,
                            node.lineno,
                            "RPL201",
                            f"{scope_name} creates a SharedMemory segment "
                            f"but has no {missing}; the creator is the "
                            "sole unlink authority and must reach one",
                        )
                    )
        if attaches and not _calls_method(scope, "close"):
            for node in attaches:
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        "RPL202",
                        f"{scope_name} attaches a SharedMemory segment "
                        "but never close()s the mapping",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# Segment-name literals
# ----------------------------------------------------------------------
def _docstring_nodes(tree: ast.Module) -> set:
    ids = set()
    scopes = [tree] + [
        node
        for node in ast.walk(tree)
        if isinstance(node, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for scope in scopes:
        body = scope.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            ids.add(id(body[0].value))
    return ids


def _fragment_hit(text: str, feeds_hole: bool) -> Optional[str]:
    match = _SEGMENT_FRAGMENT.search(text)
    if match is not None:
        return f"-{match.group(1)}"
    if feeds_hole:
        stem = _SEGMENT_STEM.search(text)
        if stem is not None:
            return stem.group(0)
    return None


def _check_name_literals(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    skip = _docstring_nodes(tree)

    def flag(node: ast.AST, fragment: str) -> None:
        findings.append(
            Finding(
                path,
                node.lineno,
                "RPL203",
                f"segment-name fragment {fragment!r} spelled outside "
                f"{SEGMENT_NAME_OWNER}; derive names through its helpers",
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.JoinedStr):
            values = node.values
            for position, value in enumerate(values):
                if not (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                ):
                    continue
                feeds_hole = position + 1 < len(values) and isinstance(
                    values[position + 1], ast.FormattedValue
                )
                fragment = _fragment_hit(value.value, feeds_hole)
                if fragment is not None:
                    flag(node, fragment)
                    break
        elif (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and id(node) not in skip
        ):
            fragment = _fragment_hit(node.value, False)
            if fragment is not None:
                flag(node, fragment)
    return findings
