"""RPL106 — the jitted kernel module's object-freedom contract.

:mod:`repro.kernels.native` exists for exactly one reason: the three
integer fixpoints, compiled with ``@njit(nogil=True)`` so thread-mode
shards overlap on real cores.  Everything that makes that promise true
is checkable shape, and this pass checks it:

* **Every function is jitted.**  An undecorated function in the native
  module would run interpreted, hold the GIL, and silently erase the
  thread-mode speedup the backend advertises.
* **No Python-object operations.**  Dict/set/str constructions,
  f-strings, lambdas, comprehensions over objects and nested closures
  either fail to compile under ``nopython`` mode or — worse — drag the
  function into object mode where the GIL comes back.  The jitted
  bodies own integer/float/bool arrays only; anything richer belongs in
  the :mod:`repro.kernels.backend` wrappers.
* **Only numpy and numba are imported.**  The module's import surface
  is its compile surface; a stray import is how object-mode code
  sneaks in.
* **Only the dispatch layer calls it.**  ``repro/kernels/backend.py``
  owns probing, buffer allocation and the python fallback; any other
  importer would bypass the degrade-never-error policy and crash the
  moment numba is absent.

Like every pass this one is pure AST shape — it runs (and must pass)
on hosts where numba itself cannot even be imported.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.config import (
    NATIVE_DISPATCH_OWNER,
    NATIVE_KERNEL_OWNER,
    is_under,
)
from repro.lint.findings import Finding

#: Imports the native module may carry (its entire compile surface).
_ALLOWED_IMPORTS = ("numpy", "numba", "__future__")

#: Builtin calls that materialize Python objects inside a jitted body.
_OBJECT_BUILTINS = frozenset(
    {"dict", "set", "frozenset", "str", "repr", "format", "print"}
)

#: AST shapes that construct Python objects or capture closures.
_OBJECT_NODES = (
    ast.Dict,
    ast.Set,
    ast.DictComp,
    ast.SetComp,
    ast.GeneratorExp,
    ast.JoinedStr,
    ast.Lambda,
)


def check(tree: ast.Module, path: str) -> List[Finding]:
    if is_under(path, NATIVE_KERNEL_OWNER):
        return _check_native_module(tree, path)
    if is_under(path, NATIVE_DISPATCH_OWNER):
        return []
    return _check_import_ban(tree, path)


# ----------------------------------------------------------------------
# Inside the native module
# ----------------------------------------------------------------------
def _decorator_name(node: ast.expr) -> Optional[str]:
    """Terminal name of a decorator: ``njit``, ``numba.njit(...)`` → njit."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_jitted(node: ast.FunctionDef) -> bool:
    return any(
        _decorator_name(decorator) == "njit"
        for decorator in node.decorator_list
    )


def _check_native_module(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in tree.body:
        if isinstance(node, ast.AsyncFunctionDef):
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "RPL106",
                    f"async function {node.name!r} in the native kernel "
                    "module: jitted fixpoints are plain @njit functions",
                )
            )
        elif isinstance(node, ast.FunctionDef) and not _is_jitted(node):
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "RPL106",
                    f"function {node.name!r} in the native kernel module "
                    "is not @njit-decorated; interpreted helpers belong "
                    f"in {NATIVE_DISPATCH_OWNER}",
                )
            )
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            findings.extend(_check_native_imports(node, path))
        elif isinstance(node, _OBJECT_NODES):
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "RPL106",
                    f"{type(node).__name__} inside the native kernel "
                    "module: Python-object construction breaks nopython "
                    "compilation (or falls back to object mode, "
                    "re-acquiring the GIL)",
                )
            )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _OBJECT_BUILTINS
        ):
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "RPL106",
                    f"call to {node.func.id}() inside the native kernel "
                    "module: Python-object operations stay in "
                    f"{NATIVE_DISPATCH_OWNER}",
                )
            )
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if inner is not node and isinstance(
                    inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    findings.append(
                        Finding(
                            path,
                            inner.lineno,
                            "RPL106",
                            f"nested function {inner.name!r} in the native "
                            "kernel module: closures capture Python cells "
                            "the jit cannot lower",
                        )
                    )
    return findings


def _check_native_imports(node: ast.AST, path: str) -> List[Finding]:
    names: List[str] = []
    if isinstance(node, ast.Import):
        names = [alias.name for alias in node.names]
    elif isinstance(node, ast.ImportFrom) and node.module:
        names = [node.module]
    findings: List[Finding] = []
    for name in names:
        root = name.split(".", 1)[0]
        if root in _ALLOWED_IMPORTS:
            continue
        findings.append(
            Finding(
                path,
                node.lineno,
                "RPL106",
                f"import of {name!r} in the native kernel module; only "
                f"{' / '.join(_ALLOWED_IMPORTS[:2])} may be imported "
                "(the import surface is the compile surface)",
            )
        )
    return findings


# ----------------------------------------------------------------------
# Everywhere else: the import ban
# ----------------------------------------------------------------------
def _imports_native(node: ast.AST) -> bool:
    if isinstance(node, ast.Import):
        return any(
            alias.name == "repro.kernels.native" for alias in node.names
        )
    if isinstance(node, ast.ImportFrom) and node.level == 0:
        if node.module == "repro.kernels.native":
            return True
        if node.module == "repro.kernels":
            return any(alias.name == "native" for alias in node.names)
    return False


def _check_import_ban(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)) and _imports_native(
            node
        ):
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "RPL106",
                    "import of repro.kernels.native outside "
                    f"{NATIVE_DISPATCH_OWNER}: the dispatch layer owns "
                    "probing, buffers and the degrade-to-python fallback",
                )
            )
    return findings
