"""RPL4xx — determinism.

The repo's headline guarantee is bit-identical results across runs and
worker counts (ROADMAP.md).  Two lexical hazards account for every
regression we have had:

* **RPL401** — iterating a set (or dict view) while feeding an
  *order-sensitive* accumulator without an enclosing ``sorted(...)``.
  Float ``+=`` is non-associative and ``PYTHONHASHSEED`` varies set
  order across processes, so the same inputs can fold to different
  sums.  Order-*insensitive* sinks (``set.add``/``update``, dict
  stores) are deliberately not flagged — they are how commutative
  reductions should be written.  Scope: ``kernels/``, ``influence/``,
  ``parallel/`` (the bit-identical path).
* **RPL402** — direct ``random`` / ``numpy.random`` use anywhere in the
  ``repro`` package outside ``repro/utils/rng.py``.  All library
  randomness flows through the seeded constructors there so experiments
  replay exactly.  Files outside the package (examples, tests) may seed
  their own demo RNGs — they are governed by RPL105, not RPL402.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.lint.config import (
    DETERMINISM_SCOPE,
    RNG_OWNER,
    SET_ANNOTATIONS,
    SET_RETURNING_CALLS,
    is_under,
    module_of,
)
from repro.lint.findings import Finding

_DICT_VIEWS = ("keys", "values", "items")
_ORDER_SENSITIVE_METHODS = ("append", "extend", "insert")
_FOLDING_CALLS = ("sum", "list", "tuple")


def check(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    if any(is_under(path, fragment) for fragment in DETERMINISM_SCOPE):
        findings.extend(_check_unordered_folds(tree, path))
    if module_of(path) is not None and not is_under(path, RNG_OWNER):
        findings.extend(_check_rng_use(tree, path))
    return findings


# ----------------------------------------------------------------------
# RPL401: unordered iteration into order-sensitive sinks
# ----------------------------------------------------------------------
def _annotation_is_setlike(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):  # FrozenSet[NodeId] etc.
        node = node.value
    if isinstance(node, ast.Name):
        return node.id in SET_ANNOTATIONS
    if isinstance(node, ast.Attribute):
        return node.attr in SET_ANNOTATIONS
    return False


def _setlike_names(tree: ast.Module) -> Set[str]:
    """Names the file gives set-like values or annotations.

    Granularity is the file, so a name reused across functions could
    collide; to stay precise, a name counts only when every assignment
    and annotation it receives in the file is set-like — conflicting
    evidence excludes it (a lint must err toward silence here).
    """
    setlike: Set[str] = set()
    conflicted: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            arguments = node.args
            for arg in (
                arguments.posonlyargs
                + arguments.args
                + arguments.kwonlyargs
            ):
                if _annotation_is_setlike(arg.annotation):
                    setlike.add(arg.arg)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                bucket = (
                    setlike
                    if _annotation_is_setlike(node.annotation)
                    else conflicted
                )
                bucket.add(node.target.id)
        elif isinstance(node, ast.Assign):
            # x = set(...) / x = frozenset(...) / x = {literal, ...}
            value = node.value
            is_set_value = isinstance(value, (ast.Set, ast.SetComp)) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("set", "frozenset")
            )
            bucket = setlike if is_set_value else conflicted
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bucket.add(target.id)
    return setlike - conflicted


def _is_setlike_iter(node: ast.expr, setlike: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in setlike
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        return _is_setlike_iter(node.left, setlike) or _is_setlike_iter(
            node.right, setlike
        )
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in ("set", "frozenset"):
            return True
        if name in SET_RETURNING_CALLS:
            return True
        if name in _DICT_VIEWS and not node.args:
            return True
    return False


def _is_sorted_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "sorted"
    )


def _int_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, int)


def _order_sensitive_sink(loop: ast.For) -> Optional[ast.AST]:
    """First order-sensitive accumulation in the loop body, if any."""
    for node in ast.walk(loop):
        if node is loop:
            continue
        if isinstance(node, ast.AugAssign) and not _int_constant(node.value):
            return node
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return node
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _ORDER_SENSITIVE_METHODS
        ):
            return node
    return None


def _flag(path: str, line: int, detail: str) -> Finding:
    return Finding(
        path,
        line,
        "RPL401",
        f"{detail}: set order varies with PYTHONHASHSEED and float "
        "accumulation is order-sensitive; wrap the iterable in "
        "sorted(...) with a total order",
    )


def _check_unordered_folds(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    setlike = _setlike_names(tree)

    for node in ast.walk(tree):
        if isinstance(node, ast.For):
            if _is_sorted_call(node.iter):
                continue
            if not _is_setlike_iter(node.iter, setlike):
                continue
            sink = _order_sensitive_sink(node)
            if sink is not None:
                findings.append(
                    _flag(
                        path,
                        node.lineno,
                        "loop over an unordered set/dict view feeds an "
                        "order-sensitive accumulator",
                    )
                )
        elif isinstance(node, ast.ListComp):
            for generator in node.generators:
                if not _is_sorted_call(generator.iter) and _is_setlike_iter(
                    generator.iter, setlike
                ):
                    findings.append(
                        _flag(
                            path,
                            node.lineno,
                            "list comprehension materialises an unordered "
                            "set/dict view in hash order",
                        )
                    )
                    break
        elif isinstance(node, ast.Call):
            func = node.func
            if not (
                isinstance(func, ast.Name) and func.id in _FOLDING_CALLS
            ):
                continue
            for arg in node.args:
                if not isinstance(arg, ast.GeneratorExp):
                    continue
                for generator in arg.generators:
                    if not _is_sorted_call(generator.iter) and _is_setlike_iter(
                        generator.iter, setlike
                    ):
                        findings.append(
                            _flag(
                                path,
                                node.lineno,
                                f"{func.id}(...) folds an unordered "
                                "set/dict view",
                            )
                        )
                        break
    return findings


# ----------------------------------------------------------------------
# RPL402: randomness outside the rng owner
# ----------------------------------------------------------------------
def _check_rng_use(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []

    def flag(node: ast.AST, what: str) -> None:
        findings.append(
            Finding(
                path,
                node.lineno,
                "RPL402",
                f"{what} outside {RNG_OWNER}: all randomness flows "
                "through the seeded constructors there",
            )
        )

    numpy_aliases: Set[str] = {"numpy", "np"}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("numpy.random"):
                    flag(node, f"import of {alias.name}")
                elif alias.name == "numpy" and alias.asname:
                    numpy_aliases.add(alias.asname)
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            module = node.module or ""
            if module == "random" or module.startswith("numpy.random"):
                flag(node, f"import from {module}")
            elif module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        flag(node, "import of numpy.random")
        elif isinstance(node, ast.Attribute) and node.attr == "random":
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in numpy_aliases
            ):
                flag(node, "numpy.random access")
    return findings
