"""The declared architecture contract the passes check against.

This module is *data*: the layer DAG of ``src/repro``, the ownership
files for traversal loops / segment names / randomness, and the scopes
the determinism pass covers.  ARCHITECTURE.md documents the same DAG in
prose; changing the architecture means changing both, deliberately, in
one review.
"""

from __future__ import annotations

from typing import Optional, Tuple

#: The layer DAG, as "module prefix -> rank".  A module may import only
#: modules of *strictly lower* rank (plus its own package).  Equal-rank
#: prefixes are independent siblings — importing across them is exactly
#: the cross-layer drift the pass exists to stop.  Longest prefix wins,
#: so the bare ``repro`` entry only catches the root package itself.
LAYERS: Tuple[Tuple[str, int], ...] = (
    ("repro.errors", 0),
    ("repro.utils", 0),
    ("repro.obs", 0),
    ("repro.kernels", 1),
    ("repro.tdn", 2),
    ("repro.influence", 3),
    ("repro.submodular", 3),
    ("repro.core", 4),
    ("repro.baselines", 5),
    ("repro.datasets", 5),
    ("repro.analysis", 5),
    ("repro.parallel", 6),
    ("repro.lint", 6),
    ("repro.persistence", 7),
    ("repro.experiments", 7),
    ("repro.track", 8),
    ("repro.api", 9),
    ("repro", 10),
)

#: Modules user-facing code (examples, integration tests) may import —
#: the compatibility surface.  Everything else is an internal layer and
#: RPL105 territory.  Exact module names, not prefixes: ``repro.api``
#: does not bless ``repro.api.something_private``.
FACADE_MODULES = frozenset({"repro", "repro.api", "repro.errors"})

#: Path fragments whose files must import through the facade only.
FACADE_ONLY_SCOPE = ("examples/", "tests/integration/")

#: The one file allowed to contain array-level traversal loops.
TRAVERSAL_OWNER = "repro/kernels/traversal.py"

#: The jitted twin of the traversal owner: the only *other* file allowed
#: to contain traversal-loop shapes, and the subject of RPL106 (every
#: function ``@njit``-decorated, no Python-object operations).
NATIVE_KERNEL_OWNER = "repro/kernels/native.py"

#: The one file allowed to import :mod:`repro.kernels.native` — the
#: dispatch layer that owns buffer allocation, probing and fallback.
NATIVE_DISPATCH_OWNER = "repro/kernels/backend.py"

#: Every file allowed to hold traversal loops (reference + jitted twin).
TRAVERSAL_OWNERS = (TRAVERSAL_OWNER, NATIVE_KERNEL_OWNER)

#: Names whose subscripted use inside one loop marks a traversal loop.
TRAVERSAL_TRIPLE = ("indptr", "indices", "expiries")

#: The one file allowed to derive shared-memory segment names.
SEGMENT_NAME_OWNER = "repro/parallel/plane.py"

#: The one file allowed to touch ``random`` / ``numpy.random`` directly.
RNG_OWNER = "repro/utils/rng.py"

#: Package prefixes (as path fragments) the determinism pass covers:
#: everything on the bit-identical-results path.
DETERMINISM_SCOPE = ("repro/kernels/", "repro/influence/", "repro/parallel/")

#: Repo functions known to return sets — iteration over their result is
#: set iteration even though the AST only shows a call.
SET_RETURNING_CALLS = frozenset(
    {
        "reachable_set",
        "ancestors",
        "reachable_ids",
        "ancestor_ids",
        "touched_cone_ids",
        "reachable_ids_many",
        "node_set",
        "reach_scalar",
        "reach_vector",
    }
)

#: Type-annotation names treated as set-like for parameters/variables.
SET_ANNOTATIONS = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)


def module_of(path: str) -> Optional[str]:
    """Dotted module name of a source path, or ``None`` outside ``repro``.

    Works from the *last* ``repro`` path component so fixture trees laid
    out as ``<tmp>/src/repro/...`` resolve exactly like the real tree.
    """
    parts = path.replace("\\", "/").split("/")
    if "repro" not in parts:
        return None
    start = len(parts) - 1 - parts[::-1].index("repro")
    tail = parts[start:]
    if tail[-1].endswith(".py"):
        tail[-1] = tail[-1][: -len(".py")]
    if tail[-1] == "__init__":
        tail = tail[:-1]
    return ".".join(tail)


def _claims(prefix: str, module: str) -> bool:
    """Whether a declared prefix claims ``module``.

    The bare ``repro`` entry matches only the root package itself — were
    it a prefix match, every unplaced ``repro.*`` module would silently
    inherit its rank and RPL104 could never fire.
    """
    if module == prefix:
        return True
    return prefix != "repro" and module.startswith(prefix + ".")


def layer_rank(module: str) -> Optional[int]:
    """Rank of ``module`` under the declared DAG (longest prefix wins)."""
    best: Optional[int] = None
    best_len = -1
    for prefix, rank in LAYERS:
        if _claims(prefix, module) and len(prefix) > best_len:
            best, best_len = rank, len(prefix)
    return best


def layer_prefix(module: str) -> Optional[str]:
    """The declared prefix that claims ``module`` (longest match)."""
    best: Optional[str] = None
    for prefix, _ in LAYERS:
        if _claims(prefix, module):
            if best is None or len(prefix) > len(best):
                best = prefix
    return best


def is_under(path: str, fragment: str) -> bool:
    """Whether ``path`` (any OS separators) contains ``fragment``."""
    return fragment in path.replace("\\", "/")
