"""RPL5xx — observability.

The metrics layer (``repro.obs``) pre-registers every instrument in a
constant catalog (``repro/obs/names.py``) so exporters can emit complete
families and worker-delta merging can trust the name set.  Two lexical
hazards would quietly undo that design:

* **RPL501** — a registry lookup (``.counter(...)`` / ``.gauge(...)`` /
  ``.histogram(...)``) whose name argument is not an UPPER_CASE
  module-level constant (a bare ``NAME`` or ``metric_names.NAME``
  attribute).  Inline strings and f-strings create unbounded series
  cardinality and bypass the catalog's KeyError guard; computed names
  cannot be cross-checked against the catalog by reading the call site.
  The same code also covers ``.register(...)`` calls inside function
  bodies (registration belongs at import time — a runtime ``register``
  means the catalog is incomplete) and, inside the traversal kernel
  owner, any direct instrument call (``inc`` / ``observe`` / ``set`` /
  lookup) inside a ``for``/``while`` loop — kernel inner loops may only
  feed the sampled ``.record`` hook, which is a single branch when
  disabled (the < 3 % overhead gate in ``bench_substrate_micro``
  depends on it).

Scope: modules of the ``repro`` package, excluding ``repro/obs/`` itself
(the registry's own implementation necessarily handles names as
variables).
"""

from __future__ import annotations

import ast
from typing import List

from repro.lint.config import TRAVERSAL_OWNER, is_under, module_of
from repro.lint.findings import Finding

__all__ = ["check"]

#: Registry lookup methods whose first argument is a metric name.
_LOOKUP_METHODS = ("counter", "gauge", "histogram")

#: Instrument/registry methods forbidden inside traversal-kernel loops.
_LOOP_FORBIDDEN = ("inc", "observe", "set", "counter", "gauge", "histogram")

_OBS_OWNER = "repro/obs/"


def check(tree: ast.Module, path: str) -> List[Finding]:
    if module_of(path) is None or is_under(path, _OBS_OWNER):
        return []
    findings: List[Finding] = []
    findings.extend(_check_constant_names(tree, path))
    findings.extend(_check_runtime_registration(tree, path))
    if is_under(path, TRAVERSAL_OWNER):
        findings.extend(_check_traversal_loops(tree, path))
    return findings


def _flag(path: str, node: ast.AST, detail: str) -> Finding:
    return Finding(path, node.lineno, "RPL501", detail)


def _is_constant_name(node: ast.expr) -> bool:
    """UPPER_CASE bare name or ``module.UPPER_CASE`` attribute."""
    if isinstance(node, ast.Name):
        return node.id.isupper()
    if isinstance(node, ast.Attribute):
        return node.attr.isupper()
    return False


# ----------------------------------------------------------------------
# metric names must be module-level constants
# ----------------------------------------------------------------------
def _check_constant_names(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _LOOKUP_METHODS
            and node.args
        ):
            continue
        if _is_constant_name(node.args[0]):
            continue
        findings.append(
            _flag(
                path,
                node,
                f".{node.func.attr}(...) called with a non-constant metric "
                "name; use an UPPER_CASE constant from repro/obs/names.py "
                "(inline or computed names bypass the pre-registered "
                "catalog and create unbounded series)",
            )
        )
    return findings


# ----------------------------------------------------------------------
# registration happens at import time, not inside functions
# ----------------------------------------------------------------------
def _check_runtime_registration(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(outer):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "register"
                and node.args
            ):
                findings.append(
                    _flag(
                        path,
                        node,
                        ".register(...) inside a function body; metrics "
                        "are registered at import time via the constant "
                        "catalog so exporters always see the full family "
                        "set",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# traversal kernel loops may only touch the sampled hook
# ----------------------------------------------------------------------
def _check_traversal_loops(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for loop in ast.walk(tree):
        if not isinstance(loop, (ast.For, ast.While)):
            continue
        for node in ast.walk(loop):
            if node is loop:
                continue
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _LOOP_FORBIDDEN
            ):
                findings.append(
                    _flag(
                        path,
                        node,
                        f"direct instrument call .{node.func.attr}(...) "
                        "inside a traversal-kernel loop; kernel inner "
                        "loops feed the sampled SweepSampler.record hook "
                        "only (one no-op branch when disabled — the "
                        "bench overhead gate depends on it)",
                    )
                )
    return findings
