"""Finding records and the error-code registry.

Every pass emits :class:`Finding` instances.  The code table below is the
single source of truth — ARCHITECTURE.md's "Enforced invariants" section
mirrors it, the fixture test suite asserts every code both fires and
suppresses, and ``python -m repro.lint --list-codes`` prints it.
"""

from __future__ import annotations

from dataclasses import dataclass

#: code -> one-line description shown by ``--list-codes`` and the docs.
CODES = {
    # -- RPL1xx: layer contracts ---------------------------------------
    "RPL101": (
        "module-level import violates the layer DAG "
        "(upward or cross-layer dependency)"
    ),
    "RPL102": (
        "function-scoped import violates the layer DAG (a deliberate "
        "injection seam must carry a pragma explaining itself)"
    ),
    "RPL103": (
        "traversal-loop shape (loop indexing an indptr/indices/expiries "
        "triple) outside repro/kernels/traversal.py"
    ),
    "RPL104": "import of a repro module not assigned to any declared layer",
    "RPL105": (
        "import of an internal repro layer from facade-only code "
        "(examples/, tests/integration/); import repro, repro.api or "
        "repro.errors instead"
    ),
    "RPL106": (
        "native kernel contract breach: a function in "
        "repro/kernels/native.py without @njit, a Python-object "
        "operation (dict/set/str/f-string/closure) inside it, or an "
        "import of repro.kernels.native outside the "
        "repro/kernels/backend.py dispatch layer"
    ),
    # -- RPL2xx: shared-memory lifecycle -------------------------------
    "RPL201": (
        "SharedMemory(create=True) with no unlink() reachable through an "
        "owner teardown path (close()/__del__/finalizer) in the same scope"
    ),
    "RPL202": "SharedMemory attach with no paired close() in the same scope",
    "RPL203": (
        "raw shared-memory segment-name literal outside plane.py's "
        "name-derivation helpers"
    ),
    # -- RPL3xx: concurrency hazards -----------------------------------
    "RPL301": "blocking call inside an async def body",
    "RPL302": "fork multiprocessing context (the pool is spawn-only by design)",
    "RPL303": (
        "write to an array attribute marked immutable-after-publish "
        "(@published_plane) outside its declared writer methods"
    ),
    "RPL304": (
        "broad except swallows the exception in repro/parallel/ "
        "(handler must re-raise, record a DegradationReason, or carry a "
        "pragma — silent swallows hide worker faults)"
    ),
    # -- RPL4xx: determinism -------------------------------------------
    "RPL401": (
        "iteration over a set/dict feeding order-sensitive accumulation "
        "without an enclosing sorted(...)"
    ),
    "RPL402": "direct random / numpy.random use outside repro/utils/rng.py",
    # -- RPL5xx: observability -------------------------------------------
    "RPL501": (
        "non-constant metric name at a registry call, runtime .register(), "
        "or a direct instrument call inside a traversal-kernel loop "
        "(kernel loops feed the sampled SweepSampler.record hook only)"
    ),
    # -- internal -------------------------------------------------------
    "RPL001": "file does not parse",
}


@dataclass(frozen=True, order=True)
class Finding:
    """One coded finding at ``path:line``."""

    path: str
    line: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"

    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline file.

        Keyed on (code, path, message) so ordinary line churn above a
        grandfathered finding does not invalidate its baseline entry,
        while a second identical finding in the same file is still a new
        finding.
        """
        return f"{self.code}|{self.path}|{self.message}"
