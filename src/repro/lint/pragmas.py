"""Inline suppression pragmas.

Two spellings, mirroring the common linter idioms while staying greppable
as one token:

* trailing, same line as the finding::

      from repro.parallel.executor import X  # repro-lint: disable=RPL102

* on the line *before* the finding (for statements already at the
  88-column limit)::

      # repro-lint: disable-next=RPL102
      from repro.parallel.executor import X

Several codes may be listed, comma separated.  Pragmas are parsed from
the raw source (comments never reach the AST), so they work on any line
a finding can point at.
"""

from __future__ import annotations

import re
from typing import Dict, Set

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-next)?)\s*=\s*"
    r"(?P<codes>RPL\d{3}(?:\s*,\s*RPL\d{3})*)"
)


def suppressions(source: str) -> Dict[int, Set[str]]:
    """Map of 1-based line number -> codes suppressed on that line."""
    table: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        codes = {code.strip() for code in match.group("codes").split(",")}
        target = lineno + 1 if match.group("kind") == "disable-next" else lineno
        table.setdefault(target, set()).update(codes)
    return table


def is_suppressed(table: Dict[int, Set[str]], line: int, code: str) -> bool:
    return code in table.get(line, ())
