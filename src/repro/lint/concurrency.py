"""RPL3xx — concurrency hazards.

* **RPL301** — blocking calls inside ``async def`` bodies.  The ingest
  service promises the event loop never stalls on worker progress, so
  ``time.sleep``, synchronous file IO (bare ``open``), ``subprocess``
  calls, ``.acquire()`` without a timeout, and ``.shutdown()`` /
  ``.join()`` without ``wait=False``/timeout are all flagged when they
  appear lexically inside a coroutine (nested ``def``s are excluded —
  they run wherever they are called from).
* **RPL302** — any request for a fork multiprocessing context
  (``get_context("fork")`` / ``set_start_method("fork")``).  The worker
  pool is spawn-only by design: forking a process that holds the shared
  plane duplicates mapping refcounts and lock state.
* **RPL303** — writes to array attributes declared immutable-after-
  publish via the ``@published_plane`` marker
  (``repro.parallel.markers``), outside the writer methods each marker
  declares.  The registry is built from the *AST* of every linted file
  first (two-phase), so the linter never imports the code it checks.
* **RPL304** — broad exception swallowing inside ``repro/parallel/``.
  A bare ``except:`` or ``except Exception/BaseException:`` whose body
  neither re-raises, records a :class:`DegradationReason` (directly or
  via a ``degrade``/``note_incident`` call), nor *uses* the bound
  exception value hides exactly the worker faults the supervised
  recovery layer exists to surface.  Narrow exception types are never
  flagged; deliberate best-effort teardown swallows carry a pragma.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set

from repro.lint.config import is_under
from repro.lint.findings import Finding

#: class name -> attr -> writer-method names, built by collect_registry.
Registry = Dict[str, Dict[str, FrozenSet[str]]]

_BLOCKING_MODULES = {"subprocess"}
_SLEEP_MODULES = {"time"}


def check(
    tree: ast.Module, path: str, registry: Optional[Registry] = None
) -> List[Finding]:
    findings = _check_async_blocking(tree, path)
    findings.extend(_check_fork_context(tree, path))
    findings.extend(_check_swallowed_exceptions(tree, path))
    if registry:
        findings.extend(_check_published_writes(tree, path, registry))
    return findings


# ----------------------------------------------------------------------
# Registry of @published_plane declarations (phase one)
# ----------------------------------------------------------------------
def collect_registry(tree: ast.Module) -> Registry:
    """Extract ``@published_plane(...)`` declarations from one module."""
    registry: Registry = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for decorator in node.decorator_list:
            if not isinstance(decorator, ast.Call):
                continue
            func = decorator.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name != "published_plane":
                continue
            attrs = [
                arg.value
                for arg in decorator.args
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
            ]
            writers = frozenset(["__init__"])
            for keyword in decorator.keywords:
                if keyword.arg == "writers":
                    value = keyword.value
                    if isinstance(value, (ast.Tuple, ast.List)):
                        writers = frozenset(
                            element.value
                            for element in value.elts
                            if isinstance(element, ast.Constant)
                            and isinstance(element.value, str)
                        )
            table = registry.setdefault(node.name, {})
            for attr in attrs:
                table[attr] = writers
    return registry


def merge_registries(registries: List[Registry]) -> Registry:
    merged: Registry = {}
    for registry in registries:
        for cls, table in registry.items():
            merged.setdefault(cls, {}).update(table)
    return merged


# ----------------------------------------------------------------------
# RPL301: blocking calls in coroutines
# ----------------------------------------------------------------------
def _own_body(func: ast.AST):
    """Walk a function body without descending into nested defs."""
    stack = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


def _blocking_reason(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "synchronous file IO (open)"
        if func.id == "sleep":
            return "time.sleep"
        return None
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    base_name = base.id if isinstance(base, ast.Name) else None
    if func.attr == "sleep" and base_name in _SLEEP_MODULES:
        return "time.sleep"
    if base_name in _BLOCKING_MODULES:
        return f"subprocess.{func.attr}"
    if func.attr == "acquire":
        if _keyword(call, "timeout") is None and not call.args:
            return "lock acquire without timeout"
        return None
    if func.attr in ("shutdown", "join"):
        wait = _keyword(call, "wait")
        if isinstance(wait, ast.Constant) and wait.value is False:
            return None
        if func.attr == "join" and (call.args or _keyword(call, "timeout")):
            return None
        return f"blocking .{func.attr}()"
    return None


def _check_async_blocking(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.AsyncFunctionDef):
            continue
        body = list(_own_body(node))
        # An awaited call is a coroutine (asyncio.Queue.join,
        # asyncio.Lock.acquire, ...) — by definition not a synchronous
        # block, whatever its method name looks like.
        awaited = {id(sub.value) for sub in body if isinstance(sub, ast.Await)}
        for sub in body:
            if not isinstance(sub, ast.Call) or id(sub) in awaited:
                continue
            reason = _blocking_reason(sub)
            if reason is not None:
                findings.append(
                    Finding(
                        path,
                        sub.lineno,
                        "RPL301",
                        f"{reason} inside async def {node.name}: "
                        "blocks the event loop; use "
                        "loop.run_in_executor or an async equivalent",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# RPL302: fork context
# ----------------------------------------------------------------------
def _check_fork_context(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name not in ("get_context", "set_start_method"):
            continue
        for arg in list(node.args) + [
            keyword.value for keyword in node.keywords
        ]:
            if (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)
                and arg.value.startswith("fork")
            ):
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        "RPL302",
                        f"{name}({arg.value!r}): the worker pool is "
                        "spawn-only by design (forking duplicates shared-"
                        "plane mappings and lock state)",
                    )
                )
    return findings


# ----------------------------------------------------------------------
# RPL304: swallowed broad excepts in the parallel stack
# ----------------------------------------------------------------------
#: Path fragment the rule covers — the supervised-recovery stack, where a
#: silent swallow hides exactly the faults the ladder exists to surface.
_SWALLOW_SCOPE = "repro/parallel/"
_BROAD_EXCEPTIONS = {"Exception", "BaseException"}
#: Call-name substrings that count as recording the fault.
_RECORDING_CALLS = ("degrade", "note_incident")


def _exception_names(expr: Optional[ast.expr]) -> List[Optional[str]]:
    """Flat exception-type names a handler catches (``None`` = bare)."""
    if expr is None:
        return [None]
    if isinstance(expr, ast.Tuple):
        names: List[Optional[str]] = []
        for element in expr.elts:
            names.extend(_exception_names(element))
        return names
    if isinstance(expr, ast.Name):
        return [expr.id]
    if isinstance(expr, ast.Attribute):
        return [expr.attr]
    return ["<unknown>"]


def _broad_name(handler: ast.ExceptHandler) -> Optional[str]:
    """The broad clause a handler catches, rendered, or ``None`` if narrow."""
    for name in _exception_names(handler.type):
        if name is None:
            return "bare except:"
        if name in _BROAD_EXCEPTIONS:
            return f"except {name}:"
    return None


def _call_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _handler_recovers(handler: ast.ExceptHandler) -> bool:
    """Whether the handler's own body re-raises or records the fault.

    Counts: any ``raise``, any reference to ``DegradationReason``, any
    call whose name mentions ``degrade``/``note_incident``, or a read of
    the bound exception variable (``as exc`` that is then *used* — e.g.
    stashed on ``self._failure`` or logged — is surfacing, not
    swallowing).  Nested ``def``s are excluded: code in them runs later,
    from somewhere else, and does not handle *this* exception.
    """
    bound = handler.name
    stack: List[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Name):
            if node.id == "DegradationReason":
                return True
            if (
                bound is not None
                and node.id == bound
                and isinstance(node.ctx, ast.Load)
            ):
                return True
        if isinstance(node, ast.Attribute) and node.attr == "DegradationReason":
            return True
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name is not None and any(
                marker in name for marker in _RECORDING_CALLS
            ):
                return True
        stack.extend(ast.iter_child_nodes(node))
    return False


def _check_swallowed_exceptions(tree: ast.Module, path: str) -> List[Finding]:
    if not is_under(path, _SWALLOW_SCOPE):
        return []
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        broad = _broad_name(node)
        if broad is None or _handler_recovers(node):
            continue
        findings.append(
            Finding(
                path,
                node.lineno,
                "RPL304",
                f"{broad} swallows the exception in the parallel stack; "
                "re-raise, record a DegradationReason "
                "(degrade()/note_incident()), use the bound exception, or "
                "carry a pragma explaining the deliberate swallow",
            )
        )
    return findings


# ----------------------------------------------------------------------
# RPL303: writes to published planes
# ----------------------------------------------------------------------
def _write_target_attr(target: ast.expr) -> Optional[ast.Attribute]:
    """The Attribute being written, for ``x.a = v`` or ``x.a[i] = v``."""
    if isinstance(target, ast.Attribute):
        return target
    if isinstance(target, ast.Subscript) and isinstance(target.value, ast.Attribute):
        return target.value
    return None


def _assignment_targets(node: ast.AST) -> List[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


def _check_published_writes(
    tree: ast.Module, path: str, registry: Registry
) -> List[Finding]:
    findings: List[Finding] = []
    # Every attr published by any class, with the union of its writers —
    # used for writes through arbitrary receivers (engine.indptr[...] = v).
    attr_writers: Dict[str, Set[str]] = {}
    for table in registry.values():
        for attr, writers in table.items():
            attr_writers.setdefault(attr, set()).update(writers)

    def visit(node: ast.AST, cls: Optional[str], method: Optional[str]):
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                visit(child, node.name, None)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in node.body:
                visit(child, cls, node.name)
            return
        for target in _assignment_targets(node):
            attribute = _write_target_attr(target)
            if attribute is None:
                continue
            attr = attribute.attr
            receiver = attribute.value
            is_self = isinstance(receiver, ast.Name) and receiver.id == "self"
            if is_self and cls in registry and attr in registry[cls]:
                allowed = registry[cls][attr]
            elif not is_self and attr in attr_writers:
                allowed = attr_writers[attr]
            else:
                continue
            if method not in allowed:
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        "RPL303",
                        f"write to published-plane attribute {attr!r} "
                        f"outside its declared writers "
                        f"({', '.join(sorted(allowed))}): planes are "
                        "immutable after publish",
                    )
                )
        for child in ast.iter_child_nodes(node):
            visit(child, cls, method)

    for node in tree.body:
        visit(node, None, None)
    return findings
