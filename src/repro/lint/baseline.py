"""Baseline file: grandfathered findings, shrink-only.

The baseline holds one :meth:`Finding.fingerprint` per line
(``code|path|message`` — no line number, so unrelated churn above a
finding does not invalidate its entry).  ``#`` lines are comments; every
deliberate entry is expected to carry one explaining *why* it is
grandfathered.

Two hard properties the runner enforces:

* a finding whose fingerprint is in the baseline is suppressed;
* a baseline entry no fresh finding matches is **stale** and itself an
  error — the file can only shrink, never silently rot.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Set

from repro.lint.findings import Finding

_HEADER = """\
# repro-lint baseline — grandfathered findings, one fingerprint per line.
# Format: CODE|path|message   (line numbers deliberately excluded)
# This file may only shrink: stale entries are errors, new findings are
# never added here without a comment justifying the exception.
"""


def load_baseline(path: str) -> Set[str]:
    """Fingerprints in the baseline file; empty set if it is absent."""
    file = Path(path)
    if not file.exists():
        return set()
    entries: Set[str] = set()
    for line in file.read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            entries.add(stripped)
    return entries


def write_baseline(path: str, findings: Iterable[Finding]) -> None:
    fingerprints = sorted({finding.fingerprint() for finding in findings})
    body = "".join(fingerprint + "\n" for fingerprint in fingerprints)
    Path(path).write_text(_HEADER + body, encoding="utf-8")


def partition(
    findings: List[Finding], baseline: Set[str]
) -> "tuple[List[Finding], List[Finding], List[str]]":
    """Split into (new, grandfathered, stale-baseline-entries)."""
    new: List[Finding] = []
    grandfathered: List[Finding] = []
    seen: Set[str] = set()
    for finding in findings:
        fingerprint = finding.fingerprint()
        if fingerprint in baseline:
            grandfathered.append(finding)
            seen.add(fingerprint)
        else:
            new.append(finding)
    stale = sorted(baseline - seen)
    return new, grandfathered, stale
