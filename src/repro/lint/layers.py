"""RPL1xx — layer contracts.

Two rules:

* **Layer DAG** (RPL101/RPL102/RPL104): every intra-``repro`` import must
  point *strictly downward* in the declared DAG (:data:`repro.lint.
  config.LAYERS`).  Imports inside the importer's own declared prefix are
  free.  Module-level violations are RPL101; function-scoped (lazy)
  violations are RPL102 — the same contract, split out so the deliberate
  dependency-injection seams (an oracle lazily constructing its sharded
  executor) are visibly pragma'd rather than silently tolerated.  An
  import of a repro module no layer claims is RPL104: new packages must
  be placed in the DAG before anything may import them.

* **Traversal ownership** (RPL103): the single-kernel property.  Any
  loop whose body subscripts two or more members of the
  ``indptr``/``indices``/``expiries`` triple is a frontier-traversal
  shape, and only the declared owners may contain those: the reference
  kernel (``repro/kernels/traversal.py``) and its jitted twin
  (``repro/kernels/native.py``, itself policed by RPL106).  Engines
  adapt the kernel; they do not re-grow private sweeps.

* **Facade-only imports** (RPL105): files under the declared facade-only
  scopes (``examples/``, ``tests/integration/``) may import only the
  compatibility surface (:data:`repro.lint.config.FACADE_MODULES`).
  These trees are the library's *user-facing* code; the moment an
  example reaches into ``repro.tdn`` or ``repro.parallel`` it starts
  documenting internals as API.  Keyed on *path* rather than module
  name — facade-only files live outside the ``repro`` package, so the
  layer DAG cannot see them.  Pragma-able like every other code for the
  rare test that deliberately probes an internal seam.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.lint.config import (
    FACADE_MODULES,
    FACADE_ONLY_SCOPE,
    TRAVERSAL_OWNERS,
    TRAVERSAL_TRIPLE,
    is_under,
    layer_prefix,
    layer_rank,
    module_of,
)
from repro.lint.findings import Finding


def check(tree: ast.Module, path: str) -> List[Finding]:
    findings = _check_imports(tree, path)
    findings.extend(_check_traversal_ownership(tree, path))
    findings.extend(_check_facade_only(tree, path))
    return findings


# ----------------------------------------------------------------------
# Layer DAG
# ----------------------------------------------------------------------
def _imported_repro_modules(node: ast.AST) -> List[str]:
    """Dotted repro module names one import statement pulls in."""
    names: List[str] = []
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.name == "repro" or alias.name.startswith("repro."):
                names.append(alias.name)
    elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
        if node.module == "repro" or node.module.startswith("repro."):
            names.append(node.module)
    return names


def _check_imports(tree: ast.Module, path: str) -> List[Finding]:
    importer = module_of(path)
    if importer is None:
        return []
    importer_rank = layer_rank(importer)
    importer_prefix = layer_prefix(importer)
    if importer_rank is None:
        return []  # the module itself is unplaced; its importers get RPL104
    findings: List[Finding] = []
    function_scoped = _function_scoped_nodes(tree)
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        lazy = id(node) in function_scoped
        for imported in _imported_repro_modules(node):
            target_prefix = layer_prefix(imported)
            if target_prefix is None:
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        "RPL104",
                        f"import of {imported!r}, which no declared layer "
                        "claims; add it to repro.lint.config.LAYERS first",
                    )
                )
                continue
            if target_prefix == importer_prefix:
                continue  # intra-package import
            target_rank = layer_rank(imported)
            assert target_rank is not None
            if target_rank < importer_rank:
                continue  # strictly downward: allowed
            direction = "upward" if target_rank > importer_rank else "cross-layer"
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "RPL102" if lazy else "RPL101",
                    f"{importer} (layer {importer_rank}) imports {imported} "
                    f"(layer {target_rank}): {direction} dependency "
                    "violates the declared layer DAG",
                )
            )
    return findings


def _function_scoped_nodes(tree: ast.Module) -> set:
    """ids of every node nested inside some function body of ``tree``."""
    scoped: set = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if sub is not node:
                    scoped.add(id(sub))
    return scoped


# ----------------------------------------------------------------------
# Facade-only imports (RPL105)
# ----------------------------------------------------------------------
def _check_facade_only(tree: ast.Module, path: str) -> List[Finding]:
    if not any(is_under(path, fragment) for fragment in FACADE_ONLY_SCOPE):
        return []
    if module_of(path) is not None:
        return []  # inside the package itself: the layer DAG governs
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        for imported in _imported_repro_modules(node):
            if imported in FACADE_MODULES:
                continue
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "RPL105",
                    f"facade-only code imports internal layer {imported!r}; "
                    "use repro, repro.api or repro.errors",
                )
            )
    return findings


# ----------------------------------------------------------------------
# Traversal ownership
# ----------------------------------------------------------------------
def _subscripted_triple_names(loop: ast.AST) -> set:
    """Triple members subscripted anywhere inside one loop."""
    found = set()
    for node in ast.walk(loop):
        if not isinstance(node, ast.Subscript):
            continue
        base = node.value
        name: Optional[str] = None
        if isinstance(base, ast.Name):
            name = base.id
        elif isinstance(base, ast.Attribute):
            name = base.attr
        if name is None:
            continue
        for member in TRAVERSAL_TRIPLE:
            # endswith also catches tindptr/texpiries-style aliases.
            if name.endswith(member):
                found.add(member)
    return found


def _check_traversal_ownership(tree: ast.Module, path: str) -> List[Finding]:
    if any(is_under(path, owner) for owner in TRAVERSAL_OWNERS):
        return []
    findings: List[Finding] = []
    claimed: set = set()  # inner loops of an already-flagged loop
    for node in ast.walk(tree):
        if not isinstance(node, (ast.For, ast.While)) or id(node) in claimed:
            continue
        members = _subscripted_triple_names(node)
        if len(members) >= 2:
            for sub in ast.walk(node):
                if isinstance(sub, (ast.For, ast.While)):
                    claimed.add(id(sub))
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "RPL103",
                    "loop indexes the CSR triple "
                    f"({', '.join(sorted(members))}): traversal loops live "
                    f"only in {' / '.join(TRAVERSAL_OWNERS)}",
                )
            )
    return findings
