"""Driver: file discovery, two-phase checking, pragmas, baseline, CLI.

``python -m repro.lint [paths]`` runs all four pass families over every
``.py`` file under the given paths (default ``src``), applies inline
pragmas and the committed baseline, and exits non-zero on any new
finding, stale baseline entry, or unparseable file.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint import concurrency, determinism, layers, nativejit, obs, shm
from repro.lint.baseline import load_baseline, partition, write_baseline
from repro.lint.concurrency import Registry
from repro.lint.findings import CODES, Finding
from repro.lint.pragmas import is_suppressed, suppressions


def _python_files(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(str(p) for p in sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(str(path))
    return files


def _parse(source: str, path: str) -> Tuple[Optional[ast.Module], List[Finding]]:
    try:
        return ast.parse(source, filename=path), []
    except SyntaxError as error:
        line = error.lineno or 1
        return None, [
            Finding(path, line, "RPL001", f"file does not parse: {error.msg}")
        ]


def lint_source(
    source: str, path: str, registry: Optional[Registry] = None
) -> List[Finding]:
    """All findings for one in-memory module, pragmas already applied.

    ``registry`` is the merged ``@published_plane`` table; when linting a
    single source in isolation (tests, tools) the file's own declarations
    are collected automatically.
    """
    tree, errors = _parse(source, path)
    if tree is None:
        return errors
    if registry is None:
        registry = concurrency.collect_registry(tree)
    findings: List[Finding] = []
    findings.extend(layers.check(tree, path))
    findings.extend(nativejit.check(tree, path))
    findings.extend(shm.check(tree, path))
    findings.extend(concurrency.check(tree, path, registry))
    findings.extend(determinism.check(tree, path))
    findings.extend(obs.check(tree, path))
    table = suppressions(source)
    kept = [
        finding
        for finding in findings
        if not is_suppressed(table, finding.line, finding.code)
    ]
    return sorted(kept)


def lint_paths(paths: Sequence[str]) -> List[Finding]:
    """Two-phase lint of every python file under ``paths``.

    Phase one parses everything and collects the ``@published_plane``
    registry across the whole set; phase two runs the passes with the
    merged registry, so cross-file writes to published attributes are
    caught.
    """
    files = _python_files(paths)
    sources: Dict[str, str] = {}
    trees: Dict[str, ast.Module] = {}
    findings: List[Finding] = []
    registries = []
    for path in files:
        source = Path(path).read_text(encoding="utf-8")
        sources[path] = source
        tree, errors = _parse(source, path)
        if tree is None:
            findings.extend(errors)
            continue
        trees[path] = tree
        registries.append(concurrency.collect_registry(tree))
    registry = concurrency.merge_registries(registries)
    for path, tree in trees.items():
        findings.extend(lint_source(sources[path], path, registry))
    return sorted(findings)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="repo-specific architecture & concurrency linter",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--baseline",
        default="lint-baseline.txt",
        help="baseline file of grandfathered fingerprints",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline (report everything)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-codes", action="store_true", help="print the code table"
    )
    return parser


def _emit_text(
    new: List[Finding], grandfathered: List[Finding], stale: List[str]
) -> None:
    for finding in new:
        print(finding.render())
    for fingerprint in stale:
        print(f"stale baseline entry (fix landed? remove it): {fingerprint}")
    total = len(new) + len(stale)
    suppressed = f", {len(grandfathered)} baselined" if grandfathered else ""
    print(f"repro-lint: {total} problem(s){suppressed}")


def _emit_json(
    new: List[Finding], grandfathered: List[Finding], stale: List[str]
) -> None:
    print(
        json.dumps(
            {
                "findings": [vars(finding) for finding in new],
                "baselined": [vars(finding) for finding in grandfathered],
                "stale_baseline": stale,
            },
            indent=2,
            sort_keys=True,
        )
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    options = _build_parser().parse_args(argv)
    if options.list_codes:
        for code in sorted(CODES):
            print(f"{code}  {CODES[code]}")
        return 0
    findings = lint_paths(options.paths)
    if options.write_baseline:
        write_baseline(options.baseline, findings)
        print(
            f"repro-lint: wrote {len(findings)} fingerprint(s) "
            f"to {options.baseline}"
        )
        return 0
    baseline = set() if options.no_baseline else load_baseline(options.baseline)
    new, grandfathered, stale = partition(findings, baseline)
    if options.fmt == "json":
        _emit_json(new, grandfathered, stale)
    else:
        _emit_text(new, grandfathered, stale)
    return 1 if new or stale else 0


if __name__ == "__main__":
    sys.exit(main())
