"""Lazy threshold-grid maintenance for sieve algorithms.

SieveStreaming [26] and all three of the paper's algorithms filter candidates
against the geometric threshold grid

    Theta = { (1+eps)^i / (2k) : (1+eps)^i in [Delta, 2k * Delta], i integer }

where ``Delta`` is the largest singleton value observed so far.  The grid is
maintained *lazily* (paper Alg. 1, lines 4-7): when ``Delta`` grows, sieve
sets whose threshold fell out of the window are deleted and new (empty) sets
are created for thresholds that entered it.  The grid always contains
``O(log(2k) / eps)`` thresholds, which bounds both space and per-candidate
work (Theorem 3).

Thresholds are indexed by their integer exponent ``i`` so the grid never
suffers floating-point drift: the same exponent always denotes the same
threshold.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterator, List, Tuple

from repro.utils.validation import check_fraction, check_positive_int

Node = Hashable

#: Tolerance used when mapping Delta onto integer exponents, guarding the
#: window boundaries against log rounding.
_EXPONENT_TOLERANCE = 1e-9


class SieveSet:
    """One candidate set ``S_theta``: at most ``k`` nodes kept per threshold.

    Keeps both insertion order (solutions are reported in selection order)
    and a membership set for O(1) duplicate checks — the paper's node stream
    may present the same node many times.

    ``cached_value`` remembers the most recent real evaluation of
    ``f(S_theta)``.  On an addition-only view the objective of a fixed set
    only grows, so the cache is always a valid *lower bound* of the current
    value; HISTAPPROX's redundancy test reads it instead of spending oracle
    calls, which is how the paper's Theorem 8 can charge ReduceRedundancy no
    ``gamma`` factor.
    """

    __slots__ = ("nodes", "cached_value", "_members")

    def __init__(self) -> None:
        self.nodes: List[Node] = []
        self.cached_value: float = 0.0
        self._members: set = set()

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._members

    def add(self, node: Node) -> None:
        if node in self._members:
            raise ValueError(f"node {node!r} already in sieve set")
        self.nodes.append(node)
        self._members.add(node)

    def copy(self) -> "SieveSet":
        dup = SieveSet()
        dup.nodes = list(self.nodes)
        dup.cached_value = self.cached_value
        dup._members = set(self._members)
        return dup


class ThresholdSet:
    """The lazily maintained geometric grid of sieve thresholds.

    Args:
        k: cardinality budget.
        epsilon: grid resolution (the paper's eps); smaller values mean more
            thresholds, better approximation, more oracle calls.

    The object maps exponents to :class:`SieveSet` instances and re-windows
    itself whenever :meth:`update_delta` observes a larger singleton value.
    """

    def __init__(self, k: int, epsilon: float) -> None:
        self.k = check_positive_int(k, "k")
        self.epsilon = check_fraction(epsilon, "epsilon")
        self.delta = 0.0
        self._log_base = math.log1p(self.epsilon)
        self._sieves: Dict[int, SieveSet] = {}

    # ------------------------------------------------------------------
    def _window(self, delta: float) -> Tuple[int, int]:
        """Integer exponent window ``[lo, hi]`` for ``(1+eps)^i in [delta, 2k*delta]``."""
        log_delta = math.log(delta)
        lo = math.ceil(log_delta / self._log_base - _EXPONENT_TOLERANCE)
        hi = math.floor(
            (log_delta + math.log(2 * self.k)) / self._log_base + _EXPONENT_TOLERANCE
        )
        return lo, hi

    def threshold_value(self, exponent: int) -> float:
        """The threshold ``(1+eps)^i / (2k)`` for exponent ``i``."""
        return (1.0 + self.epsilon) ** exponent / (2.0 * self.k)

    # ------------------------------------------------------------------
    def update_delta(self, value: float) -> bool:
        """Raise ``Delta`` to ``value`` if larger; re-window the grid.

        Returns True when the grid changed.  Sets for thresholds leaving the
        window are discarded (their guarantees no longer matter — the optimum
        is now known to be larger); entering thresholds start empty, exactly
        as in the paper's lazy maintenance.
        """
        if value <= self.delta:
            return False
        self.delta = float(value)
        lo, hi = self._window(self.delta)
        for exponent in [e for e in self._sieves if e < lo or e > hi]:
            del self._sieves[exponent]
        for exponent in range(lo, hi + 1):
            if exponent not in self._sieves:
                self._sieves[exponent] = SieveSet()
        return True

    # ------------------------------------------------------------------
    def items(self) -> Iterator[Tuple[float, SieveSet]]:
        """Iterate ``(threshold, sieve_set)`` in increasing threshold order."""
        for exponent in sorted(self._sieves):
            yield self.threshold_value(exponent), self._sieves[exponent]

    def sets(self) -> Iterator[SieveSet]:
        """Iterate the sieve sets (unordered use-cases: querying the max)."""
        return iter(self._sieves.values())

    def __len__(self) -> int:
        return len(self._sieves)

    @property
    def num_thresholds(self) -> int:
        """Current grid size; O(log(2k)/eps) by construction."""
        return len(self._sieves)

    def copy(self) -> "ThresholdSet":
        """Deep-copy the grid (used when HISTAPPROX clones an instance)."""
        dup = ThresholdSet(self.k, self.epsilon)
        dup.delta = self.delta
        dup._sieves = {e: s.copy() for e, s in self._sieves.items()}
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ThresholdSet(k={self.k}, epsilon={self.epsilon}, delta={self.delta}, "
            f"thresholds={len(self._sieves)})"
        )
