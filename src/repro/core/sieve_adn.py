"""SIEVEADN: influential-node tracking on addition-only networks (Alg. 1).

SIEVEADN adapts SieveStreaming to the node stream induced by arriving edges:
for each batch it computes the changed-node set ``V_t-bar``, lazily updates
the threshold grid with the largest singleton spread, and offers every
changed node to every sieve set whose threshold its *current* marginal gain
clears.  Two differences from classic SieveStreaming (paper Section III-A)
make the correctness proof non-trivial but are handled naturally here:

* the same node may appear many times in the node stream — sieve sets refuse
  duplicates and a rejected node can be accepted later, when its marginal
  gain (re-evaluated at the current time) has grown;
* the objective ``f_t`` is time-varying — on an ADN it can only grow for a
  fixed set, which is exactly what Theorem 2's induction uses.

The instance evaluates all spreads at its ``min_expiry`` horizon, so the
same class serves standalone ADN tracking (``min_expiry=None``) and life as
a building block inside BASICREDUCTION / HISTAPPROX (horizon ``t + i``; see
DESIGN.md Section 2).
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Sequence

from repro.core.thresholds import ThresholdSet
from repro.core.tracker import Solution
from repro.influence.changed import changed_nodes, nodes_in_id_order
from repro.influence.oracle import InfluenceOracle
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction

Node = Hashable


class SieveADN:
    """The paper's Alg. 1 with a configurable evaluation horizon.

    Args:
        k: cardinality budget.
        epsilon: threshold-grid resolution (the paper's eps).
        graph: the shared TDN (batches must be inserted before
            :meth:`on_batch` is called).
        oracle: counted influence oracle over ``graph``; a private one is
            created when omitted.
        min_expiry: evaluation horizon — only edges with expiry at or above
            it are visible to this instance (``None`` = every alive edge).
        changed_mode: how ``V_t-bar`` is derived from a batch
            (``"ancestors"`` exact-superset, or ``"sources"`` heuristic).
    """

    label = "SieveADN"

    def __init__(
        self,
        k: int,
        epsilon: float,
        graph: TDNGraph,
        oracle: Optional[InfluenceOracle] = None,
        *,
        min_expiry: Optional[float] = None,
        changed_mode: str = "ancestors",
    ) -> None:
        self.graph = graph
        self.oracle = oracle if oracle is not None else InfluenceOracle(graph)
        self.min_expiry = min_expiry
        self.changed_mode = changed_mode
        self.thresholds = ThresholdSet(k, epsilon)
        self.k = self.thresholds.k
        self.epsilon = self.thresholds.epsilon
        self._last_time = 0

    # ------------------------------------------------------------------
    def on_batch(self, t: int, batch: Sequence[Interaction]) -> None:
        """Process the edges that arrived at time ``t`` (Alg. 1 lines 3-11).

        The batch must already be present in the shared graph.  Edges whose
        expiry falls below this instance's horizon are ignored — they are
        invisible in its subgraph.
        """
        self._last_time = t
        # One dirty sync per batch, before the horizon filter: the oracle's
        # delta-aware memo table must observe every structural change (even
        # edges this instance's horizon hides), and doing it here lets the
        # eviction sweep double as the changed-node sweep below.
        sync = getattr(self.oracle, "sync_dirty", None)
        cone = sync() if sync is not None else None
        if self.min_expiry is not None:
            batch = [e for e in batch if e.expiry >= self.min_expiry]
        if not batch:
            return
        candidates = self._candidates_from_cone(batch, cone)
        if candidates is None:
            # The changed-node sweep runs on the same engine family as the
            # oracle: array-visited transpose sweep for "csr", reference
            # dict walk for "dict" (identical sets and ordering either
            # way).  Duck-typed oracles without a backend attribute get
            # the dict walk.
            candidates = changed_nodes(
                self.graph,
                batch,
                self.min_expiry,
                self.changed_mode,
                backend=getattr(self.oracle, "backend", "dict"),
            )
        self.process_candidates(candidates)

    def _candidates_from_cone(self, batch, cone) -> Optional[List[Node]]:
        """Reuse the oracle's dirty-cone closure as ``V_t-bar`` when exact.

        The memo sync already closed the journaled dirty sources under the
        reverse ancestor sweep at the widest live horizon.  That closure
        *is* ``changed_nodes(graph, batch)`` precisely when this instance
        sees every alive edge (``min_expiry is None``), wants the ancestor
        superset, and the journaled seeds are exactly this batch's sources
        (no interleaved expiry or foreign arrival widened the cone) — then
        one sweep has served both eviction and candidate derivation.
        Returns ``None`` when the closure is not reusable and the regular
        :func:`changed_nodes` sweep must run.
        """
        if (
            cone is None
            or self.min_expiry is not None
            or self.changed_mode != "ancestors"
        ):
            return None
        node_id = self.graph.node_id
        source_ids = {node_id(interaction.source) for interaction in batch}
        if None in source_ids or source_ids != set(cone.seed_ids):
            return None
        return nodes_in_id_order(self.graph, cone.cone_ids)

    def process_candidates(self, candidates: Iterable[Node]) -> None:
        """Feed the node stream directly (Alg. 1 lines 4-11).

        Exposed separately so HISTAPPROX can replay fill-in edges into a
        copied instance, and so tests can drive the sieve with hand-built
        node streams.
        """
        candidates = list(candidates)
        if not candidates:
            return
        # Lines 4-7: lazily maintain the threshold grid.  The singleton
        # sweep is issued as one batched oracle call group so the CSR
        # backend amortizes a single snapshot build across the whole
        # candidate batch (call counts are identical to per-node spreads).
        singletons = self.oracle.spread_many(
            [(node,) for node in candidates], self.min_expiry
        )
        singleton_values = {}
        for node, singleton in zip(candidates, singletons):
            singleton_values[node] = singleton
            self.thresholds.update_delta(singleton)
        # Lines 8-11: sieve each candidate against each threshold.  By
        # submodularity the marginal gain of ``node`` w.r.t. any set is at
        # most its singleton value, so thresholds above it can never be
        # cleared: since items() yields thresholds in increasing order we
        # stop there without spending oracle calls.  This pruning is what
        # keeps the per-batch call count at the paper's reported scale.
        for node in candidates:
            upper_bound = singleton_values[node]
            for threshold, sieve in self.thresholds.items():
                if threshold > upper_bound:
                    break
                if len(sieve) >= self.k or node in sieve:
                    continue
                base, with_node = self.oracle.spread_many(
                    (tuple(sieve.nodes), tuple(sieve.nodes) + (node,)),
                    self.min_expiry,
                )
                sieve.cached_value = float(base)
                if with_node - base >= threshold:
                    sieve.add(node)
                    sieve.cached_value = float(with_node)

    # ------------------------------------------------------------------
    def query(self) -> Solution:
        """Return the best sieve set under the current ``f_t`` (Alg. 1 line 12)."""
        best_nodes: List[Node] = []
        best_value = 0.0
        for sieve in self.thresholds.sets():
            if not sieve.nodes:
                continue
            value = self.oracle.spread(tuple(sieve.nodes), self.min_expiry)
            if value > best_value:
                best_value = value
                best_nodes = list(sieve.nodes)
        return Solution(
            nodes=tuple(best_nodes), value=float(best_value), time=self._last_time
        )

    def query_value(self) -> float:
        """The solution value only, evaluated exactly at the current time."""
        return self.query().value

    def query_value_cached(self) -> float:
        """Lower-bound readout of ``g_t`` from the sieves' cached values.

        Free of oracle calls: each sieve's value was recorded at its last
        real evaluation and can only have grown since (addition-only view).
        HISTAPPROX's redundancy test runs on this readout, matching the
        paper's complexity accounting (Theorem 8 charges ReduceRedundancy no
        oracle factor).
        """
        best = 0.0
        for sieve in self.thresholds.sets():
            if sieve.cached_value > best:
                best = sieve.cached_value
        return best

    # ------------------------------------------------------------------
    def copy(self, min_expiry: Optional[float] = None) -> "SieveADN":
        """Duplicate this instance, optionally re-homing it to a new horizon.

        HISTAPPROX creates the instance for a fresh lifetime ``l`` by copying
        its successor and then feeding the copy the edges the successor never
        saw; the copy shares the graph and oracle but owns its sieve state.
        """
        dup = SieveADN(
            self.k,
            self.epsilon,
            self.graph,
            self.oracle,
            min_expiry=self.min_expiry if min_expiry is None else min_expiry,
            changed_mode=self.changed_mode,
        )
        dup.thresholds = self.thresholds.copy()
        dup._last_time = self._last_time
        return dup

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SieveADN(k={self.k}, epsilon={self.epsilon}, "
            f"min_expiry={self.min_expiry}, thresholds={len(self.thresholds)})"
        )
