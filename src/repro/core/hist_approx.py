"""HISTAPPROX: smooth-histogram compression of BASICREDUCTION (Alg. 3).

BASICREDUCTION's weakness is that edges with long lifetimes fan out to up to
``L`` SIEVEADN instances.  HISTAPPROX keeps only a *histogram* of instances
— the index set ``x_t`` — and discards any instance whose output value is
eps-close to a maintained neighbour (Definition 4).  The smooth-histogram
property (Theorem 6) then bounds the loss: the head of the histogram is a
``(1/3 - eps)``-approximate solution at every time (Theorem 7), while the
number of live instances drops from ``L`` to ``O(log(k)/eps)`` (Theorem 8).

As everywhere in this reproduction, instances are keyed by their absolute
horizon ``h = t + l`` (DESIGN.md Section 2), so:

* Alg. 3's index shift (line 7) is a no-op;
* an instance terminates when ``t`` reaches its horizon (line 5);
* "feed the new instance the edges of ``G_t`` with lifetime in ``[l, l*)``"
  (line 15) is a range scan of the shared graph's expiry buckets over
  ``[t + l, t + l*)``;
* unbounded maximum lifetime ``L`` — the headline capability HISTAPPROX adds
  over BASICREDUCTION — is natural: an infinite-lifetime edge simply owns
  the ``math.inf`` horizon.

The optional *head refinement* (the paper's Section IV closing remark)
re-feeds the head instance copy with the alive edges below its horizon at
query time, upgrading the guarantee back to ``(1/2 - eps)`` at extra oracle
cost; the ablation benchmark measures the trade.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, List, Optional, Sequence

from repro.core.sieve_adn import SieveADN
from repro.core.tracker import Solution
from repro.influence.oracle import InfluenceOracle
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.tdn.stream import group_by_lifetime
from repro.utils.validation import check_fraction, check_positive_int

Horizon = float  # int horizons plus math.inf for infinite lifetimes


class HistApprox:
    """The paper's Alg. 3, horizon-keyed, with optional head refinement.

    Args:
        k: cardinality budget.
        epsilon: controls *both* the sieve grid resolution and the
            histogram redundancy threshold, as in the paper.
        graph: shared TDN.
        oracle: counted oracle (private one created when omitted).
        changed_mode: changed-node derivation for the instances.
        refine_head: when True, :meth:`query` upgrades the head output to
            the ``(1/2 - eps)`` guarantee by processing the alive edges the
            head never saw (extra oracle calls per query).
    """

    label = "HistApprox"

    def __init__(
        self,
        k: int,
        epsilon: float,
        graph: TDNGraph,
        oracle: Optional[InfluenceOracle] = None,
        *,
        changed_mode: str = "ancestors",
        refine_head: bool = False,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.epsilon = check_fraction(epsilon, "epsilon")
        self.graph = graph
        self.oracle = oracle if oracle is not None else InfluenceOracle(graph)
        self.changed_mode = changed_mode
        self.refine_head = refine_head
        self._horizons: List[Horizon] = []  # sorted ascending; mirrors x_t
        self._instances: Dict[Horizon, SieveADN] = {}
        self._last_time = 0

    # ------------------------------------------------------------------
    # Alg. 3 main loop
    # ------------------------------------------------------------------
    def on_batch(self, t: int, batch: Sequence[Interaction]) -> None:
        """Process the arrivals of step ``t`` group-by-group (Alg. 3 line 3).

        Lifetime groups are visited in increasing lifetime order (``None`` =
        infinite last), matching the paper's ``l = 1..L`` loop; empty groups
        are skipped — ProcessEdges on an empty group would only create
        spurious instances.
        """
        self._last_time = t
        self._expire(t)
        if not batch:
            return
        groups = group_by_lifetime(batch)
        for lifetime in sorted(groups, key=lambda g: math.inf if g is None else g):
            self._process_group(t, lifetime, groups[lifetime])

    def _process_group(
        self, t: int, lifetime: Optional[int], edges: List[Interaction]
    ) -> None:
        """ProcessEdges (Alg. 3 lines 8-18) for one lifetime group."""
        horizon: Horizon = math.inf if lifetime is None else t + lifetime
        if horizon not in self._instances:
            self._create_instance(t, horizon)
        # Line 17: feed the group to every instance at or below its horizon.
        position = bisect.bisect_right(self._horizons, horizon)
        for existing in self._horizons[:position]:
            self._instances[existing].on_batch(t, edges)
        # Line 18.
        self._reduce_redundancy()

    def _create_instance(self, t: int, horizon: Horizon) -> None:
        """Lines 9-16: instantiate the missing index ``l = horizon - t``.

        Without a successor the instance starts empty — the largest live
        horizon always tops every alive edge's expiry (the successor-less
        case of Fig. 6(b)), so there is nothing to back-fill.  With a
        successor, the instance is a copy of it plus the alive edges whose
        expiry lies in ``[horizon, successor)`` (Fig. 6(c)).
        """
        position = bisect.bisect_left(self._horizons, horizon)
        if position == len(self._horizons):
            instance = SieveADN(
                self.k,
                self.epsilon,
                self.graph,
                self.oracle,
                min_expiry=horizon,
                changed_mode=self.changed_mode,
            )
        else:
            successor = self._horizons[position]
            instance = self._instances[successor].copy(min_expiry=horizon)
            fill = [
                Interaction(u, v, t, int(expiry) - t)
                for u, v, expiry in self.graph.edges_with_expiry_in(horizon, successor)
            ]
            if fill:
                instance.on_batch(t, fill)
        bisect.insort(self._horizons, horizon)
        self._instances[horizon] = instance

    # ------------------------------------------------------------------
    # Redundancy removal (Alg. 3 lines 19-22)
    # ------------------------------------------------------------------
    def _reduce_redundancy(self) -> None:
        """Drop instances sandwiched between eps-close neighbours.

        The paper's Alg. 3 lines 19-22, as a single forward pass: for each
        kept index ``i`` (ascending), advance a probe to the largest
        ``j > i`` whose value still satisfies ``g(j) >= (1 - eps) * g(i)``,
        delete every index strictly between them, and continue with ``j``
        as the next anchor.  ``g`` is non-increasing in the index (larger
        horizons see fewer edges), so the probe never needs to back up and
        the whole pass is O(H) — each comparison either ends an anchor's
        scan or deletes an index for good.  The head (index 0) is always
        the first anchor and is never deleted.

        Values are the instances' cached readouts — maintained as a
        by-product of candidate processing — so redundancy removal spends
        no oracle calls, matching the paper's Theorem 8 accounting.
        """
        horizons = self._horizons
        if len(horizons) < 3:
            return
        values = [self._instances[h].query_value_cached() for h in horizons]
        kept = [0]
        anchor = 0
        while anchor < len(horizons) - 1:
            cutoff = (1.0 - self.epsilon) * values[anchor]
            probe = anchor + 1
            while probe + 1 < len(horizons) and values[probe + 1] >= cutoff:
                probe += 1
            kept.append(probe)
            anchor = probe
        if len(kept) == len(horizons):
            return
        survivors = [horizons[index] for index in kept]
        removed = set(horizons) - set(survivors)
        for victim in removed:
            del self._instances[victim]
        self._horizons = survivors

    # ------------------------------------------------------------------
    def _expire(self, t: int) -> None:
        """Line 5: terminate instances whose horizon the clock has reached."""
        while self._horizons and self._horizons[0] <= t:
            del self._instances[self._horizons[0]]
            del self._horizons[0]

    # ------------------------------------------------------------------
    def query(self) -> Solution:
        """Output of the head instance ``A_{x_1}`` (Alg. 3 line 4).

        With ``refine_head`` the head is copied down to horizon ``t + 1``
        and fed the alive edges it never processed, restoring the full
        ``(1/2 - eps)`` guarantee of BASICREDUCTION at extra cost.
        """
        t = self.graph.time
        self._expire(t)
        if not self._horizons:
            return Solution.empty(self._last_time)
        head_horizon = self._horizons[0]
        head = self._instances[head_horizon]
        if self.refine_head and head_horizon > t + 1:
            refined = head.copy(min_expiry=t + 1)
            fill = [
                Interaction(u, v, t, int(expiry) - t)
                for u, v, expiry in self.graph.edges_with_expiry_in(t + 1, head_horizon)
            ]
            if fill:
                refined.on_batch(t, fill)
            head = refined
        solution = head.query()
        return Solution(
            nodes=solution.nodes, value=solution.value, time=self._last_time
        )

    # ------------------------------------------------------------------
    @property
    def num_instances(self) -> int:
        """Live instances; O(log(k)/eps) after redundancy removal."""
        return len(self._horizons)

    def horizons(self) -> List[Horizon]:
        """Current histogram indices as absolute horizons (ascending)."""
        return list(self._horizons)

    def indices(self) -> List[float]:
        """Current histogram as the paper's relative indices ``x_t``."""
        t = self.graph.time
        return [h - t for h in self._horizons]

    def histogram(self, *, exact: bool = False) -> List[tuple]:
        """The maintained histogram ``{(x_i, g_t(x_i))}`` of paper Fig. 5.

        Returns ``(relative_index, value)`` pairs in ascending index order.
        With ``exact=False`` (default) values are the instances' cached
        readouts (free); ``exact=True`` re-evaluates each instance's output
        at the current time (costs oracle calls).  Useful for inspecting
        how aggressively the redundancy removal has compressed the ``L``
        potential instances.
        """
        t = self.graph.time
        pairs = []
        for horizon in self._horizons:
            instance = self._instances[horizon]
            value = (
                instance.query_value() if exact else instance.query_value_cached()
            )
            pairs.append((horizon - t, value))
        return pairs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HistApprox(k={self.k}, epsilon={self.epsilon}, "
            f"instances={len(self._horizons)})"
        )
