"""The paper's core streaming algorithms.

* :class:`SieveADN` — influential-node tracking on addition-only dynamic
  interaction networks (paper Alg. 1), a SieveStreaming adaptation with a
  time-varying objective; ``(1/2 - eps)``-approximate.
* :class:`BasicReduction` — ``L`` staggered SIEVEADN instances solving the
  general TDN problem (paper Alg. 2); ``(1/2 - eps)``-approximate.
* :class:`HistApprox` — the smooth-histogram compression of BASICREDUCTION
  (paper Alg. 3); ``(1/3 - eps)``-approximate, with an optional head
  refinement recovering ``(1/2 - eps)``.
* :class:`DecayedCentralityTracker` / :class:`TrendTracker` — singleton
  rankers over the pluggable fold semantics (``hop_discount`` /
  ``time_decay``), the first non-count consumers of the fold seam.
* :class:`InfluenceTracker` — a facade that owns the TDN graph, assigns
  lifetimes, and drives any of the algorithms (or baselines) from a raw
  interaction feed.
"""

from repro.core.thresholds import SieveSet, ThresholdSet
from repro.core.sieve_streaming import SieveStreaming
from repro.core.sieve_adn import SieveADN
from repro.core.basic_reduction import BasicReduction
from repro.core.hist_approx import HistApprox
from repro.core.decayed import DecayedCentralityTracker, TrendTracker
from repro.core.tracker import InfluenceTracker, Solution, TrackingAlgorithm

__all__ = [
    "ThresholdSet",
    "SieveSet",
    "SieveStreaming",
    "SieveADN",
    "BasicReduction",
    "HistApprox",
    "DecayedCentralityTracker",
    "TrendTracker",
    "InfluenceTracker",
    "Solution",
    "TrackingAlgorithm",
]
