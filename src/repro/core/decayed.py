"""Semantics-driven trackers: decayed centrality and trend detection.

The fold seam (:mod:`repro.kernels.folds`) makes influence a pluggable
monoid over the reached set; these two trackers are its first non-count
consumers.  Both rank alive nodes by their *singleton* spread under a
decaying semantics and answer queries with the top-``k`` — the natural
streaming analogue of centrality scoring, where the paper's sieve
machinery is unnecessary because singletons need no submodular bookkeeping.

* :class:`DecayedCentralityTracker` scores a node by its hop-discounted
  reach ``sum_v alpha^dist(u, v)`` (``hop_discount`` semantics): nearby
  reachable nodes count almost fully, distant ones geometrically less.
  This is Katz-style centrality restricted to the alive time-decaying
  graph.
* :class:`TrendTracker` scores a node by recency-weighted reach
  ``sum_v (1 - exp(-lam * remaining_lifetime(v)))`` (``time_decay``
  semantics): nodes whose audience is backed by fresh, long-lived
  interactions outrank nodes coasting on expiring ones — a trending-now
  detector.

Both delegate every evaluation to a shared :class:`InfluenceOracle`
constructed with the matching ``semantics=...``, so memoization,
invalidation, sharded execution and persistence all come for free and
behave identically to the count path.  Correctness is pinned against
independent dict-BFS references in ``tests/property/test_fold_semantics.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.tracker import Solution
from repro.errors import SemanticsError
from repro.influence.oracle import InfluenceOracle
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.utils.validation import check_positive_int


class _SingletonRankTracker:
    """Shared machinery: rank alive nodes by singleton spread, keep top-k.

    Subclasses pin ``semantics_name``; the constructor enforces that the
    supplied oracle evaluates under exactly that fold family, so a tracker
    can never silently rank under the wrong arithmetic (e.g. a trend
    tracker fed a plain count oracle).
    """

    #: Fold family the oracle must evaluate under (subclass responsibility).
    semantics_name = ""
    label = ""

    def __init__(
        self,
        k: int,
        graph: TDNGraph,
        oracle: InfluenceOracle,
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.graph = graph
        if oracle.semantics != self.semantics_name:
            raise SemanticsError(
                f"{type(self).__name__} requires an oracle with "
                f"semantics {self.semantics_name!r}, got {oracle.semantics!r}"
            )
        self.oracle = oracle
        self._last_time = 0

    def on_batch(self, t: int, batch: Sequence[Interaction]) -> None:
        """Singleton ranking keeps no incremental state; scoring happens in
        :meth:`query` where the oracle's memo table absorbs repeats."""
        self._last_time = t

    def query(self) -> Solution:
        """Top-``k`` alive nodes by singleton spread under the tracker's fold.

        Candidates are scored in one batched oracle call (one bit-plane
        sweep per 64 singletons); ties break deterministically by node
        repr so runs are reproducible across processes.  ``value`` is the
        fold spread of the selected *set* — the same quantity the sieve
        trackers report — not the sum of singleton scores.
        """
        candidates = sorted(self.graph.node_set(), key=repr)
        if not candidates:
            return Solution.empty(self._last_time)
        scores = self.oracle.spread_many([(node,) for node in candidates])
        ranked = sorted(
            zip(candidates, scores), key=lambda pair: (-pair[1], repr(pair[0]))
        )
        selected: Tuple = tuple(node for node, _ in ranked[: self.k])
        value = float(self.oracle.spread(selected))
        return Solution(nodes=selected, value=value, time=self._last_time)

    def singleton_scores(self) -> List[Tuple[object, float]]:
        """Every alive node with its singleton score, best first.

        Exposed for analysis/report code that wants the full ranking
        rather than the top-``k`` cut.
        """
        candidates = sorted(self.graph.node_set(), key=repr)
        scores = self.oracle.spread_many([(node,) for node in candidates])
        return sorted(
            zip(candidates, scores), key=lambda pair: (-pair[1], repr(pair[0]))
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(k={self.k}, oracle={self.oracle!r})"


class DecayedCentralityTracker(_SingletonRankTracker):
    """Track the top-``k`` nodes by hop-discounted reach (Katz-style).

    Requires an oracle constructed with ``semantics="hop_discount"`` (or a
    parameterized ``("hop_discount", {"alpha": ...})`` spec); ``alpha``
    lives on the oracle's fold so every consumer of the oracle agrees on
    the discount.
    """

    semantics_name = "hop_discount"
    label = "DecayedCentrality"

    def __init__(
        self,
        k: int,
        graph: TDNGraph,
        oracle: Optional[InfluenceOracle] = None,
        *,
        alpha: float = 0.5,
    ) -> None:
        if oracle is None:
            oracle = InfluenceOracle(
                graph, semantics=("hop_discount", {"alpha": alpha})
            )
        super().__init__(k, graph, oracle)

    @property
    def alpha(self) -> float:
        """Per-hop geometric discount, owned by the oracle's fold."""
        return self.oracle.fold.params["alpha"]


class TrendTracker(_SingletonRankTracker):
    """Track the top-``k`` nodes by recency-weighted (time-decay) reach.

    Requires an oracle constructed with ``semantics="time_decay"`` (or a
    parameterized ``("time_decay", {"lam": ...})`` spec); larger ``lam``
    concentrates mass on nodes backed by long-remaining-lifetime
    interactions.
    """

    semantics_name = "time_decay"
    label = "Trend"

    def __init__(
        self,
        k: int,
        graph: TDNGraph,
        oracle: Optional[InfluenceOracle] = None,
        *,
        lam: float = 0.1,
    ) -> None:
        if oracle is None:
            oracle = InfluenceOracle(graph, semantics=("time_decay", {"lam": lam}))
        super().__init__(k, graph, oracle)

    @property
    def lam(self) -> float:
        """Exponential decay rate, owned by the oracle's fold."""
        return self.oracle.fold.params["lam"]
