"""Generic SieveStreaming for insertion-only streams (Badanidiyuru et al.).

This is the classic streaming submodular maximizer the paper builds on: each
element of the stream is examined once, kept in a sieve set ``S_theta`` if
its marginal gain clears the threshold ``theta`` and the set still has room,
and discarded otherwise.  The best sieve set is a ``(1/2 - eps)``-approximate
solution.

The class is included both as a reference implementation (tests compare
SIEVEADN against it on addition-only replays) and as a standalone utility for
plain insertion-only submodular maximization over a *static* objective.
SIEVEADN itself (``repro.core.sieve_adn``) re-implements the loop against the
time-varying influence oracle rather than wrapping this class, because its
correctness argument (paper Theorem 2) rests on evaluating marginal gains at
the current time.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Tuple

from repro.core.thresholds import ThresholdSet
from repro.submodular.functions import SetFunction

Node = Hashable


class SieveStreaming:
    """One-pass ``(1/2 - eps)`` streaming maximizer for a static objective.

    Args:
        function: normalized monotone submodular objective.
        k: cardinality budget.
        epsilon: threshold-grid resolution.

    Example:
        >>> from repro.submodular.functions import CoverageFunction
        >>> cover = CoverageFunction([{1, 2}, {2, 3}, {4}])
        >>> sieve = SieveStreaming(cover, k=2, epsilon=0.1)
        >>> for element in [1, 2, 3, 4]:
        ...     sieve.process(element)
        >>> nodes, value = sieve.query()
        >>> value >= 0.5 * 3
        True
    """

    def __init__(self, function: SetFunction, k: int, epsilon: float) -> None:
        self.function = function
        self.thresholds = ThresholdSet(k, epsilon)
        self.k = self.thresholds.k
        self.epsilon = self.thresholds.epsilon
        self.elements_seen = 0

    def process(self, element: Node) -> None:
        """Examine one stream element."""
        self.elements_seen += 1
        singleton = self.function.value([element])
        self.thresholds.update_delta(singleton)
        for threshold, sieve in self.thresholds.items():
            if len(sieve) >= self.k or element in sieve:
                continue
            gain = self.function.value(sieve.nodes + [element]) - self.function.value(
                sieve.nodes
            )
            if gain >= threshold:
                sieve.add(element)

    def process_stream(self, elements: Iterable[Node]) -> None:
        """Examine a whole stream of elements in order."""
        for element in elements:
            self.process(element)

    def query(self) -> Tuple[List[Node], float]:
        """Return the best sieve set and its objective value."""
        best_nodes: List[Node] = []
        best_value = 0.0
        for sieve in self.thresholds.sets():
            if not sieve.nodes:
                continue
            value = self.function.value(sieve.nodes)
            if value > best_value:
                best_value = value
                best_nodes = list(sieve.nodes)
        return best_nodes, best_value
