"""Common tracking protocol and the user-facing facade.

Every algorithm in this library — the paper's three (SIEVEADN,
BASICREDUCTION, HISTAPPROX) and every baseline — implements the same small
protocol: it observes batches of interactions that have *already been
inserted* into a shared :class:`~repro.tdn.graph.TDNGraph`, and answers
queries with a :class:`Solution`.  The experiment harness replays one stream
into one graph and forwards each batch to many algorithms, each with its own
oracle counter, which is how the paper's head-to-head figures are produced.

:class:`InfluenceTracker` is the convenience entry point for library users
who just want to track influential nodes: it owns the graph, assigns
lifetimes, and drives a single algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, List, Optional, Protocol, Tuple, Union

from repro.errors import ConfigError
from repro.influence.oracle import InfluenceOracle
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.tdn.lifetimes import LifetimePolicy
from repro.tdn.stream import InteractionStream

Node = Hashable


@dataclass(frozen=True)
class Solution:
    """A query answer: the selected nodes and their influence spread.

    Attributes:
        nodes: the selected node set (at most ``k``), in selection order.
        value: ``f_t`` of the selected set at query time.
        time: the time step the answer refers to.
    """

    nodes: Tuple[Node, ...] = field(default_factory=tuple)
    value: float = 0.0
    time: int = 0

    @staticmethod
    def empty(time: int = 0) -> "Solution":
        """The empty solution (value 0)."""
        return Solution(nodes=(), value=0.0, time=time)


class TrackingAlgorithm(Protocol):
    """Protocol implemented by every tracker and baseline.

    Contract: the caller advances the shared graph to ``t`` and inserts the
    batch *before* calling :meth:`on_batch`; the algorithm may then evaluate
    spreads through its oracle and update internal state.  :meth:`query` may
    be called at any time after at least one batch.
    """

    #: Human-readable name used in experiment reports.
    label: str

    #: The oracle whose counter records this algorithm's cost.
    oracle: InfluenceOracle

    def on_batch(self, t: int, batch: List[Interaction]) -> None:
        """Observe the batch that just arrived at time ``t``."""
        ...

    def query(self) -> Solution:
        """Return the current influential-node solution."""
        ...


class InfluenceTracker:
    """Facade: track influential nodes from a raw interaction feed.

    Args:
        algorithm: one of ``"hist-approx"`` (default; the paper's
            recommendation), ``"basic-reduction"``, ``"sieve-adn"``,
            ``"decayed-centrality"``, ``"trend"``, ``"greedy"``,
            ``"random"``, or a callable ``(graph, oracle) ->
            TrackingAlgorithm`` for custom setups.
        k: number of influential nodes to maintain.
        epsilon: approximation knob of the sieve algorithms.
        lifetime_policy: default lifetime assignment for interactions that
            do not carry one (``None`` keeps bare interactions infinite,
            i.e. the addition-only regime).
        L: maximum lifetime (required by ``"basic-reduction"``).
        changed_mode: ``"ancestors"`` (paper-faithful) or ``"sources"``.
        refine_head: enable HISTAPPROX's (1/2 - eps) head refinement.
        seed: RNG seed (used by the ``"random"`` baseline).
        workers: evaluation worker count for the oracle's sharded
            parallel engine (1 = serial; ``N > 1`` shards batched spread
            sweeps across N processes over the shared-memory CSR plane
            with bit-identical results).  Call :meth:`close` when done to
            release the pool.
        semantics: influence semantics the oracle evaluates under — a
            registered fold name (``"count"``, ``"hop_discount"``,
            ``"time_decay"``), a ``(name, params)`` pair, or a
            :class:`~repro.kernels.Fold` instance.  ``None`` (default)
            picks the algorithm's natural semantics: ``hop_discount`` for
            ``"decayed-centrality"``, ``time_decay`` for ``"trend"``,
            plain ``count`` for everything else.
        oracle: a prebuilt oracle to drive evaluations (must be bound to
            the ``graph`` argument, which then becomes mandatory).  This
            is how weighted spread enters the facade: construct a
            :class:`~repro.influence.weighted.WeightedInfluenceOracle` on
            a shared graph and inject it; ``semantics``/``workers`` are
            then the oracle's business and must be left at their
            defaults.

    Example:
        >>> from repro.tdn.lifetimes import GeometricLifetime
        >>> tracker = InfluenceTracker("hist-approx", k=2, epsilon=0.2,
        ...                            lifetime_policy=GeometricLifetime(0.2, 50, seed=7))
        >>> for t in range(3):
        ...     _ = tracker.step(t, [("a", f"b{t}", None), ("a", "c", None)])
        >>> sorted(tracker.query().nodes)[:1]
        ['a']
    """

    def __init__(
        self,
        algorithm: Union[str, object] = "hist-approx",
        *,
        k: int = 10,
        epsilon: float = 0.1,
        lifetime_policy: Optional[LifetimePolicy] = None,
        L: Optional[int] = None,
        changed_mode: str = "ancestors",
        refine_head: bool = False,
        seed=None,
        graph: Optional[TDNGraph] = None,
        workers: int = 1,
        semantics=None,
        oracle=None,
    ) -> None:
        self.graph = graph if graph is not None else TDNGraph()
        if oracle is not None:
            if getattr(oracle, "graph", None) is not self.graph:
                raise ConfigError(
                    "an injected oracle must be bound to the tracker's graph; "
                    "construct the graph first and pass it via graph="
                )
            if semantics is not None or workers > 1:
                raise ConfigError(
                    "semantics/workers are owned by an injected oracle; "
                    "configure them on the oracle instead"
                )
            self.oracle = oracle
        else:
            if semantics is None:
                semantics = _default_semantics(algorithm)
            self.oracle = InfluenceOracle(
                self.graph,
                parallel=workers if workers > 1 else None,
                semantics=semantics,
            )
        self.lifetime_policy = lifetime_policy
        self._last_time: Optional[int] = None
        if callable(algorithm):
            self.algorithm: TrackingAlgorithm = algorithm(self.graph, self.oracle)
        else:
            self.algorithm = _build_algorithm(
                str(algorithm),
                graph=self.graph,
                oracle=self.oracle,
                k=k,
                epsilon=epsilon,
                L=L,
                changed_mode=changed_mode,
                refine_head=refine_head,
                seed=seed,
            )

    # ------------------------------------------------------------------
    def step(self, t: int, interactions: Iterable) -> Solution:
        """Advance to time ``t``, ingest ``interactions``, return the solution.

        Each item may be an :class:`Interaction` or a ``(source, target)`` /
        ``(source, target, lifetime)`` tuple; tuples are stamped with time
        ``t``.  Lifetimes missing after that are drawn from the tracker's
        lifetime policy (or remain infinite without one).
        """
        if self._last_time is not None and t <= self._last_time:
            raise ConfigError(
                f"steps must have strictly increasing times; got {t} after {self._last_time}"
            )
        self.graph.advance_to(t)
        batch = [self._coerce(item, t) for item in interactions]
        if self.lifetime_policy is not None:
            batch = [
                i if i.lifetime is not None else self.lifetime_policy.assign(i)
                for i in batch
            ]
        for interaction in batch:
            self.graph.add_interaction(interaction)
        self.algorithm.on_batch(t, batch)
        self._last_time = t
        return self.algorithm.query()

    def run(self, stream: InteractionStream) -> Iterator[Tuple[int, Solution]]:
        """Replay a stream, yielding ``(t, solution)`` after every batch."""
        for t, batch in stream:
            yield t, self.step(t, batch)

    def query(self) -> Solution:
        """Return the current solution without ingesting anything."""
        return self.algorithm.query()

    @property
    def oracle_calls(self) -> int:
        """Total influence-oracle evaluations spent so far."""
        return self.oracle.calls

    def close(self) -> None:
        """Release the oracle's worker pool, if any (idempotent)."""
        self.oracle.close()

    def health_report(self) -> Optional[dict]:
        """The parallel engine's health snapshot (None when serial)."""
        return self.oracle.health_report()

    def __enter__(self) -> "InfluenceTracker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(item, t: int) -> Interaction:
        if isinstance(item, Interaction):
            return item
        if isinstance(item, tuple):
            if len(item) == 2:
                return Interaction(item[0], item[1], t)
            if len(item) == 3:
                return Interaction(item[0], item[1], t, item[2])
        raise TypeError(
            f"cannot interpret {item!r} as an interaction; pass Interaction "
            "objects or (source, target[, lifetime]) tuples"
        )


def _default_semantics(algorithm) -> str:
    """The natural influence semantics for a named algorithm.

    The semantics-driven trackers are unusable under plain counts (their
    constructors reject a count oracle), so naming them implies their
    fold; every other algorithm keeps the paper's reachability count.
    """
    if callable(algorithm):
        return "count"
    key = str(algorithm).lower().replace("_", "-")
    if key in ("decayed-centrality", "decayed", "decayedcentrality"):
        return "hop_discount"
    if key in ("trend", "trend-tracker", "trendtracker"):
        return "time_decay"
    return "count"


def _build_algorithm(
    name: str,
    *,
    graph: TDNGraph,
    oracle: InfluenceOracle,
    k: int,
    epsilon: float,
    L: Optional[int],
    changed_mode: str,
    refine_head: bool,
    seed,
) -> TrackingAlgorithm:
    """Instantiate a named algorithm (imports deferred to avoid cycles)."""
    key = name.lower().replace("_", "-")
    if key in ("hist-approx", "hist", "histapprox"):
        from repro.core.hist_approx import HistApprox

        return HistApprox(
            k=k,
            epsilon=epsilon,
            graph=graph,
            oracle=oracle,
            changed_mode=changed_mode,
            refine_head=refine_head,
        )
    if key in ("basic-reduction", "basic", "basicreduction"):
        from repro.core.basic_reduction import BasicReduction

        if L is None:
            raise ConfigError("basic-reduction requires the maximum lifetime L")
        return BasicReduction(
            k=k,
            epsilon=epsilon,
            L=L,
            graph=graph,
            oracle=oracle,
            changed_mode=changed_mode,
        )
    if key in ("sieve-adn", "sieve", "sieveadn"):
        from repro.core.sieve_adn import SieveADN

        return SieveADN(
            k=k, epsilon=epsilon, graph=graph, oracle=oracle, changed_mode=changed_mode
        )
    if key in ("decayed-centrality", "decayed", "decayedcentrality"):
        from repro.core.decayed import DecayedCentralityTracker

        return DecayedCentralityTracker(k=k, graph=graph, oracle=oracle)
    if key in ("trend", "trend-tracker", "trendtracker"):
        from repro.core.decayed import TrendTracker

        return TrendTracker(k=k, graph=graph, oracle=oracle)
    if key == "greedy":
        # Deliberate injection seam: the factory hands back baseline
        # trackers by name; lazy import keeps core free of baselines at
        # module load (the only sanctioned core -> baselines edge).
        # repro-lint: disable-next=RPL102
        from repro.baselines.greedy_recompute import GreedyRecompute

        return GreedyRecompute(k=k, graph=graph, oracle=oracle)
    if key == "random":
        # Same sanctioned factory seam as the greedy baseline above.
        # repro-lint: disable-next=RPL102
        from repro.baselines.random_baseline import RandomBaseline

        return RandomBaseline(k=k, graph=graph, oracle=oracle, seed=seed)
    raise ConfigError(
        f"unknown algorithm {name!r}; expected one of hist-approx, "
        "basic-reduction, sieve-adn, decayed-centrality, trend, greedy, "
        "random, or a factory callable"
    )
