"""BASICREDUCTION: SIEVEADN as a building block for general TDNs (Alg. 2).

The reduction maintains ``L`` staggered SIEVEADN instances.  Instance ``i``
at time ``t`` processes the arriving edges with lifetime at least ``i``, so
by construction it has processed exactly the edges still alive at
``t + i - 1`` — the head instance (``i = 1``) has processed *all* alive
edges and its output is a ``(1/2 - eps)``-approximate solution on ``G_t``
(Theorem 4).  After each step the head expires, the remaining instances
shift left, and a fresh instance joins at the tail.

This implementation keys instances by their absolute *horizon* ``h = t + i``
(see DESIGN.md Section 2): shifting becomes a no-op, termination is
``h <= t``, and the instance's evaluation subgraph is "edges with expiry at
or above ``h``" on the one shared graph.  The instance deque is therefore in
one-to-one correspondence with Alg. 2's array, without any renaming.

Cost note (paper Theorem 5 and remarks): edges with large lifetimes fan out
to many instances; the per-batch work is ``O(L b gamma log(k) / eps)`` in
the worst case.  This is the bottleneck HISTAPPROX removes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

from repro.core.sieve_adn import SieveADN
from repro.core.tracker import Solution
from repro.influence.oracle import InfluenceOracle
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.utils.validation import check_positive_int


class BasicReduction:
    """The paper's Alg. 2, horizon-keyed.

    Args:
        k: cardinality budget.
        epsilon: sieve grid resolution.
        L: maximum lifetime; every arriving edge must satisfy
            ``1 <= lifetime <= L`` (the TDN model's upper bound).
        graph: shared TDN.
        oracle: counted oracle (private one created when omitted).
        changed_mode: changed-node derivation mode for the instances.
    """

    label = "BasicReduction"

    def __init__(
        self,
        k: int,
        epsilon: float,
        L: int,
        graph: TDNGraph,
        oracle: Optional[InfluenceOracle] = None,
        *,
        changed_mode: str = "ancestors",
    ) -> None:
        self.k = check_positive_int(k, "k")
        self.L = check_positive_int(L, "L")
        self.epsilon = epsilon
        self.graph = graph
        self.oracle = oracle if oracle is not None else InfluenceOracle(graph)
        self.changed_mode = changed_mode
        # Deque of (horizon, instance), ascending horizon; contiguous range
        # [t + 1, t + L] after _ensure_instances(t).
        self._instances: Deque[Tuple[int, SieveADN]] = deque()
        self._last_time = 0

    # ------------------------------------------------------------------
    def _ensure_instances(self, t: int) -> None:
        """Expire instances with horizon <= t; extend the tail to ``t + L``.

        Equivalent to Alg. 2's terminate/shift/append, executed lazily at the
        start of each step (multiple steps may have elapsed without batches).
        A brand-new horizon ``h > previous t + L`` cannot have missed edges:
        any earlier edge has expiry at most its arrival time plus ``L``.
        """
        while self._instances and self._instances[0][0] <= t:
            self._instances.popleft()
        next_horizon = self._instances[-1][0] + 1 if self._instances else t + 1
        for horizon in range(next_horizon, t + self.L + 1):
            instance = SieveADN(
                self.k,
                self.epsilon,
                self.graph,
                self.oracle,
                min_expiry=horizon,
                changed_mode=self.changed_mode,
            )
            self._instances.append((horizon, instance))

    # ------------------------------------------------------------------
    def on_batch(self, t: int, batch: Sequence[Interaction]) -> None:
        """Route the batch to every instance whose horizon it reaches.

        Edges are sorted by decreasing expiry once; walking the instances
        from the largest horizon down, each instance receives the prefix of
        edges whose expiry clears its horizon — instance ``i`` sees exactly
        the union of lifetime groups ``l >= i`` in a single call, as Alg. 2
        prescribes.
        """
        self._last_time = t
        self._ensure_instances(t)
        if not batch:
            return
        for interaction in batch:
            if interaction.lifetime is None or interaction.lifetime > self.L:
                raise ValueError(
                    f"BasicReduction requires lifetimes in [1, L={self.L}]; "
                    f"got {interaction.lifetime!r} — use a truncated lifetime "
                    "policy or HistApprox (which allows unbounded lifetimes)"
                )
        ordered = sorted(batch, key=lambda e: -e.expiry)
        prefix_end = 0
        for horizon, instance in reversed(self._instances):
            while prefix_end < len(ordered) and ordered[prefix_end].expiry >= horizon:
                prefix_end += 1
            if prefix_end == 0:
                continue
            instance.on_batch(t, ordered[:prefix_end])

    # ------------------------------------------------------------------
    def query(self) -> Solution:
        """Output of the head instance: a (1/2 - eps) solution on ``G_t``."""
        while self._instances and self._instances[0][0] <= self.graph.time:
            self._instances.popleft()
        if not self._instances:
            return Solution.empty(self._last_time)
        head_horizon, head = self._instances[0]
        solution = head.query()
        return Solution(
            nodes=solution.nodes, value=solution.value, time=self._last_time
        )

    # ------------------------------------------------------------------
    @property
    def num_instances(self) -> int:
        """Number of live SIEVEADN instances (== L between batches)."""
        return len(self._instances)

    def horizons(self) -> List[int]:
        """Current instance horizons, ascending (for tests/diagnostics)."""
        return [h for h, _ in self._instances]

    def profile(self, *, exact: bool = False) -> List[Tuple[int, float]]:
        """The full ``g_t(l)`` curve over all ``L`` instances (paper Fig. 5).

        Returns ``(index, value)`` pairs for ``l = 1..L``; the curve
        HISTAPPROX approximates with its compressed histogram.  With
        ``exact=True`` each instance's output is re-evaluated at the
        current time (L extra oracle-call groups); the default reads the
        cached values.
        """
        t = self.graph.time
        pairs: List[Tuple[int, float]] = []
        for horizon, instance in self._instances:
            value = (
                instance.query_value() if exact else instance.query_value_cached()
            )
            pairs.append((horizon - t, value))
        return pairs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BasicReduction(k={self.k}, L={self.L}, "
            f"instances={len(self._instances)})"
        )
