"""Set-function abstractions used by the greedy optimizers.

:class:`SetFunction` is the minimal oracle interface the optimizers need: a
single ``value(nodes)`` evaluation.  Two concrete implementations live here:

* :class:`SpreadFunction` adapts an :class:`~repro.influence.oracle.
  InfluenceOracle` (optionally horizon-filtered) into the interface — this is
  the paper's ``f_t``.
* :class:`CoverageFunction` computes weighted coverage over a family of sets;
  the RR-set baselines reduce influence maximization to exactly this
  max-coverage instance.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Protocol, Sequence, Set

Node = Hashable


class SetFunction(Protocol):
    """Protocol for a normalized monotone submodular set function."""

    def value(self, nodes: Iterable[Node]) -> float:
        """Return ``f(nodes)``."""
        ...


class SpreadFunction:
    """Adapts the influence oracle to the :class:`SetFunction` protocol.

    Binds a fixed ``min_expiry`` horizon so that optimizers evaluating the
    function need not know about TDN internals.
    """

    def __init__(self, oracle, min_expiry: Optional[float] = None) -> None:
        self._oracle = oracle
        self._min_expiry = min_expiry

    def value(self, nodes: Iterable[Node]) -> float:
        return self._oracle.spread(nodes, self._min_expiry)


class CoverageFunction:
    """Weighted coverage of a family of sets by the chosen elements.

    Given sets ``R_1..R_m`` (each a set of nodes) with optional weights,
    ``value(S)`` is the total weight of sets intersecting ``S``.  This is the
    classic submodular max-coverage objective; IMM/TIM+/DIM select seeds by
    maximizing coverage of sampled reverse-reachable sets.

    The function pre-builds an inverted index node -> covering set ids so
    that the optimizers' marginal-gain evaluations are proportional to the
    candidate's membership count, not to ``m``.
    """

    def __init__(
        self, sets: Sequence[Set[Node]], weights: Optional[Sequence[float]] = None
    ) -> None:
        if weights is not None and len(weights) != len(sets):
            raise ValueError(
                f"weights length {len(weights)} != number of sets {len(sets)}"
            )
        self.sets: List[Set[Node]] = list(sets)
        self.weights: List[float] = (
            list(weights) if weights is not None else [1.0] * len(self.sets)
        )
        self._membership: Dict[Node, List[int]] = {}
        for set_id, members in enumerate(self.sets):
            for node in members:
                self._membership.setdefault(node, []).append(set_id)

    @property
    def num_sets(self) -> int:
        """Number of sets in the family."""
        return len(self.sets)

    def covering_sets(self, node: Node) -> List[int]:
        """Ids of the sets containing ``node``."""
        return self._membership.get(node, [])

    def value(self, nodes: Iterable[Node]) -> float:
        covered: Set[int] = set()
        for node in nodes:
            covered.update(self._membership.get(node, ()))
        return sum(self.weights[i] for i in covered)

    def greedy_cover(self, k: int) -> List[Node]:
        """Dedicated O(total membership) greedy max-coverage.

        Equivalent to running lazy greedy on :meth:`value` but exploits the
        inverted index directly: marginal gains are maintained per node and
        decremented as sets become covered.  This is the standard seed
        selection inner loop of the RR-set methods.  Ties break on smallest
        ``repr`` — the same rule as the generic greedy optimizers, so all
        three implementations trace identical executions.
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        gain: Dict[Node, float] = {}
        for node, set_ids in self._membership.items():
            gain[node] = sum(self.weights[i] for i in set_ids)
        covered = [False] * len(self.sets)
        chosen: List[Node] = []
        for _ in range(min(k, len(gain))):
            best = min(gain, key=lambda n: (-gain[n], repr(n)))
            if gain[best] <= 0:
                break
            chosen.append(best)
            for set_id in self._membership.get(best, ()):  # mark newly covered
                if not covered[set_id]:
                    covered[set_id] = True
                    for member in self.sets[set_id]:
                        if member in gain:
                            gain[member] -= self.weights[set_id]
            del gain[best]
        return chosen
