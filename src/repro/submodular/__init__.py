"""Generic submodular maximization toolkit.

The paper's algorithms maximize a normalized monotone submodular function
under a cardinality constraint.  This package holds the generic pieces that
are independent of TDNs: the set-function protocol, the classic greedy of
Nemhauser et al. (the paper's Greedy baseline), its lazy (CELF) variant
(Minoux's accelerated greedy, used by the paper with the lazy-evaluation
trick), a brute-force optimum for tests, and a coverage function used by the
RR-set baselines.
"""

from repro.submodular.functions import CoverageFunction, SetFunction, SpreadFunction
from repro.submodular.greedy import (
    GreedyResult,
    brute_force_optimum,
    greedy_max,
    lazy_greedy_max,
)

__all__ = [
    "SetFunction",
    "SpreadFunction",
    "CoverageFunction",
    "GreedyResult",
    "greedy_max",
    "lazy_greedy_max",
    "brute_force_optimum",
]
