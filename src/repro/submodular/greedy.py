"""Greedy maximizers for cardinality-constrained submodular functions.

Three optimizers, all operating through the :class:`SetFunction` protocol:

* :func:`greedy_max` — the classic (1 - 1/e) greedy of Nemhauser, Wolsey and
  Fisher [27]: ``k`` rounds, each picking the candidate with the largest
  marginal gain.
* :func:`lazy_greedy_max` — Minoux's accelerated greedy [32] (also known as
  CELF): keeps stale upper bounds on marginal gains in a max-heap and only
  re-evaluates the top candidate.  Submodularity guarantees the result is
  identical to plain greedy while typically using far fewer evaluations —
  this is exactly the paper's Greedy baseline with the "lazy evaluation
  trick".
* :func:`brute_force_optimum` — exhaustive search over all subsets of size
  at most ``k``; exponential, for tests that verify approximation bounds on
  small instances.

Ties are broken deterministically by ``repr`` of the candidate so that runs
are reproducible across Python hash randomization.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Hashable, Iterable, List, Sequence, Tuple

from repro.submodular.functions import SetFunction

Node = Hashable


@dataclass
class GreedyResult:
    """Outcome of a greedy run.

    Attributes:
        nodes: selected nodes, in selection order.
        value: objective value of the selected set.
        evaluations: number of ``value`` evaluations the optimizer issued
            (marginal gains count one evaluation each: the base value is
            shared across a round).
    """

    nodes: List[Node] = field(default_factory=list)
    value: float = 0.0
    evaluations: int = 0


def greedy_max(
    function: SetFunction, candidates: Iterable[Node], k: int
) -> GreedyResult:
    """Plain greedy: ``k`` rounds of best-marginal-gain selection."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    pool = _unique(candidates)
    chosen: List[Node] = []
    current_value = 0.0
    evaluations = 0
    for _ in range(min(k, len(pool))):
        best_node = None
        best_value = current_value
        for node in pool:
            if node in chosen:
                continue
            trial = function.value(chosen + [node])
            evaluations += 1
            if trial > best_value or (
                trial == best_value
                and best_node is not None
                and repr(node) < repr(best_node)
            ):
                best_value = trial
                best_node = node
        if best_node is None:
            break
        chosen.append(best_node)
        current_value = best_value
    return GreedyResult(nodes=chosen, value=current_value, evaluations=evaluations)


def lazy_greedy_max(
    function: SetFunction, candidates: Iterable[Node], k: int
) -> GreedyResult:
    """Lazy (CELF) greedy: identical output to :func:`greedy_max`.

    Maintains a max-heap of stale marginal-gain bounds.  In each round the
    top candidate is re-evaluated against the current selection; if it stays
    on top it is selected without touching the rest — submodularity makes
    stale bounds valid upper bounds.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    pool = _unique(candidates)
    evaluations = 0
    chosen: List[Node] = []
    current_value = 0.0
    # Heap entries: (-gain_bound, round_evaluated, repr tiebreak, node).
    heap: List[Tuple[float, int, str, Node]] = []
    for node in pool:
        gain = function.value([node])
        evaluations += 1
        heap.append((-gain, 0, repr(node), node))
    heapq.heapify(heap)
    round_no = 0
    while heap and len(chosen) < k:
        round_no += 1
        while True:
            neg_gain, evaluated_round, _, node = heap[0]
            if evaluated_round == round_no:
                break
            trial = function.value(chosen + [node])
            evaluations += 1
            fresh_gain = trial - current_value
            heapq.heapreplace(heap, (-fresh_gain, round_no, repr(node), node))
        neg_gain, _, _, node = heapq.heappop(heap)
        gain = -neg_gain
        if gain <= 0:
            break
        chosen.append(node)
        current_value += gain
    return GreedyResult(nodes=chosen, value=current_value, evaluations=evaluations)


def brute_force_optimum(
    function: SetFunction, candidates: Iterable[Node], k: int
) -> GreedyResult:
    """Exhaustive optimum over subsets of size <= k.  Exponential; tests only."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    pool = _unique(candidates)
    best: Tuple[float, Sequence[Node]] = (0.0, [])
    evaluations = 0
    for size in range(1, min(k, len(pool)) + 1):
        for combo in itertools.combinations(pool, size):
            value = function.value(combo)
            evaluations += 1
            if value > best[0]:
                best = (value, combo)
    return GreedyResult(nodes=list(best[1]), value=best[0], evaluations=evaluations)


def _unique(candidates: Iterable[Node]) -> List[Node]:
    """Deduplicate preserving first-seen order."""
    seen = set()
    result: List[Node] = []
    for node in candidates:
        if node not in seen:
            seen.add(node)
            result.append(node)
    return result
