"""Seeded random number generation helpers.

All stochastic components (lifetime sampling, dataset generation, RR-set
sampling, the Random baseline) accept either an integer seed or an existing
``random.Random`` instance.  Centralizing the coercion here keeps every
experiment reproducible end to end: the experiment harness derives child
generators with :func:`spawn_rngs` so that adding a new algorithm to a run
does not perturb the random draws of the existing ones.
"""

from __future__ import annotations

import random
from typing import Union

SeedLike = Union[int, random.Random, None]


def make_rng(seed: SeedLike = None) -> random.Random:
    """Return a ``random.Random`` from a seed, an existing RNG, or fresh.

    Passing an existing ``random.Random`` returns it unchanged so that
    components can share one generator when the caller wants correlated
    draws.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def make_np_rng(seed: Union[int, None] = None):
    """Return a seeded ``numpy.random.Generator``.

    The one sanctioned construction point for numpy randomness (enforced
    by repro-lint RPL402), mirroring :func:`make_rng` for the array side.
    numpy is imported lazily so ``repro.utils`` keeps working in
    numpy-free environments.
    """
    import numpy  # repro.utils must import without numpy installed

    return numpy.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> list:
    """Derive ``count`` independent generators from one seed.

    Each child is seeded from the parent stream, so children are mutually
    independent and the whole family is reproducible from the single parent
    seed.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    parent = make_rng(seed)
    return [random.Random(parent.getrandbits(64)) for _ in range(count)]
