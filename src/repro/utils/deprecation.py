"""Warn-once deprecation plumbing for the facade transition.

The stdlib ``warnings`` "once" filter keys on (message, category, module,
lineno) and is routinely reset by test harnesses (pytest's
``recwarn``/``filterwarnings`` manipulate the filter state), which makes
"warns exactly once per process" impossible to guarantee through filters
alone.  This module keeps its own key set: each deprecated spelling warns
the first time it is exercised and never again, independent of filter
state.  ``tests/test_deprecations.py`` resets the set explicitly to
assert the exactly-once contract.
"""

from __future__ import annotations

import warnings
from typing import Set

_warned: Set[str] = set()


def warn_once(key: str, message: str, *, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning(message)`` the first time ``key`` is seen."""
    if key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_warned_keys() -> None:
    """Forget every warned key (test isolation only)."""
    _warned.clear()
