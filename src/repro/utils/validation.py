"""Argument validation helpers shared across the library.

Every public constructor validates its numeric parameters through these
helpers so that misconfiguration (for example a negative budget ``k`` or an
epsilon outside ``(0, 1)``) fails fast with a uniform error message instead of
surfacing later as a silently wrong experiment.
"""

from __future__ import annotations

from numbers import Real


def check_positive_int(value: int, name: str) -> int:
    """Require ``value`` to be an integer >= 1 and return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return value


def check_positive(value: float, name: str) -> float:
    """Require ``value`` to be a real number > 0 and return it as float."""
    if isinstance(value, bool) or not isinstance(value, Real):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")
    return float(value)


def check_non_negative(value: float, name: str) -> float:
    """Require ``value`` to be a real number >= 0 and return it as float."""
    if isinstance(value, bool) or not isinstance(value, Real):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return float(value)


def check_fraction(value: float, name: str, *, inclusive: bool = False) -> float:
    """Require ``value`` to lie in ``(0, 1)`` (or ``[0, 1]``) and return it.

    The open interval is the default because the paper's epsilon parameters
    are meaningless at exactly 0 or 1.
    """
    if isinstance(value, bool) or not isinstance(value, Real):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    value = float(value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value}")
    return value
