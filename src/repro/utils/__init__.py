"""Small shared utilities: counters, RNG helpers, validation."""

from repro.utils.counters import CallCounter
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)

__all__ = [
    "CallCounter",
    "make_rng",
    "spawn_rngs",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
]
