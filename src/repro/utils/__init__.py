"""Small shared utilities: counters, RNG helpers, validation, deprecation."""

from repro.utils.counters import CallCounter
from repro.utils.deprecation import reset_warned_keys, warn_once
from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)

__all__ = [
    "CallCounter",
    "make_rng",
    "spawn_rngs",
    "warn_once",
    "reset_warned_keys",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
]
