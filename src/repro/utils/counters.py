"""Counting primitives used to report hardware-independent cost metrics.

The paper evaluates computational efficiency by the *number of oracle calls*
(each evaluation of the influence function ``f_t``), because an oracle call is
the most expensive operation in every algorithm and the count is independent
of implementation language and hardware.  ``CallCounter`` is the single shared
counting primitive: the influence oracle increments it, algorithms read it,
and the experiment harness snapshots it to produce the per-step and cumulative
series shown in the paper's Figs. 7 and 10.
"""

from __future__ import annotations


class CallCounter:
    """A named, resettable event counter.

    Instances are intentionally tiny: a counter is incremented on every
    influence-oracle evaluation, which is the hot path of every algorithm in
    this library.

    Example:
        >>> calls = CallCounter("oracle")
        >>> calls.increment()
        >>> calls.increment(2)
        >>> calls.total
        3
        >>> calls.delta_since(1)
        2
    """

    __slots__ = ("name", "total")

    def __init__(self, name: str = "calls") -> None:
        self.name = name
        self.total = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` events (default one) to the counter."""
        self.total += amount

    def reset(self) -> None:
        """Zero the counter."""
        self.total = 0

    def snapshot(self) -> int:
        """Return the current total, for later use with :meth:`delta_since`."""
        return self.total

    def delta_since(self, snapshot: int) -> int:
        """Return how many events happened since ``snapshot`` was taken."""
        return self.total - snapshot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CallCounter(name={self.name!r}, total={self.total})"
