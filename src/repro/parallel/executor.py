"""Sharded oracle executor: a persistent worker pool over the CSR plane.

:class:`ShardedOracleExecutor` partitions the oracle's batched sweeps —
``spread_many`` bit-plane batches, the weighted oracle's 64-wide weighted
bit-plane sums (dense weights ride a published shared-memory weight
array; weight *callables* stay in-process via per-set reachable-id
evaluations), and the ``ancestor_ids`` / ``touched_cone_ids`` reverse
sweeps behind memo eviction — across a pool of long-lived worker
processes that all map the same shared-memory CSR plane
(:mod:`repro.parallel.plane`).

Correctness contract
--------------------
Sharding is *value-transparent*: per-set spread counts are independent, so
splitting a batch across workers and splicing the per-shard results back
in submission order reproduces the serial output exactly; and reachability
distributes over seed union (``ancestors(A | B) = ancestors(A) |
ancestors(B)``), so shard-merged ancestor sweeps equal the single sweep.
Oracle *call accounting* lives entirely in the oracle layer and is never
touched here.  The equivalence suite pins all three trackers to
bit-identical solutions, values and call counts under ``workers=2``.

Fallback ladder
---------------
The executor degrades gracefully, never silently changing results:

* ``workers <= 1`` — pure serial: every query routes to the owning
  graph's :class:`~repro.tdn.csr.DeltaCSR` engine.
* shared memory unavailable (locked-down container, no ``/dev/shm``) —
  probed once at first use; serial thereafter.
* batches smaller than ``min_batch`` — dispatch overhead would dominate;
  served serially (identical values either way).
* a worker dies or errors mid-request — the pool is torn down, the
  request is answered serially, and the executor stays in serial mode
  (``degraded``) with one warning.

Lifecycle
---------
The pool and plane are created lazily on the first parallel-eligible
request and torn down by :meth:`close` (also registered via
``weakref.finalize``, so an abandoned executor cannot leak segments or
processes).  Publishing is amortized per graph *epoch*:
:meth:`ensure_plane` republishes only when the owning graph's version
moved since the last publish.
"""

from __future__ import annotations

import os
import time
import warnings
import weakref
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:
    import numpy as np

    from repro.tdn.graph import TDNGraph

from repro.parallel import worker as worker_mod
from repro.parallel.plane import (
    SharedCSRPlane,
    SharedWeights,
    shared_memory_available,
    weights_segment_name,
)

__all__ = ["ShardedOracleExecutor", "shard_slices", "merge_shard_counts"]

#: Default per-request floor below which dispatch is not worth the IPC.
DEFAULT_MIN_BATCH = 8

#: Default seed-count floor for sharding *reverse* sweeps.  Much higher
#: than the forward floor: every worker must lazily build the plane
#: transpose (O(P log P)) once per generation before its first reverse
#: BFS, and per-epoch dirty-cone syncs journal only a handful of seeds —
#: sharding those would spend N transpose builds to split a sweep the
#: serial engine finishes in one.  Only genuinely wide seed sets clear
#: this bar.
DEFAULT_ANCESTOR_MIN_BATCH = 64

#: Default seconds without *any* shard result before declaring the pool
#: dead — whether the workers exited or merely wedged.  The clock
#: restarts on every received result, so a request making steady
#: progress never trips it; raise the bound (constructor or
#: ``REPRO_RESULT_TIMEOUT``) for graphs whose single-shard sweeps
#: legitimately run longer than this.
RESULT_TIMEOUT = 60.0


def shard_slices(num_items: int, num_shards: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced ``[start, stop)`` slices covering ``num_items``.

    Pure so the hypothesis shard-merge property can drive it directly:
    the slices are disjoint, ordered, cover every item exactly once, and
    sizes differ by at most one.  Empty slices are dropped.
    """
    if num_items <= 0 or num_shards <= 0:
        return []
    num_shards = min(num_shards, num_items)
    base, extra = divmod(num_items, num_shards)
    slices = []
    start = 0
    for shard in range(num_shards):
        stop = start + base + (1 if shard < extra else 0)
        slices.append((start, stop))
        start = stop
    return slices


def merge_shard_counts(
    slices: Sequence[Tuple[int, int]],
    shard_results: Sequence[Sequence],
    total: int,
) -> List:
    """Splice per-shard result lists back into submission order."""
    merged: List = [None] * total
    for (start, stop), counts in zip(slices, shard_results):
        if len(counts) != stop - start:
            raise ValueError(
                f"shard [{start}, {stop}) returned {len(counts)} results"
            )
        merged[start:stop] = counts
    return merged


class ShardedOracleExecutor:
    """Partition batched oracle sweeps across a persistent worker pool.

    Args:
        workers: worker process count.  ``<= 1`` means serial (no pool,
            no shared memory; the executor is then a thin pass-through to
            the graph's own engine).
        min_batch: smallest batch dispatched to the pool; smaller requests
            are served serially (values are identical either way).
        ancestor_min_batch: separate, higher floor for reverse
            (ancestor / dirty-cone) sweeps — sharding those makes every
            worker build the plane transpose first, which only pays off
            for wide seed sets.
        mp_context: multiprocessing start method (``"spawn"`` default:
            safe under threads and asyncio; ``"fork"`` starts faster).
            Override via ``REPRO_MP_CONTEXT`` as well.
        plane_prefix: shared-memory segment name prefix (random default).
    """

    def __init__(
        self,
        workers: int,
        *,
        min_batch: int = DEFAULT_MIN_BATCH,
        ancestor_min_batch: int = DEFAULT_ANCESTOR_MIN_BATCH,
        result_timeout: Optional[float] = None,
        mp_context: Optional[str] = None,
        plane_prefix: Optional[str] = None,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.min_batch = max(1, min_batch)
        self.ancestor_min_batch = max(1, ancestor_min_batch)
        if result_timeout is None:
            result_timeout = float(
                os.environ.get("REPRO_RESULT_TIMEOUT", RESULT_TIMEOUT)
            )
        self.result_timeout = max(1.0, result_timeout)
        self._mp_method = mp_context or os.environ.get("REPRO_MP_CONTEXT", "spawn")
        self._plane_prefix = plane_prefix
        self._plane: Optional[SharedCSRPlane] = None
        # Published weight arrays, keyed by the caller's weights key.  The
        # dict object itself is shared with the GC finalizer, so segments
        # registered after pool startup still get unlinked on teardown.
        # Segment names are derived from a short monotone sequence, not
        # from key + length: macOS caps POSIX shm names at 31 characters,
        # which a '{prefix}-{key}-{length}' name would blow through.
        self._weights: dict = {}
        self._weights_seq = 0
        self._weights_disabled: Optional[str] = None
        self._procs: List = []
        self._task_queue = None
        self._result_queue = None
        self._started = False
        self.degraded: Optional[str] = None  # reason we fell back to serial
        # Published-epoch stamp: a weakref (not id()) keeps graph identity
        # honest — CPython reuses id()s after collection, and a stale
        # plane served for a look-alike graph would be silently wrong.
        self._published_graph = None
        self._published_version: Optional[int] = None
        self._request_seq = 0
        self._finalizer = weakref.finalize(self, _noop)

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    @property
    def parallel_available(self) -> bool:
        """Whether requests can currently be served by the pool."""
        return self.workers > 1 and self.degraded is None

    @property
    def pool_running(self) -> bool:
        """Whether worker processes are actually up (pool started, live)."""
        return bool(self._procs) and self.degraded is None

    def _ensure_pool(self) -> bool:
        """Start plane + workers on first use; returns pool usability."""
        if self._started:
            return self.degraded is None
        self._started = True
        if self.workers <= 1:
            self.degraded = "workers <= 1"
            return False
        if not shared_memory_available():
            self.degraded = "shared memory unavailable"
            warnings.warn(
                "shared memory unavailable; sharded executor running serially",
                RuntimeWarning,
                stacklevel=3,
            )
            return False
        import multiprocessing

        try:
            ctx = multiprocessing.get_context(self._mp_method)
            self._plane = SharedCSRPlane(self._plane_prefix)
            self._task_queue = ctx.Queue()
            self._result_queue = ctx.Queue()
            for _ in range(self.workers):
                proc = ctx.Process(
                    target=worker_mod.worker_main,
                    args=(self._task_queue, self._result_queue, self._plane.prefix),
                    daemon=True,
                )
                proc.start()
                self._procs.append(proc)
        except Exception as exc:  # pragma: no cover - depends on host
            self._mark_degraded(f"pool startup failed: {exc}")
            return False
        # Real teardown work is registered only once resources exist.
        self._finalizer.detach()
        self._finalizer = weakref.finalize(
            self,
            _teardown,
            self._plane,
            self._task_queue,
            list(self._procs),
            self.workers,
            self._weights,
        )
        return True

    def _mark_degraded(self, reason: str) -> None:
        if self.degraded is None:
            self.degraded = reason
            warnings.warn(
                f"sharded executor falling back to serial: {reason}",
                RuntimeWarning,
                stacklevel=3,
            )
        self._shutdown_pool()

    def _shutdown_pool(self) -> None:
        self._finalizer.detach()
        _teardown(
            self._plane, self._task_queue, self._procs, self.workers, self._weights
        )
        self._plane = None
        self._task_queue = None
        self._result_queue = None
        self._procs = []
        self._weights = {}
        self._published_graph = None
        self._published_version = None
        self._finalizer = weakref.finalize(self, _noop)

    def close(self) -> None:
        """Stop the workers and unlink the plane (idempotent)."""
        self._shutdown_pool()
        if self.degraded is None:
            self.degraded = "closed"
        self._started = True

    # ------------------------------------------------------------------
    # Plane publication
    # ------------------------------------------------------------------
    def ensure_plane(self, graph: "TDNGraph") -> bool:
        """Publish ``graph``'s current epoch if the plane is stale.

        Returns whether the plane is usable.  Republishing happens at
        most once per graph version — the executor's epoch — so a stream
        of queries against an unchanged graph pays one O(V + P) snapshot
        build total, exactly like the serial engine's compaction.
        """
        if not self._ensure_pool():
            return False
        if (
            self._published_graph is not None
            and self._published_graph() is graph
            and self._published_version == graph.version
        ):
            return True
        try:
            self._plane.publish(graph)
        except OSError as exc:
            self._mark_degraded(f"plane publish failed: {exc}")
            return False
        self._published_graph = weakref.ref(graph)
        self._published_version = graph.version
        return True

    # ------------------------------------------------------------------
    # Dispatch machinery
    # ------------------------------------------------------------------
    def _dispatch(self, op: str, shards: Sequence) -> Optional[List]:
        """Send one task per shard, gather results in shard order.

        Returns ``None`` (after degrading to serial) when any worker
        errored or died; the caller then recomputes serially so the
        request never observes a partial answer.
        """
        self._request_seq += 1
        request_id = self._request_seq
        generation = self._plane.generation
        for shard_index, payload_eff in enumerate(shards):
            payload, eff = payload_eff
            self._task_queue.put(
                (op, request_id, shard_index, generation, payload, eff)
            )
        results: List = [None] * len(shards)
        pending = len(shards)
        deadline = time.monotonic() + self.result_timeout
        while pending:
            try:
                got_id, shard_index, outcome = self._result_queue.get(timeout=1.0)
            except Exception:
                if not self._alive():
                    self._mark_degraded("worker process died mid-request")
                    return None
                if time.monotonic() > deadline:
                    # Alive but wedged (stuck attach, lost message):
                    # abandon the request rather than hang the owner —
                    # teardown terminates the stuck processes.
                    self._mark_degraded(
                        f"no worker result within {self.result_timeout:.0f}s "
                        "(raise result_timeout / REPRO_RESULT_TIMEOUT for "
                        "legitimately long sweeps)"
                    )
                    return None
                continue
            if got_id != request_id:
                continue  # stale result from an abandoned request
            status, value = outcome
            if status != "ok":
                self._mark_degraded(f"worker error: {value}")
                return None
            results[shard_index] = value
            pending -= 1
            deadline = time.monotonic() + self.result_timeout  # progress resets
        return results

    def _alive(self) -> bool:
        return bool(self._procs) and all(proc.is_alive() for proc in self._procs)

    @staticmethod
    def _effective_horizon(graph: "TDNGraph", min_expiry: Optional[float]) -> float:
        """The serial engine's ``t + 1`` clamp, resolved owner-side."""
        floor = float(graph.time + 1)
        if min_expiry is None or min_expiry < floor:
            return floor
        return min_expiry

    def _parallel_ready(self, graph: "TDNGraph", batch_size: int) -> bool:
        return (
            self.workers > 1
            and self.degraded is None
            and batch_size >= self.min_batch
            and self.ensure_plane(graph)
        )

    # ------------------------------------------------------------------
    # Query API (mirrors the serial DeltaCSR surface)
    # ------------------------------------------------------------------
    def spread_counts(
        self,
        graph: "TDNGraph",
        id_sets: Sequence[Sequence[int]],
        min_expiry: Optional[float] = None,
    ) -> List[int]:
        """Per-set reachable counts; sharded when profitable, exact always."""
        if not id_sets:
            return []
        if self._parallel_ready(graph, len(id_sets)):
            eff = self._effective_horizon(graph, min_expiry)
            slices = shard_slices(len(id_sets), self.workers)
            shards = [(list(id_sets[start:stop]), eff) for start, stop in slices]
            results = self._dispatch(worker_mod.OP_SPREAD, shards)
            if results is not None:
                return merge_shard_counts(slices, results, len(id_sets))
        return graph.csr().spread_counts(id_sets, min_expiry)

    def reachable_ids_many(
        self,
        graph: "TDNGraph",
        id_sets: Sequence[Sequence[int]],
        min_expiry: Optional[float] = None,
    ) -> List[Set[int]]:
        """Per-set reachable id sets (weighted oracle's batch evaluation)."""
        if not id_sets:
            return []
        if self._parallel_ready(graph, len(id_sets)):
            eff = self._effective_horizon(graph, min_expiry)
            slices = shard_slices(len(id_sets), self.workers)
            shards = [(list(id_sets[start:stop]), eff) for start, stop in slices]
            results = self._dispatch(worker_mod.OP_REACH, shards)
            if results is not None:
                merged = merge_shard_counts(slices, results, len(id_sets))
                return [set(ids) for ids in merged]
        engine = graph.csr()
        return [engine.reachable_ids(ids, min_expiry) for ids in id_sets]

    def _ensure_weights(
        self, weights_key: str, weights: "np.ndarray"
    ) -> Optional[SharedWeights]:
        """Publish ``weights`` under ``weights_key`` if the copy is stale.

        The dense weight array is append-only (its prefix never changes),
        so its length *is* its epoch: republication happens only when the
        array grew since the last publish for this key.  A publish
        failure disables only the *weighted* parallel path (one warning;
        callers evaluate serially, never with partial state) — unweighted
        sharding keeps working, so a host quirk in one segment family
        cannot poison the whole executor.
        """
        if self._weights_disabled is not None:
            return None
        record = self._weights.get(weights_key)
        if record is not None and record.length == int(weights.shape[0]):
            return record
        self._weights_seq += 1
        name = weights_segment_name(self._plane.prefix, self._weights_seq)
        try:
            fresh = SharedWeights(name, weights)
        except OSError as exc:
            self._weights_disabled = str(exc)
            warnings.warn(
                f"weights publish failed ({exc}); weighted evaluation "
                "running serially (unweighted sharding unaffected)",
                RuntimeWarning,
                stacklevel=4,
            )
            return None
        if record is not None:
            record.close()
        self._weights[weights_key] = fresh
        return fresh

    def release_weights(self, weights_key: str) -> None:
        """Unlink the weight segment published under ``weights_key``.

        Called by a :class:`~repro.influence.weighted.
        WeightedInfluenceOracle` when it is closed or collected, so a
        long-lived shared executor serving many short-lived weighted
        oracles does not accumulate one O(V) segment per oracle until
        teardown.  Safe to call for keys never published (no-op); a
        worker still holding the stale mapping keeps it valid until it
        re-attaches, exactly as with superseded plane generations.
        """
        record = self._weights.pop(weights_key, None)
        if record is not None:
            record.close()

    def weighted_spread_sums(
        self,
        graph: "TDNGraph",
        id_sets: Sequence[Sequence[int]],
        min_expiry: Optional[float] = None,
        *,
        weights,
        weights_key: str,
    ) -> List[float]:
        """Per-set reached-weight sums; sharded when profitable, exact always.

        ``weights`` is the oracle's dense id-indexed float64 array and
        ``weights_key`` a stable per-oracle token; the array is published
        into shared memory once per weights epoch (see
        :meth:`_ensure_weights`) and workers fold it over their shard's
        bit-plane sweeps, returning 64-wide weight sums — per-set float
        lists — instead of whole reachable-id sets.  The kernel's
        canonical ascending-id summation makes shard results bit-identical
        to the serial engine's.
        """
        if not id_sets:
            return []
        if self._parallel_ready(graph, len(id_sets)):
            record = self._ensure_weights(weights_key, weights)
            if record is not None:
                eff = self._effective_horizon(graph, min_expiry)
                slices = shard_slices(len(id_sets), self.workers)
                shards = [
                    (
                        (
                            list(id_sets[start:stop]),
                            weights_key,
                            record.name,
                            record.length,
                        ),
                        eff,
                    )
                    for start, stop in slices
                ]
                results = self._dispatch(worker_mod.OP_WSPREAD, shards)
                if results is not None:
                    return merge_shard_counts(slices, results, len(id_sets))
        return graph.csr().weighted_spread_sums(id_sets, min_expiry, weights)

    def ancestor_ids(
        self,
        graph: "TDNGraph",
        target_ids: Iterable[int],
        min_expiry: Optional[float] = None,
    ) -> Set[int]:
        """Shard-merged reverse sweep: ancestors distribute over seed union."""
        targets = sorted(set(target_ids))
        if not targets:
            return set()
        if len(targets) >= self.ancestor_min_batch and self._parallel_ready(
            graph, len(targets)
        ):
            eff = self._effective_horizon(graph, min_expiry)
            slices = shard_slices(len(targets), self.workers)
            shards = [(targets[start:stop], eff) for start, stop in slices]
            results = self._dispatch(worker_mod.OP_ANCESTORS, shards)
            if results is not None:
                merged: Set[int] = set()
                for shard_ids in results:
                    merged.update(shard_ids)
                return merged
        return graph.csr().ancestor_ids(targets, min_expiry)

    def touched_cone_ids(self, graph: "TDNGraph", seed_ids: Iterable[int]) -> Set[int]:
        """Dirty-cone closure (memo eviction / SIEVEADN candidate reuse)."""
        return self.ancestor_ids(graph, seed_ids, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self.degraded or ("running" if self._procs else "idle")
        return f"ShardedOracleExecutor(workers={self.workers}, state={state!r})"


def _noop() -> None:
    pass


def _teardown(
    plane: Optional[SharedCSRPlane],
    task_queue: Any,
    procs: List,
    workers: int,
    weight_segments: Optional[Dict[str, SharedWeights]] = None,
) -> None:
    """Best-effort pool shutdown shared by close() and the GC finalizer."""
    if task_queue is not None:
        for _ in range(max(workers, len(procs))):
            try:
                task_queue.put((worker_mod.OP_STOP,))
            except Exception:  # pragma: no cover - queue already broken
                break
    for proc in procs:
        proc.join(timeout=5.0)
    for proc in procs:
        if proc.is_alive():  # pragma: no cover - stuck worker
            proc.terminate()
            proc.join(timeout=5.0)
    if task_queue is not None:
        try:
            task_queue.close()
            task_queue.join_thread()
        except Exception:  # pragma: no cover
            pass
    if weight_segments:
        for record in list(weight_segments.values()):
            record.close()
        weight_segments.clear()
    if plane is not None:
        plane.close()
