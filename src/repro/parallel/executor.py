"""Sharded oracle executor: a supervised worker pool over the CSR plane.

:class:`ShardedOracleExecutor` partitions the oracle's batched sweeps —
``spread_many`` bit-plane batches, the weighted oracle's 64-wide weighted
bit-plane sums (dense weights ride a published shared-memory weight
array; weight *callables* stay in-process via per-set reachable-id
evaluations), and the ``ancestor_ids`` / ``touched_cone_ids`` reverse
sweeps behind memo eviction — across a pool of long-lived worker
processes that all map the same shared-memory CSR plane
(:mod:`repro.parallel.plane`).

Correctness contract
--------------------
Sharding is *value-transparent*: per-set spread counts are independent, so
splitting a batch across workers and splicing the per-shard results back
in submission order reproduces the serial output exactly; and reachability
distributes over seed union (``ancestors(A | B) = ancestors(A) |
ancestors(B)``), so shard-merged ancestor sweeps equal the single sweep.
Every recovery path preserves this: a shard the pool cannot answer —
worker died, errored, missed its deadline, task quarantined — is
recomputed serially *for that shard only* through the same
:class:`~repro.kernels.TraversalKernel` physics, so a request never
observes a partial or divergent answer no matter what failed under it.
Oracle *call accounting* lives entirely in the oracle layer and is never
touched here.  The equivalence suite pins all three trackers to
bit-identical solutions, values and call counts under ``workers=2``; the
chaos suite (:mod:`tests.parallel.test_faults`) pins the same bar under
seeded fault plans.

Supervision and degradation
---------------------------
Worker liveness is checked on every dispatch round-trip.  Dead workers
are respawned by a :class:`~repro.parallel.supervisor.WorkerSupervisor`
under a bounded restart budget with jittered exponential backoff; a task
that kills two workers is quarantined (serial forever, never retried into
the pool).  Pool-level failures move an explicit
:class:`~repro.parallel.degradation.DegradationLadder` through
``SHARDED → DEGRADED → SHARDED`` (recoverable reasons: publish failure,
pool startup failure, total worker loss) or ``→ HALTED`` (terminal: no
shared memory, restart budget exhausted, closed).  The whole machine is
inspectable via :meth:`ShardedOracleExecutor.health_report`.

Lifecycle
---------
The pool and plane are created lazily on the first parallel-eligible
request and torn down by :meth:`close` (also registered via
``weakref.finalize`` over the supervisor's *live* process table, so an
abandoned executor cannot leak segments or processes — including
respawned ones).  Publishing is amortized per graph *epoch*:
:meth:`ensure_plane` republishes only when the owning graph's version
moved since the last publish.
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
import warnings
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

if TYPE_CHECKING:
    import numpy as np

    from repro.kernels import TraversalKernel
    from repro.tdn.graph import TDNGraph

from repro.kernels import Fold, resolve_backend, resolve_fold
from repro.obs import names as metric_names
from repro.obs.registry import metrics_registry
from repro.parallel import worker as worker_mod
from repro.parallel.degradation import DegradationLadder, DegradationReason
from repro.parallel.faults import FaultInjected, FaultPlan
from repro.parallel.plane import (
    SharedCSRPlane,
    SharedWeights,
    shared_memory_available,
    weights_segment_name,
)
from repro.parallel.supervisor import QUARANTINE_STRIKES, WorkerSupervisor

__all__ = [
    "EXECUTOR_MODES",
    "ShardedOracleExecutor",
    "merge_shard_counts",
    "shard_slices",
]

#: Accepted worker dispatch modes.  ``"processes"`` is the shared-memory
#: pool described above; ``"threads"`` shards over an in-process
#: ``ThreadPoolExecutor`` (profitable only when the jitted native kernel
#: releases the GIL); ``"auto"`` picks threads exactly when the resolved
#: kernel backend is native, processes otherwise.
EXECUTOR_MODES = ("processes", "threads", "auto")

#: Default per-request floor below which dispatch is not worth the IPC.
DEFAULT_MIN_BATCH = 8

#: Default seed-count floor for sharding *reverse* sweeps.  Much higher
#: than the forward floor: every worker must lazily build the plane
#: transpose (O(P log P)) once per generation before its first reverse
#: BFS, and per-epoch dirty-cone syncs journal only a handful of seeds —
#: sharding those would spend N transpose builds to split a sweep the
#: serial engine finishes in one.  Only genuinely wide seed sets clear
#: this bar.
DEFAULT_ANCESTOR_MIN_BATCH = 64

#: Default seconds without *any* shard result before declaring the pool
#: wedged — the last-ditch watchdog behind the per-task deadlines.  The
#: clock restarts on every received result, so a request making steady
#: progress never trips it; raise the bound (constructor or
#: ``REPRO_RESULT_TIMEOUT``) for graphs whose single-shard sweeps
#: legitimately run longer than this.
RESULT_TIMEOUT = 60.0

#: Default per-task deadline in seconds: a shard with no reply by then is
#: retried once on the (healthy) pool, then recomputed serially for that
#: task only.  Override via constructor or ``REPRO_TASK_TIMEOUT``.
TASK_TIMEOUT = 30.0

#: Result-queue poll interval while shards are outstanding; every poll is
#: also a liveness round-trip over the worker table.
_POLL_INTERVAL = 0.05

# Owner-side instruments, bound once at import.  Worker-side counters
# arrive as ("metrics", {name: delta}) outcomes on the result queue and
# are folded into the same process registry (see _dispatch).
_DISPATCHES = metrics_registry().counter(metric_names.EXECUTOR_DISPATCHES_TOTAL)
_SHARD_LATENCY = metrics_registry().histogram(
    metric_names.EXECUTOR_SHARD_LATENCY_SECONDS
)
_SERIAL_FALLBACKS = metrics_registry().counter(
    metric_names.EXECUTOR_SERIAL_FALLBACKS_TOTAL
)


def shard_slices(num_items: int, num_shards: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced ``[start, stop)`` slices covering ``num_items``.

    Pure so the hypothesis shard-merge property can drive it directly:
    the slices are disjoint, ordered, cover every item exactly once, and
    sizes differ by at most one.  Empty slices are dropped.
    """
    if num_items <= 0 or num_shards <= 0:
        return []
    num_shards = min(num_shards, num_items)
    base, extra = divmod(num_items, num_shards)
    slices = []
    start = 0
    for shard in range(num_shards):
        stop = start + base + (1 if shard < extra else 0)
        slices.append((start, stop))
        start = stop
    return slices


def merge_shard_counts(
    slices: Sequence[Tuple[int, int]],
    shard_results: Sequence[Sequence],
    total: int,
) -> List:
    """Splice per-shard result lists back into submission order."""
    merged: List = [None] * total
    for (start, stop), counts in zip(slices, shard_results):
        if len(counts) != stop - start:
            raise ValueError(
                f"shard [{start}, {stop}) returned {len(counts)} results"
            )
        merged[start:stop] = counts
    return merged


class ShardedOracleExecutor:
    """Partition batched oracle sweeps across a supervised worker pool.

    Args:
        workers: worker count.  ``<= 1`` means serial (no pool, no shared
            memory; the executor is then a thin pass-through to the
            graph's own engine).
        mode: ``"processes"`` | ``"threads"`` | ``"auto"`` (default).
            Thread mode shards sweeps across a ``ThreadPoolExecutor``
            over per-thread kernel clones of the *same* in-process
            arrays — no spawn, no shared-memory plane, no pickling —
            which only beats serial when the jitted native kernel
            releases the GIL; ``"auto"`` therefore resolves to threads
            exactly when :func:`repro.kernels.resolve_backend` lands on
            ``"native"``, and to the process pool otherwise.
        min_batch: smallest batch dispatched to the pool; smaller requests
            are served serially (values are identical either way).
        ancestor_min_batch: separate, higher floor for reverse
            (ancestor / dirty-cone) sweeps — sharding those makes every
            worker build the plane transpose first, which only pays off
            for wide seed sets.
        result_timeout: whole-request no-progress watchdog (seconds).
        task_timeout: per-shard deadline (seconds): timeout → one retry
            on the pool → serial fallback for that shard only.
        restart_budget: total worker respawns allowed before the executor
            degrades permanently (see :class:`WorkerSupervisor`).
        mp_context: multiprocessing start method (``"spawn"`` default:
            safe under threads and asyncio; ``"fork"`` starts faster).
            Override via ``REPRO_MP_CONTEXT`` as well.
        plane_prefix: shared-memory segment name prefix (random default).
        fault_plan: injected fault schedule (chaos tests); defaults to
            :meth:`FaultPlan.from_env` (``REPRO_FAULTS``), i.e. no faults.
        supervisor_seed: backoff-jitter seed; the fault plan's ``seed``
            is used when unset, so chaos runs are fully replayable.
    """

    def __init__(
        self,
        workers: int,
        *,
        mode: str = "auto",
        min_batch: int = DEFAULT_MIN_BATCH,
        ancestor_min_batch: int = DEFAULT_ANCESTOR_MIN_BATCH,
        result_timeout: Optional[float] = None,
        task_timeout: Optional[float] = None,
        restart_budget: Optional[int] = None,
        mp_context: Optional[str] = None,
        plane_prefix: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
        supervisor_seed: Optional[int] = None,
    ) -> None:
        # The ladder exists before any validation so close() is safe even
        # on a half-constructed instance.
        self._ladder = DegradationLadder()
        self._supervisor: Optional[WorkerSupervisor] = None
        self._plane: Optional[SharedCSRPlane] = None
        self._task_queue: Any = None
        self._result_queue: Any = None
        self._ctx: Any = None
        self._finalizer = weakref.finalize(self, _noop)
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if mode not in EXECUTOR_MODES:
            raise ValueError(
                f"mode must be one of {EXECUTOR_MODES}, got {mode!r}"
            )
        self.workers = workers
        self.mode = mode
        # Resolved lazily: "auto" consults the kernel backend, and that
        # probe pays the one-time JIT warm-up — not a constructor cost.
        self._mode_resolved: Optional[str] = None
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._thread_clone_cache: Dict[
            bool, Tuple[weakref.ref, int, List["TraversalKernel"]]
        ] = {}
        self.min_batch = max(1, min_batch)
        self.ancestor_min_batch = max(1, ancestor_min_batch)
        if result_timeout is None:
            result_timeout = float(
                os.environ.get("REPRO_RESULT_TIMEOUT", RESULT_TIMEOUT)
            )
        self.result_timeout = max(1.0, result_timeout)
        if task_timeout is None:
            task_timeout = float(os.environ.get("REPRO_TASK_TIMEOUT", TASK_TIMEOUT))
        self.task_timeout = max(0.05, task_timeout)
        self._restart_budget = restart_budget
        self._mp_method = mp_context or os.environ.get("REPRO_MP_CONTEXT", "spawn")
        self._plane_prefix = plane_prefix
        self._fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        if supervisor_seed is None and self._fault_plan is not None:
            supervisor_seed = self._fault_plan.seed
        self._supervisor_seed = supervisor_seed
        # Published weight arrays, keyed by the caller's weights key.  The
        # dict object itself is shared with the GC finalizer, so segments
        # registered after pool startup still get unlinked on teardown.
        # Segment names are derived from a short monotone sequence, not
        # from key + length: macOS caps POSIX shm names at 31 characters,
        # which a '{prefix}-{key}-{length}' name would blow through.
        self._weights: Dict[str, SharedWeights] = {}
        self._weights_seq = 0
        self._weights_disabled: Optional[str] = None
        self._started = False
        # Published-epoch stamp: a weakref (not id()) keeps graph identity
        # honest — CPython reuses id()s after collection, and a stale
        # plane served for a look-alike graph would be silently wrong.
        self._published_graph: Optional[weakref.ref] = None
        self._published_version: Optional[int] = None
        self._request_seq = 0

    # ------------------------------------------------------------------
    # Health surface
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> Optional[str]:
        """Legacy one-line view: None while sharded, else the reason."""
        if self._ladder.healthy:
            return None
        reason = self._ladder.reason
        text = reason.value if reason is not None else "degraded"
        detail = self._ladder.detail
        return f"{text}: {detail}" if detail else text

    @property
    def parallel_available(self) -> bool:
        """Whether requests can currently be served by the pool."""
        return self.workers > 1 and self._ladder.healthy

    @property
    def pool_running(self) -> bool:
        """Whether worker processes are actually up (pool started, live)."""
        return bool(self._procs) and self._ladder.healthy

    @property
    def _procs(self) -> List[Any]:
        """The live worker processes (current incarnations)."""
        if self._supervisor is None:
            return []
        return [proc for _, proc in sorted(self._supervisor.procs.items())]

    def health_report(self) -> Dict[str, object]:
        """Inspectable snapshot of the whole degradation machine.

        Keys: ``state`` / ``reason`` / ``detail`` / ``recoveries`` /
        ``incidents`` / ``transitions`` (from the ladder), ``workers``,
        ``mode`` (the resolved dispatch mode, or the requested ``"auto"``
        until the first query resolves it), ``pool`` (supervisor
        liveness, restart budget, quarantine count; None before first
        use), ``plane_generation`` and ``weights_disabled``.
        """
        report = self._ladder.report()
        report["workers"] = self.workers
        report["mode"] = self._mode_resolved or self.mode
        report["pool"] = (
            self._supervisor.report() if self._supervisor is not None else None
        )
        report["plane_generation"] = (
            self._plane.generation if self._plane is not None else None
        )
        report["weights_disabled"] = self._weights_disabled
        return report

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> bool:
        """Start (or recover) plane + workers; returns pool usability."""
        if self._ladder.halted:
            return False
        if not self._started:
            self._started = True
            if self.workers <= 1:
                self._ladder.degrade(DegradationReason.SINGLE_WORKER)
                return False
            if not shared_memory_available():
                self._ladder.degrade(DegradationReason.NO_SHM)
                return False
            return self._start_pool()
        if self._ladder.healthy:
            return self._supervisor is not None
        if self._ladder.can_attempt_recovery():
            return self._attempt_recovery()
        return False

    def _start_pool(self) -> bool:
        """Create plane, queues and supervised workers; arm the finalizer."""
        import multiprocessing

        try:
            ctx = multiprocessing.get_context(self._mp_method)
            self._ctx = ctx
            self._plane = SharedCSRPlane(self._plane_prefix)
            self._task_queue = ctx.Queue()
            self._result_queue = ctx.Queue()
            prefix = self._plane.prefix
            plan = self._fault_plan

            def spawn(index: int) -> Any:
                # Queues are read at spawn time, not captured: the
                # supervisor's reset hook replaces them on pool recycle.
                proc = ctx.Process(
                    target=worker_mod.worker_main,
                    args=(
                        self._task_queue,
                        self._result_queue,
                        prefix,
                        index,
                        plan.for_worker(index) if plan is not None else None,
                    ),
                    daemon=True,
                )
                proc.start()
                return proc

            kwargs: Dict[str, Any] = {"seed": self._supervisor_seed}
            if self._restart_budget is not None:
                kwargs["restart_budget"] = self._restart_budget
            self._supervisor = WorkerSupervisor(
                spawn, self.workers, reset=self._reset_queues, **kwargs
            )
            self._supervisor.start()
        except Exception as exc:  # pragma: no cover - depends on host
            self._ladder.degrade(
                DegradationReason.POOL_START_FAILED, str(exc), retry_delay=0.5
            )
            self._release_pool_resources()
            return False
        self._arm_finalizer()
        return True

    def _arm_finalizer(self) -> None:
        """(Re)register GC teardown over the current plane and queue set.

        The supervisor's procs dict is shared by reference, so respawned
        workers are always visible to the finalizer; the queues are *not*
        — they are replaced on pool recycle, hence the re-arm from
        :meth:`_reset_queues`.
        """
        assert self._supervisor is not None
        self._finalizer.detach()
        self._finalizer = weakref.finalize(
            self,
            _teardown,
            self._plane,
            self._task_queue,
            self._supervisor.procs,
            self.workers,
            self._weights,
        )

    def _reset_queues(self) -> None:
        """Replace the queue set (the supervisor's pool-recycle hook).

        A worker that dies blocked inside ``Queue.get()`` dies holding
        the queue's shared reader lock, wedging it for every future
        reader — only a fresh queue set is guaranteed usable by the
        respawned pool.
        """
        for stale in (self._task_queue, self._result_queue):
            if stale is None:
                continue
            try:
                stale.close()
                stale.cancel_join_thread()
            except Exception:  # repro-lint: disable=RPL304
                pass  # a broken queue is already as released as it gets
        self._task_queue = self._ctx.Queue()
        self._result_queue = self._ctx.Queue()
        if self._supervisor is not None:
            self._arm_finalizer()

    def _attempt_recovery(self) -> bool:
        """Try to return a DEGRADED executor to SHARDED."""
        if self._supervisor is None or self._plane is None:
            # Pool infrastructure was released (startup failure): rebuild.
            if self._start_pool():
                self._ladder.recover("pool restarted")
                return True
            return False
        outcome = self._supervisor.respawn_dead()
        if outcome == "exhausted":
            self._halt(
                DegradationReason.RESTART_BUDGET_EXHAUSTED,
                f"{self._supervisor.restarts_used} restarts used",
            )
            return False
        if outcome == "waiting":
            return False
        # Workers are up again (or never all died, e.g. after a publish
        # failure); recover optimistically — the next dispatch verifies.
        self._ladder.recover("worker pool healthy again")
        return True

    def _halt(self, reason: DegradationReason, detail: str = "") -> None:
        """Terminal degradation: record it and release every resource."""
        self._ladder.degrade(reason, detail)
        self._release_pool_resources()

    def _release_pool_resources(self) -> None:
        """Tear down pool infrastructure (idempotent, never raises)."""
        self._finalizer.detach()
        procs = self._supervisor.procs if self._supervisor is not None else {}
        _teardown(self._plane, self._task_queue, procs, self.workers, self._weights)
        self._plane = None
        self._task_queue = None
        self._result_queue = None
        self._supervisor = None
        self._weights = {}
        self._published_graph = None
        self._published_version = None
        self._finalizer = weakref.finalize(self, _noop)

    def close(self) -> None:
        """Stop the workers and unlink the plane (idempotent, crash-safe).

        Safe to call twice, after a failed ``__init__``, and concurrently
        with the GC finalizer — the finalizer is detached before teardown
        runs, and every teardown step tolerates already-released state.
        """
        if not hasattr(self, "_ladder"):  # __init__ died before any state
            return
        if getattr(self, "_thread_pool", None) is not None:
            self._thread_pool.shutdown(wait=True)
            self._thread_pool = None
        self._thread_clone_cache = {}
        self._release_pool_resources()
        self._ladder.degrade(DegradationReason.CLOSED)
        self._started = True

    # ------------------------------------------------------------------
    # Plane publication
    # ------------------------------------------------------------------
    def ensure_plane(self, graph: "TDNGraph") -> bool:
        """Publish ``graph``'s current epoch if the plane is stale.

        Returns whether the plane is usable.  Republishing happens at
        most once per graph version — the executor's epoch — so a stream
        of queries against an unchanged graph pays one O(V + P) snapshot
        build total, exactly like the serial engine's compaction.  A
        failed publish degrades *recoverably*: the epoch stamp is not
        advanced, so the next eligible request retries the publish and
        recovers to sharded mode when it succeeds.
        """
        if not self._ensure_pool():
            return False
        if (
            self._published_graph is not None
            and self._published_graph() is graph
            and self._published_version == graph.version
        ):
            return True
        assert self._plane is not None
        try:
            if self._fault_plan is not None and self._fault_plan.next_publish_fails():
                raise FaultInjected("injected fault: plane publish failed")
            self._plane.publish(graph)
        except (OSError, FaultInjected) as exc:
            self._ladder.degrade(
                DegradationReason.PUBLISH_FAILED, str(exc), retry_delay=0.05
            )
            return False
        self._published_graph = weakref.ref(graph)
        self._published_version = graph.version
        return True

    # ------------------------------------------------------------------
    # Dispatch machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _task_key(op: str, payload: Any, eff: float) -> Hashable:
        """Stable identity for quarantine strikes (survives retries)."""
        return (op, repr(payload), eff)

    def _dispatch(
        self,
        op: str,
        shards: Sequence[Tuple[Any, float]],
        serial_shard: Callable[[int], Any],
    ) -> List[Any]:
        """Send one task per shard; gather a *complete* result list.

        Unlike the pre-supervision executor this never returns ``None``:
        any shard the pool fails to answer — quarantined task, worker
        death past the restart backoff, reported error after one retry,
        missed deadline after one retry — is recomputed serially via
        ``serial_shard`` (the same kernel physics), so the caller always
        receives exact, complete results.  Worker deaths strike the
        claimed task and trigger supervised respawn; budget exhaustion is
        the only path that degrades terminally.
        """
        assert self._supervisor is not None and self._plane is not None
        supervisor = self._supervisor
        self._request_seq += 1
        request_id = self._request_seq
        generation = self._plane.generation
        total = len(shards)
        _DISPATCHES.inc()
        results: List[Any] = [None] * total
        filled = [False] * total
        keys = [self._task_key(op, payload, eff) for payload, eff in shards]
        outstanding: Set[int] = set()
        now = time.monotonic()
        deadlines: Dict[int, float] = {}
        retries: Dict[int, int] = {}
        claimed: Dict[int, int] = {}  # shard -> worker index holding it
        sent: Dict[int, float] = {}  # shard -> enqueue time (latency)

        def enqueue(shard_index: int) -> None:
            payload, eff = shards[shard_index]
            self._task_queue.put(
                (op, request_id, shard_index, generation, payload, eff)
            )
            sent[shard_index] = time.monotonic()
            deadlines[shard_index] = sent[shard_index] + self.task_timeout

        def fill_serial(shard_index: int) -> None:
            _SERIAL_FALLBACKS.inc()
            results[shard_index] = serial_shard(shard_index)
            filled[shard_index] = True
            outstanding.discard(shard_index)
            claimed.pop(shard_index, None)

        for index in range(total):
            if supervisor.is_quarantined(keys[index]):
                fill_serial(index)  # flagged poison: never re-enters the pool
            else:
                outstanding.add(index)
                retries[index] = 0
                enqueue(index)
        had_death = False
        global_deadline = now + self.result_timeout
        while outstanding:
            try:
                got_id, shard_index, outcome = self._result_queue.get(
                    timeout=_POLL_INTERVAL
                )
            except queue_mod.Empty:
                got_id = None
            if got_id is not None:
                status, value = outcome
                if status == "metrics":
                    # Worker-drained counter deltas.  Merged before the
                    # stale-request check: a drain advances the worker's
                    # high-water marks, so a dropped message would lose
                    # those counts forever.
                    metrics_registry().merge_counter_deltas(value)
                    continue
                if got_id != request_id or shard_index >= total:
                    continue  # stale result from an abandoned request
                if status == "started":
                    if not filled[shard_index]:
                        claimed[shard_index] = int(value)
                    continue
                if filled[shard_index]:
                    continue  # late first attempt after a retry already won
                if status == "ok":
                    results[shard_index] = value
                    filled[shard_index] = True
                    outstanding.discard(shard_index)
                    claimed.pop(shard_index, None)
                    received = time.monotonic()
                    sent_at = sent.get(shard_index)
                    if sent_at is not None:
                        _SHARD_LATENCY.observe(received - sent_at)
                    global_deadline = received + self.result_timeout
                    continue
                # Worker reported an error: one pool retry, then serial.
                reason = (
                    DegradationReason.ATTACH_TIMEOUT
                    if "attach" in str(value) or "generation skew" in str(value)
                    else DegradationReason.WORKER_ERROR
                )
                claimed.pop(shard_index, None)
                if retries[shard_index] < 1:
                    retries[shard_index] += 1
                    enqueue(shard_index)
                else:
                    fill_serial(shard_index)
                    self._ladder.note_incident(reason, str(value))
                continue
            # No result this poll: liveness + deadline round-trip.
            now = time.monotonic()
            dead = supervisor.dead_workers()
            if dead:
                had_death = True
                dead_set = set(dead)
                struck = [
                    s for s in sorted(outstanding) if claimed.get(s) in dead_set
                ]
                for index in struck:
                    strikes = supervisor.strike(keys[index])
                    claimed.pop(index, None)
                    if strikes >= QUARANTINE_STRIKES:
                        fill_serial(index)
                        self._ladder.note_incident(
                            DegradationReason.WORKER_DEATH,
                            f"task quarantined after {strikes} worker deaths",
                        )
                outcome_str = supervisor.respawn_dead(now)
                if outcome_str == "exhausted":
                    for index in sorted(outstanding):
                        fill_serial(index)
                    self._halt(
                        DegradationReason.RESTART_BUDGET_EXHAUSTED,
                        f"{supervisor.restarts_used} restarts used",
                    )
                    return results
                if outcome_str == "ok":
                    self._ladder.note_incident(
                        DegradationReason.WORKER_DEATH,
                        f"respawned worker(s) {dead}",
                    )
                    # The pool was recycled onto fresh queues: every
                    # outstanding task (and any in-flight result) lived
                    # on the old set, so re-enqueue the lot.
                    claimed.clear()
                    for index in sorted(outstanding):
                        enqueue(index)
                    global_deadline = time.monotonic() + self.result_timeout
                elif not any(p.is_alive() for p in supervisor.procs.values()):
                    # Whole pool down and the respawn backoff is pending:
                    # answer this request serially and mark the executor
                    # DEGRADED so later requests skip dispatch until the
                    # supervisor may respawn (recovery in _ensure_pool).
                    for index in sorted(outstanding):
                        fill_serial(index)
                    self._ladder.degrade(
                        DegradationReason.WORKER_DEATH,
                        "all workers dead; respawn backoff pending",
                        retry_delay=_POLL_INTERVAL,
                    )
                    return results
                else:
                    # Backoff pending but survivors remain: hand the
                    # shards the dead consumed back to the old queue.
                    for index in struck:
                        if index in outstanding:
                            enqueue(index)
            for index in sorted(outstanding):
                if now > deadlines[index]:
                    if retries[index] < 1:
                        retries[index] += 1
                        claimed.pop(index, None)
                        enqueue(index)
                    else:
                        fill_serial(index)
                        self._ladder.note_incident(
                            DegradationReason.TASK_TIMEOUT,
                            f"shard exceeded {self.task_timeout:.2f}s twice",
                        )
            if now > global_deadline:
                # Alive but wedged (stuck attach, lost message): answer
                # serially rather than hang the owner; recoverable.
                for index in sorted(outstanding):
                    fill_serial(index)
                self._ladder.degrade(
                    DegradationReason.TASK_TIMEOUT,
                    f"no worker result within {self.result_timeout:.0f}s "
                    "(raise result_timeout / REPRO_RESULT_TIMEOUT for "
                    "legitimately long sweeps)",
                    retry_delay=1.0,
                )
                return results
        if not had_death:
            supervisor.note_success()
        return results

    @staticmethod
    def _effective_horizon(graph: "TDNGraph", min_expiry: Optional[float]) -> float:
        """The serial engine's ``t + 1`` clamp, resolved owner-side."""
        floor = float(graph.time + 1)
        if min_expiry is None or min_expiry < floor:
            return floor
        return min_expiry

    def _parallel_ready(self, graph: "TDNGraph", batch_size: int) -> bool:
        return (
            self.workers > 1
            and batch_size >= self.min_batch
            and self.ensure_plane(graph)
        )

    # ------------------------------------------------------------------
    # Thread-mode dispatch (the native backend's degradation-ladder rung)
    # ------------------------------------------------------------------
    def _resolve_mode(self) -> str:
        """The dispatch mode actually in force (cached after first use)."""
        if self._mode_resolved is None:
            if self.mode == "auto":
                self._mode_resolved = (
                    "threads"
                    if resolve_backend(None) == "native"
                    else "processes"
                )
            else:
                self._mode_resolved = self.mode
        return self._mode_resolved

    def _threads_ready(self, batch_size: int) -> bool:
        """Whether this request should shard over the in-process pool."""
        if self._resolve_mode() != "threads" or batch_size < self.min_batch:
            return False
        if self._ladder.halted:
            return False
        if self.workers <= 1:
            if not self._started:
                self._started = True
                self._ladder.degrade(DegradationReason.SINGLE_WORKER)
            return False
        if self._thread_pool is None:
            self._thread_pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-shard"
            )
            self._started = True
        return True

    def _thread_kernels(
        self, graph: "TDNGraph", reverse: bool
    ) -> List["TraversalKernel"]:
        """Per-thread kernel clones of ``graph``'s current engine epoch.

        Clones share the engine's (query-immutable) CSR arrays, overlay
        and resolved backend but own their visited buffers, so
        concurrent sweeps cannot trample each other.  The cache is keyed
        on graph identity (a weakref, same honesty argument as the
        published-plane stamp) plus version: any mutation invalidates
        it, and ``graph.csr()`` runs first so compaction has already
        happened when the clones are cut.  For reverse sweeps the
        transpose is built once, owner-side, and shared by every clone —
        unlike process workers, which each rebuild it per generation.
        """
        engine = graph.csr()
        cached = self._thread_clone_cache.get(reverse)
        if cached is not None:
            graph_ref, version, clones = cached
            if (
                graph_ref() is graph
                and version == graph.version
                and len(clones) >= self.workers
            ):
                return clones
        clones = [engine.kernel_clone(reverse) for _ in range(self.workers)]
        self._thread_clone_cache[reverse] = (
            weakref.ref(graph),
            graph.version,
            clones,
        )
        return clones

    @staticmethod
    def _timed_shard(
        run_shard: Callable[[int], Any], index: int
    ) -> Tuple[Any, float]:
        started = time.monotonic()
        return run_shard(index), time.monotonic() - started

    def _dispatch_threads(
        self,
        num_shards: int,
        run_shard: Callable[[int], Any],
        serial_shard: Callable[[int], Any],
    ) -> List[Any]:
        """Fan shards out over the in-process thread pool.

        The jitted fixpoints run with the GIL released, so shards
        genuinely overlap on separate cores; there is no pickling, no
        plane publish and no liveness protocol — threads cannot die
        without the whole process dying.  The one remaining failure
        mode, a shard raising (or missing the whole-request deadline),
        is recomputed serially through the same kernel physics and
        counted as a THREAD_ERROR incident, so the caller always
        receives exact, complete results.
        """
        assert self._thread_pool is not None
        _DISPATCHES.inc()
        futures = [
            self._thread_pool.submit(self._timed_shard, run_shard, index)
            for index in range(num_shards)
        ]
        results: List[Any] = []
        for index, future in enumerate(futures):
            try:
                value, elapsed = future.result(timeout=self.result_timeout)
                _SHARD_LATENCY.observe(elapsed)
            except Exception as exc:
                _SERIAL_FALLBACKS.inc()
                self._ladder.note_incident(
                    DegradationReason.THREAD_ERROR,
                    f"{type(exc).__name__}: {exc}",
                )
                value = serial_shard(index)
            results.append(value)
        return results

    # ------------------------------------------------------------------
    # Query API (mirrors the serial DeltaCSR surface)
    # ------------------------------------------------------------------
    def spread_counts(
        self,
        graph: "TDNGraph",
        id_sets: Sequence[Sequence[int]],
        min_expiry: Optional[float] = None,
    ) -> List[int]:
        """Per-set reachable counts; sharded when profitable, exact always."""
        if not id_sets:
            return []
        if self._threads_ready(len(id_sets)):
            eff = self._effective_horizon(graph, min_expiry)
            slices = shard_slices(len(id_sets), self.workers)
            clones = self._thread_kernels(graph, reverse=False)
            results = self._dispatch_threads(
                len(slices),
                lambda i: clones[i].spread_counts(
                    list(id_sets[slices[i][0] : slices[i][1]]), eff
                ),
                lambda i: graph.csr().spread_counts(
                    list(id_sets[slices[i][0] : slices[i][1]]), min_expiry
                ),
            )
            return merge_shard_counts(slices, results, len(id_sets))
        if self._parallel_ready(graph, len(id_sets)):
            eff = self._effective_horizon(graph, min_expiry)
            slices = shard_slices(len(id_sets), self.workers)
            shards = [(list(id_sets[start:stop]), eff) for start, stop in slices]
            results = self._dispatch(
                worker_mod.OP_SPREAD,
                shards,
                lambda i: graph.csr().spread_counts(
                    list(id_sets[slices[i][0] : slices[i][1]]), min_expiry
                ),
            )
            return merge_shard_counts(slices, results, len(id_sets))
        return graph.csr().spread_counts(id_sets, min_expiry)

    def reachable_ids_many(
        self,
        graph: "TDNGraph",
        id_sets: Sequence[Sequence[int]],
        min_expiry: Optional[float] = None,
    ) -> List[Set[int]]:
        """Per-set reachable id sets (weighted oracle's batch evaluation)."""
        if not id_sets:
            return []
        if self._threads_ready(len(id_sets)):
            eff = self._effective_horizon(graph, min_expiry)
            slices = shard_slices(len(id_sets), self.workers)
            clones = self._thread_kernels(graph, reverse=False)
            results = self._dispatch_threads(
                len(slices),
                lambda i: [
                    clones[i].reachable_ids(ids, eff)
                    for ids in id_sets[slices[i][0] : slices[i][1]]
                ],
                lambda i: [
                    graph.csr().reachable_ids(ids, min_expiry)
                    for ids in id_sets[slices[i][0] : slices[i][1]]
                ],
            )
            return merge_shard_counts(slices, results, len(id_sets))
        if self._parallel_ready(graph, len(id_sets)):
            eff = self._effective_horizon(graph, min_expiry)
            slices = shard_slices(len(id_sets), self.workers)
            shards = [(list(id_sets[start:stop]), eff) for start, stop in slices]

            def serial_shard(i: int) -> List[List[int]]:
                engine = graph.csr()
                start, stop = slices[i]
                return [
                    sorted(engine.reachable_ids(ids, min_expiry))
                    for ids in id_sets[start:stop]
                ]

            results = self._dispatch(worker_mod.OP_REACH, shards, serial_shard)
            merged = merge_shard_counts(slices, results, len(id_sets))
            return [set(ids) for ids in merged]
        engine = graph.csr()
        return [engine.reachable_ids(ids, min_expiry) for ids in id_sets]

    def _ensure_weights(
        self, weights_key: str, weights: "np.ndarray"
    ) -> Optional[SharedWeights]:
        """Publish ``weights`` under ``weights_key`` if the copy is stale.

        The dense weight array is append-only (its prefix never changes),
        so its length *is* its epoch: republication happens only when the
        array grew since the last publish for this key.  A publish
        failure disables only the *weighted* parallel path (one warning;
        callers evaluate serially, never with partial state) — unweighted
        sharding keeps working, so a host quirk in one segment family
        cannot poison the whole executor.
        """
        if self._weights_disabled is not None:
            return None
        assert self._plane is not None
        record = self._weights.get(weights_key)
        if record is not None and record.length == int(weights.shape[0]):
            return record
        self._weights_seq += 1
        name = weights_segment_name(self._plane.prefix, self._weights_seq)
        try:
            fresh = SharedWeights(name, weights)
        except OSError as exc:
            self._weights_disabled = str(exc)
            warnings.warn(
                f"weights publish failed ({exc}); weighted evaluation "
                "running serially (unweighted sharding unaffected)",
                RuntimeWarning,
                stacklevel=4,
            )
            return None
        if record is not None:
            record.close()
        self._weights[weights_key] = fresh
        return fresh

    def release_weights(self, weights_key: str) -> None:
        """Unlink the weight segment published under ``weights_key``.

        Called by a :class:`~repro.influence.weighted.
        WeightedInfluenceOracle` when it is closed or collected, so a
        long-lived shared executor serving many short-lived weighted
        oracles does not accumulate one O(V) segment per oracle until
        teardown.  Safe to call for keys never published (no-op); a
        worker still holding the stale mapping keeps it valid until it
        re-attaches, exactly as with superseded plane generations.
        """
        record = self._weights.pop(weights_key, None)
        if record is not None:
            record.close()

    def weighted_spread_sums(
        self,
        graph: "TDNGraph",
        id_sets: Sequence[Sequence[int]],
        min_expiry: Optional[float] = None,
        *,
        weights: "np.ndarray",
        weights_key: str,
    ) -> List[float]:
        """Per-set reached-weight sums; sharded when profitable, exact always.

        ``weights`` is the oracle's dense id-indexed float64 array and
        ``weights_key`` a stable per-oracle token; the array is published
        into shared memory once per weights epoch (see
        :meth:`_ensure_weights`) and workers fold it over their shard's
        bit-plane sweeps, returning 64-wide weight sums — per-set float
        lists — instead of whole reachable-id sets.  The kernel's
        canonical ascending-id summation makes shard results bit-identical
        to the serial engine's.
        """
        if not id_sets:
            return []
        if self._threads_ready(len(id_sets)):
            # Threads read the owner's dense array directly — no shared
            # memory publish, so the weights-disabled latch never applies.
            eff = self._effective_horizon(graph, min_expiry)
            slices = shard_slices(len(id_sets), self.workers)
            clones = self._thread_kernels(graph, reverse=False)
            results = self._dispatch_threads(
                len(slices),
                lambda i: clones[i].weighted_spread_sums(
                    list(id_sets[slices[i][0] : slices[i][1]]), eff, weights
                ),
                lambda i: graph.csr().weighted_spread_sums(
                    list(id_sets[slices[i][0] : slices[i][1]]),
                    min_expiry,
                    weights,
                ),
            )
            return merge_shard_counts(slices, results, len(id_sets))
        if self._parallel_ready(graph, len(id_sets)):
            record = self._ensure_weights(weights_key, weights)
            if record is not None:
                eff = self._effective_horizon(graph, min_expiry)
                slices = shard_slices(len(id_sets), self.workers)
                shards = [
                    (
                        (
                            list(id_sets[start:stop]),
                            weights_key,
                            record.name,
                            record.length,
                        ),
                        eff,
                    )
                    for start, stop in slices
                ]
                results = self._dispatch(
                    worker_mod.OP_WSPREAD,
                    shards,
                    lambda i: graph.csr().weighted_spread_sums(
                        list(id_sets[slices[i][0] : slices[i][1]]),
                        min_expiry,
                        weights,
                    ),
                )
                return merge_shard_counts(slices, results, len(id_sets))
        return graph.csr().weighted_spread_sums(id_sets, min_expiry, weights)

    def fold_spread_sums(
        self,
        graph: "TDNGraph",
        id_sets: Sequence[Sequence[int]],
        min_expiry: Optional[float] = None,
        *,
        fold: Fold,
    ) -> List[float]:
        """Per-set fold scores; sharded when profitable, exact always.

        The fold crosses the pipe as its picklable ``(name, params)``
        spec — a few bytes per task message — and workers rebuild it via
        the same registry the owner resolved it from, so owner and worker
        can never disagree about what a semantics name means.  Derived
        node values (``time_decay``) are recomputed worker-side from the
        mapped plane arrays; the derivation is elementwise over the same
        float64 inputs the serial engine sees, which keeps sharded fold
        scores bit-identical to serial ones.  Weight-carrying folds
        (``weighted_sum``) stay on :meth:`weighted_spread_sums` — this
        path never ships dense arrays through the task queue.
        """
        fold = resolve_fold(fold)
        if not id_sets:
            return []
        if self._threads_ready(len(id_sets)):
            # Derived node values (time_decay) are computed once,
            # owner-side, from the same engine every clone shares — the
            # elementwise derivation process workers repeat per shard.
            eff = self._effective_horizon(graph, min_expiry)
            node_values = (
                graph.csr().fold_node_values(fold, min_expiry)
                if fold.derives_node_values
                else None
            )
            slices = shard_slices(len(id_sets), self.workers)
            clones = self._thread_kernels(graph, reverse=False)
            results = self._dispatch_threads(
                len(slices),
                lambda i: fold.batch(
                    clones[i],
                    list(id_sets[slices[i][0] : slices[i][1]]),
                    eff,
                    node_values,
                ),
                lambda i: graph.csr().fold_spread_sums(
                    list(id_sets[slices[i][0] : slices[i][1]]),
                    min_expiry,
                    fold,
                ),
            )
            return merge_shard_counts(slices, results, len(id_sets))
        if self._parallel_ready(graph, len(id_sets)):
            eff = self._effective_horizon(graph, min_expiry)
            slices = shard_slices(len(id_sets), self.workers)
            spec = fold.spec()
            shards = [
                ((list(id_sets[start:stop]), spec), eff)
                for start, stop in slices
            ]
            results = self._dispatch(
                worker_mod.OP_FSPREAD,
                shards,
                lambda i: graph.csr().fold_spread_sums(
                    list(id_sets[slices[i][0] : slices[i][1]]),
                    min_expiry,
                    fold,
                ),
            )
            return merge_shard_counts(slices, results, len(id_sets))
        return graph.csr().fold_spread_sums(id_sets, min_expiry, fold)

    def ancestor_ids(
        self,
        graph: "TDNGraph",
        target_ids: Iterable[int],
        min_expiry: Optional[float] = None,
    ) -> Set[int]:
        """Shard-merged reverse sweep: ancestors distribute over seed union."""
        targets = sorted(set(target_ids))
        if not targets:
            return set()
        # Thread mode uses the ordinary forward floor, not the steep
        # ancestor one: the transpose the process floor prices in is
        # built once owner-side and shared by every clone.
        if self._threads_ready(len(targets)):
            eff = self._effective_horizon(graph, min_expiry)
            slices = shard_slices(len(targets), self.workers)
            clones = self._thread_kernels(graph, reverse=True)
            results = self._dispatch_threads(
                len(slices),
                lambda i: clones[i].reachable_ids(
                    targets[slices[i][0] : slices[i][1]], eff
                ),
                lambda i: graph.csr().ancestor_ids(
                    targets[slices[i][0] : slices[i][1]], min_expiry
                ),
            )
            merged_ids: Set[int] = set()
            for shard_ids in results:
                merged_ids.update(shard_ids)
            return merged_ids
        if len(targets) >= self.ancestor_min_batch and self._parallel_ready(
            graph, len(targets)
        ):
            eff = self._effective_horizon(graph, min_expiry)
            slices = shard_slices(len(targets), self.workers)
            shards = [(targets[start:stop], eff) for start, stop in slices]
            results = self._dispatch(
                worker_mod.OP_ANCESTORS,
                shards,
                lambda i: sorted(
                    graph.csr().ancestor_ids(
                        targets[slices[i][0] : slices[i][1]], min_expiry
                    )
                ),
            )
            merged: Set[int] = set()
            for shard_ids in results:
                merged.update(shard_ids)
            return merged
        return graph.csr().ancestor_ids(targets, min_expiry)

    def touched_cone_ids(self, graph: "TDNGraph", seed_ids: Iterable[int]) -> Set[int]:
        """Dirty-cone closure (memo eviction / SIEVEADN candidate reuse)."""
        return self.ancestor_ids(graph, seed_ids, None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self.degraded or ("running" if self._procs else "idle")
        return f"ShardedOracleExecutor(workers={self.workers}, state={state!r})"


def _noop() -> None:
    pass


def _teardown(
    plane: Optional[SharedCSRPlane],
    task_queue: Any,
    procs: Any,
    workers: int,
    weight_segments: Optional[Dict[str, SharedWeights]] = None,
) -> None:
    """Best-effort pool shutdown shared by close() and the GC finalizer.

    ``procs`` is the supervisor's live process table (a dict shared by
    reference, so respawned workers are covered) or a plain list; it is
    emptied afterwards so a second teardown — double close(), or the
    finalizer racing an explicit close — is a clean no-op.
    """
    if isinstance(procs, dict):
        proc_list = [proc for _, proc in sorted(procs.items())]
    else:
        proc_list = list(procs)
    if task_queue is not None:
        for _ in range(max(workers, len(proc_list))):
            try:
                task_queue.put((worker_mod.OP_STOP,))
            except Exception:  # repro-lint: disable=RPL304
                break  # queue already broken; terminate below instead
    for proc in proc_list:
        proc.join(timeout=5.0)
    for proc in proc_list:
        if proc.is_alive():  # pragma: no cover - stuck worker
            proc.terminate()
            proc.join(timeout=5.0)
    if isinstance(procs, dict):
        procs.clear()
    if task_queue is not None:
        try:
            task_queue.close()
            task_queue.join_thread()
        except Exception:  # repro-lint: disable=RPL304
            pass  # teardown is best-effort; nothing to surface to
    if weight_segments:
        for record in list(weight_segments.values()):
            record.close()
        weight_segments.clear()
    if plane is not None:
        plane.close()
