"""Async ingestion front door: batched ingest, epoch publication, top-k serving.

:class:`IngestService` turns a synchronous :class:`~repro.core.tracker.
InfluenceTracker` into a small always-on service:

* producers ``await submit(t, interactions)`` — batches land on a bounded
  queue, so a slow tracker exerts *backpressure* on fast producers
  instead of buffering unboundedly;
* one consumer loop applies batches in order on a single worker thread
  (the TDN graph and trackers are single-writer structures), advances the
  service **epoch** after each batch, and republishes the shared-memory
  CSR plane when the tracker's oracle runs a sharded executor — so pool
  workers always map the last *consistent* graph;
* ``await top_k()`` answers immediately from the last consistent epoch's
  solution — queries never block behind ingestion and never observe a
  half-applied batch.

The apply thread is the only writer; the event loop only moves immutable
:class:`TopKAnswer` records, so any number of concurrent producers and
queriers is safe.  See ``examples/serve_topk.py`` for a runnable tour.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Iterable, NamedTuple, Optional, Sequence, Tuple

__all__ = ["IngestService", "TopKAnswer"]

_STOP = object()


class TopKAnswer(NamedTuple):
    """One consistent query answer: the epoch it refers to and its solution."""

    epoch: int
    time: int
    nodes: Tuple
    value: float


class IngestService:
    """Asyncio wrapper that serves a tracker under concurrent load.

    Args:
        tracker: an :class:`~repro.core.tracker.InfluenceTracker` (or any
            object with ``step(t, batch)`` returning a Solution, a
            ``graph``, and an ``oracle``).  The service becomes its sole
            driver — do not call ``step`` elsewhere while it runs.
        max_pending: bound of the ingest queue; :meth:`submit` awaits
            (backpressure) while the queue is full.

    Usage::

        service = IngestService(tracker, max_pending=32)
        await service.start()
        await service.submit(t, [("u", "v", 5), ...])
        answer = await service.top_k()
        await service.close()
    """

    def __init__(self, tracker: Any, *, max_pending: int = 64) -> None:
        if max_pending <= 0:
            raise ValueError(f"max_pending must be positive, got {max_pending}")
        self._tracker = tracker
        self._max_pending = max_pending
        self._queue: Optional[asyncio.Queue] = None
        self._consumer: Optional[asyncio.Task] = None
        # One thread = one writer: batches apply strictly in submit order.
        self._apply_thread = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-ingest"
        )
        self._latest = TopKAnswer(epoch=0, time=0, nodes=(), value=0.0)
        self._failure: Optional[BaseException] = None
        self._closed = False
        self.batches_applied = 0

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Epochs advance once per applied batch; 0 = nothing ingested."""
        return self._latest.epoch

    @property
    def running(self) -> bool:
        return self._consumer is not None and not self._consumer.done()

    @property
    def pending(self) -> int:
        """Batches accepted but not yet applied."""
        return self._queue.qsize() if self._queue is not None else 0

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the consumer loop (idempotent; refuses a closed service).

        A closed service's single-writer apply thread is gone for good —
        restarting would accept batches and then fail every one of them,
        so the error is raised here, at the first wrong call.
        """
        if self._closed:
            raise RuntimeError("service is closed; construct a new IngestService")
        if self.running:
            return
        self._queue = asyncio.Queue(maxsize=self._max_pending)
        self._consumer = asyncio.get_running_loop().create_task(self._consume())

    async def submit(self, t: int, interactions: Iterable) -> None:
        """Enqueue one batch; awaits while the queue is full (backpressure)."""
        self._check_failure()
        if self._closed:
            raise RuntimeError("service is closed; batch rejected")
        if not self.running:
            raise RuntimeError("service is not running; call start() first")
        await self._queue.put((t, list(interactions)))

    async def top_k(self) -> TopKAnswer:
        """The last consistent epoch's solution (never blocks on ingestion)."""
        self._check_failure()
        return self._latest

    async def drain(self) -> TopKAnswer:
        """Wait until every accepted batch is applied; returns the answer."""
        self._check_failure()
        if self._queue is not None:
            await self._queue.join()
        self._check_failure()
        return self._latest

    async def close(self) -> None:
        """Drain, stop the consumer, release the apply thread.

        Raises the recorded consumer failure (after releasing every
        resource) so a ``submit ... close`` caller cannot mistake a run
        whose tail batches were discarded for a successful one.
        """
        self._closed = True
        if self._queue is not None and self.running:
            await self._queue.put((_STOP, None))
            await self._consumer
        self._consumer = None
        # shutdown(wait=True) joins the apply thread; run it off-loop so
        # close() never stalls the event loop on a slow final batch.
        await asyncio.get_running_loop().run_in_executor(
            None, self._apply_thread.shutdown
        )
        self._check_failure()

    # ------------------------------------------------------------------
    async def _consume(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            t, batch = await self._queue.get()
            try:
                if t is _STOP:
                    # Acknowledge anything racing in behind the sentinel
                    # (a submit that passed its closed-check just before
                    # close() set the flag) so queue.join() never hangs.
                    while True:
                        try:
                            self._queue.get_nowait()
                        except asyncio.QueueEmpty:
                            break
                        self._queue.task_done()
                    return
                if self._failure is not None:
                    # Poisoned: discard the backlog (the finally still
                    # acknowledges each item) so an in-flight drain()'s
                    # queue.join() resolves and blocked submitters wake
                    # up — both then observe the failure via
                    # _check_failure instead of hanging forever.
                    continue
                try:
                    answer = await loop.run_in_executor(
                        self._apply_thread, self._apply, t, batch
                    )
                except asyncio.CancelledError:
                    # Event-loop shutdown cancelling this task is not an
                    # ingest failure — propagate so the loop can finish.
                    raise
                except BaseException as exc:
                    # Surface the failure to every subsequent caller
                    # instead of dying silently inside the task.
                    self._failure = exc
                    continue
                self._latest = answer
                self.batches_applied += 1
            finally:
                self._queue.task_done()

    def _apply(self, t: int, batch: Sequence[Tuple]) -> TopKAnswer:
        """Apply one batch on the writer thread; returns the new epoch's answer."""
        solution = self._tracker.step(t, batch)
        self._republish()
        return TopKAnswer(
            epoch=self._latest.epoch + 1,
            time=solution.time,
            nodes=tuple(solution.nodes),
            value=float(solution.value),
        )

    def _republish(self) -> None:
        """Republish the CSR plane for the new epoch (sharded oracles only).

        Only once the pool is actually running: eagerly spawning workers
        (or publishing generations nobody maps) for a stream whose
        sweeps all fall below the executor's dispatch floor would pay an
        O(V + P) snapshot per batch for nothing.  Dispatch re-checks the
        plane against ``graph.version`` anyway; this merely keeps a live
        pool's plane warm so epoch-N query traffic never pays the
        publish inside a query.
        """
        oracle = getattr(self._tracker, "oracle", None)
        executor = getattr(oracle, "executor", None)
        if executor is not None and executor.pool_running:
            executor.ensure_plane(self._tracker.graph)

    def _check_failure(self) -> None:
        if self._failure is not None:
            raise RuntimeError(
                f"ingest consumer failed: {self._failure!r}"
            ) from self._failure
