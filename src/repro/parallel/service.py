"""Async ingestion front door: batched ingest, epoch publication, top-k serving.

:class:`IngestService` turns a synchronous :class:`~repro.core.tracker.
InfluenceTracker` into a small always-on service:

* producers ``await submit(t, interactions)`` — batches land on a bounded
  queue, so a slow tracker exerts *backpressure* on fast producers
  instead of buffering unboundedly;
* one consumer loop applies batches in order on a single worker thread
  (the TDN graph and trackers are single-writer structures), advances the
  service **epoch** after each batch, and republishes the shared-memory
  CSR plane when the tracker's oracle runs a sharded executor — so pool
  workers always map the last *consistent* graph;
* ``await top_k()`` answers immediately from the last consistent epoch's
  solution — queries never block behind ingestion and never observe a
  half-applied batch.

Failure handling
----------------
Batches are *journaled* with sequence numbers from the moment the
consumer dequeues them until their epoch publishes (``_latest`` is
assigned only after ``tracker.step`` and the plane republish complete).
If the single writer thread dies (detected as :class:`WriterDeathError`
or a broken thread pool), the service restarts the writer — within a
bounded restart budget — and replays the journal's unapplied entries in
order; because an entry leaves the journal only at its commit point,
replay can never double-apply a batch, and ``top_k`` can never observe a
half-applied epoch.  Republish failures are retried with backoff on the
writer thread before the executor is left to its own degradation
machinery.  While the service is degraded (poisoned consumer or writer
mid-recovery), ``top_k`` keeps answering from the last consistent epoch
but says so: the answer carries ``stale=True`` and the number of
unapplied batches in ``lag``.  :meth:`health` exposes the whole picture.

The apply thread is the only writer; the event loop only moves immutable
:class:`TopKAnswer` records, so any number of concurrent producers and
queriers is safe.  See ``examples/serve_topk.py`` for a runnable tour.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor
from typing import Any, Deque, Dict, Iterable, NamedTuple, Optional, Sequence, Tuple

from repro.errors import ConfigError, DegradedExecutionError
from repro.obs import names as metric_names
from repro.obs.registry import MetricsRegistry, metrics_registry
from repro.parallel.degradation import DegradationLadder, DegradationReason
from repro.parallel.faults import FaultPlan

__all__ = ["IngestService", "TopKAnswer", "WriterDeathError"]

_STOP = object()

#: Default writer-thread restarts allowed before the service poisons.
WRITER_RESTART_BUDGET = 3


class WriterDeathError(RuntimeError):
    """The apply (writer) thread died before committing a batch.

    Raised *before* ``tracker.step`` mutates anything — by the fault
    harness, or by wrappers detecting an unusable writer — so the batch
    is still journaled, untouched, and safe to replay on a fresh writer.
    """


class TopKAnswer(NamedTuple):
    """One consistent query answer: the epoch it refers to and its solution.

    ``stale`` / ``lag`` are staleness metadata stamped at *query* time:
    a degraded service keeps serving the last consistent epoch but marks
    it stale and reports how many accepted batches it has not applied.
    Answers published at commit time always carry the defaults.
    """

    epoch: int
    time: int
    nodes: Tuple
    value: float
    stale: bool = False
    lag: int = 0


class IngestService:
    """Asyncio wrapper that serves a tracker under concurrent load.

    Args:
        tracker: an :class:`~repro.core.tracker.InfluenceTracker` (or any
            object with ``step(t, batch)`` returning a Solution, a
            ``graph``, and an ``oracle``).  The service becomes its sole
            driver — do not call ``step`` elsewhere while it runs.
        max_pending: bound of the ingest queue; :meth:`submit` awaits
            (backpressure) while the queue is full.
        writer_restart_budget: writer-thread restarts allowed before the
            service gives up and poisons (surfaced to every caller).
        fault_plan: injected fault schedule (chaos tests); defaults to
            :meth:`FaultPlan.from_env` (``REPRO_FAULTS``), i.e. no faults.
        metrics: the :class:`~repro.obs.registry.MetricsRegistry` the
            service records into — queue depth, epoch, epoch lag,
            batch-apply and republish timings.  Defaults to the process
            registry (:func:`repro.obs.metrics_registry`), which is what
            a scrape endpoint will read; pass a private registry to
            isolate one service's series (tests do).

    Usage::

        service = IngestService(tracker, max_pending=32)
        await service.start()
        await service.submit(t, [("u", "v", 5), ...])
        answer = await service.top_k()
        await service.close()
    """

    def __init__(
        self,
        tracker: Any,
        *,
        max_pending: int = 64,
        writer_restart_budget: int = WRITER_RESTART_BUDGET,
        fault_plan: Optional[FaultPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_pending <= 0:
            raise ConfigError(f"max_pending must be positive, got {max_pending}")
        self._tracker = tracker
        self._max_pending = max_pending
        self.metrics = metrics_registry() if metrics is None else metrics
        self._queue_depth = self.metrics.gauge(metric_names.INGEST_QUEUE_DEPTH)
        self._epoch_gauge = self.metrics.gauge(metric_names.INGEST_EPOCH)
        self._lag_gauge = self.metrics.gauge(metric_names.INGEST_EPOCH_LAG)
        self._lag_hist = self.metrics.histogram(
            metric_names.INGEST_EPOCH_LAG_BATCHES
        )
        self._apply_hist = self.metrics.histogram(
            metric_names.INGEST_BATCH_APPLY_SECONDS
        )
        self._republish_hist = self.metrics.histogram(
            metric_names.INGEST_REPUBLISH_SECONDS
        )
        self._batches_counter = self.metrics.counter(
            metric_names.INGEST_BATCHES_APPLIED_TOTAL
        )
        self._queue: Optional[asyncio.Queue] = None
        self._consumer: Optional[asyncio.Task] = None
        # One thread = one writer: batches apply strictly in submit order.
        self._apply_thread = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-ingest"
        )
        self._latest = TopKAnswer(epoch=0, time=0, nodes=(), value=0.0)
        self._failure: Optional[BaseException] = None
        self._closed = False
        self.batches_applied = 0
        self._ladder = DegradationLadder()
        self._fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self._writer_faults_fired: "set[int]" = set()
        self._writer_restart_budget = max(0, writer_restart_budget)
        self._writer_restarts = 0
        # Sequence-numbered journal of dequeued-but-uncommitted batches.
        # An entry is appended when the consumer picks the batch up and
        # popped only once its epoch publishes, so writer recovery can
        # replay exactly the unapplied work — never more, never less.
        self._seq = 0
        self._journal: Deque[Tuple[int, int, Sequence[Tuple]]] = deque()

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Epochs advance once per applied batch; 0 = nothing ingested."""
        return self._latest.epoch

    @property
    def running(self) -> bool:
        return self._consumer is not None and not self._consumer.done()

    @property
    def pending(self) -> int:
        """Batches waiting in the ingest queue (bounded by ``max_pending``)."""
        return self._queue.qsize() if self._queue is not None else 0

    @property
    def _unapplied(self) -> int:
        """Batches accepted but not yet committed (queued + journaled)."""
        return self.pending + len(self._journal)

    def health(self) -> Dict[str, object]:
        """Inspectable service health (mirrors ``executor.health_report``).

        Keys: ``running`` / ``closed`` / ``epoch`` / ``pending`` /
        ``journal_depth``, ``writer_restarts`` + ``writer_restart_budget``,
        ``failure`` (repr of the poisoning exception, or None), the
        service ladder's ``state`` / ``incidents``, and ``executor``
        (the sharded executor's full health report, when one is wired).
        """
        ladder = self._ladder.report()
        oracle = getattr(self._tracker, "oracle", None)
        executor = getattr(oracle, "executor", None)
        return {
            "running": self.running,
            "closed": self._closed,
            "epoch": self.epoch,
            "pending": self.pending,
            "journal_depth": len(self._journal),
            "writer_restarts": self._writer_restarts,
            "writer_restart_budget": self._writer_restart_budget,
            "failure": repr(self._failure) if self._failure is not None else None,
            "state": ladder["state"],
            "incidents": ladder["incidents"],
            "executor": (
                executor.health_report()
                if executor is not None and hasattr(executor, "health_report")
                else None
            ),
        }

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Start the consumer loop (idempotent; refuses a closed service).

        A closed service's single-writer apply thread is gone for good —
        restarting would accept batches and then fail every one of them,
        so the error is raised here, at the first wrong call.
        """
        if self._closed:
            raise DegradedExecutionError("service is closed; construct a new IngestService")
        if self.running:
            return
        self._queue = asyncio.Queue(maxsize=self._max_pending)
        self._consumer = asyncio.get_running_loop().create_task(self._consume())

    async def submit(self, t: int, interactions: Iterable) -> None:
        """Enqueue one batch; awaits while the queue is full (backpressure)."""
        self._check_failure()
        if self._closed:
            raise DegradedExecutionError("service is closed; batch rejected")
        if not self.running:
            raise DegradedExecutionError("service is not running; call start() first")
        await self._queue.put((t, list(interactions)))
        self._queue_depth.set(self.pending)
        self._lag_gauge.set(self._unapplied)

    async def top_k(self) -> TopKAnswer:
        """The last consistent epoch's solution (never blocks on ingestion).

        Degradation never silently serves stale data: when the consumer
        is poisoned or the writer is mid-recovery, the answer is still
        the last *fully applied* epoch, but flagged ``stale=True`` with
        the count of unapplied batches in ``lag``.
        """
        if self._failure is not None or not self._ladder.healthy:
            return self._latest._replace(stale=True, lag=self._unapplied)
        return self._latest

    async def drain(self) -> TopKAnswer:
        """Wait until every accepted batch is applied; returns the answer."""
        self._check_failure()
        if self._queue is not None:
            await self._queue.join()
        self._check_failure()
        return self._latest

    async def close(self) -> None:
        """Drain, stop the consumer, release the apply thread.

        Raises the recorded consumer failure (after releasing every
        resource) so a ``submit ... close`` caller cannot mistake a run
        whose tail batches were discarded for a successful one.
        """
        self._closed = True
        if self._queue is not None and self.running:
            await self._queue.put((_STOP, None))
            await self._consumer
        self._consumer = None
        # shutdown(wait=True) joins the apply thread; run it off-loop so
        # close() never stalls the event loop on a slow final batch.
        await asyncio.get_running_loop().run_in_executor(
            None, self._apply_thread.shutdown
        )
        self._check_failure()

    # ------------------------------------------------------------------
    async def _consume(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            t, batch = await self._queue.get()
            try:
                if t is _STOP:
                    # Acknowledge anything racing in behind the sentinel
                    # (a submit that passed its closed-check just before
                    # close() set the flag) so queue.join() never hangs.
                    while True:
                        try:
                            self._queue.get_nowait()
                        except asyncio.QueueEmpty:
                            break
                        self._queue.task_done()
                    return
                if self._failure is not None:
                    # Poisoned: discard the backlog (the finally still
                    # acknowledges each item) so an in-flight drain()'s
                    # queue.join() resolves and blocked submitters wake
                    # up — both then observe the failure via
                    # _check_failure instead of hanging forever.
                    continue
                self._seq += 1
                self._journal.append((self._seq, t, batch))
                # Lag is observed per journaled batch (always >= 1 here),
                # so the histogram's _count series reflects accepted
                # batches even after a drain zeroes the gauge.
                self._queue_depth.set(self.pending)
                lag = self._unapplied
                self._lag_gauge.set(lag)
                self._lag_hist.observe(lag)
                while self._journal and self._failure is None:
                    try:
                        await loop.run_in_executor(
                            self._apply_thread, self._apply_journal
                        )
                    except asyncio.CancelledError:
                        # Event-loop shutdown cancelling this task is not
                        # an ingest failure — propagate so the loop can
                        # finish.
                        raise
                    except (WriterDeathError, BrokenExecutor) as exc:
                        # The writer died before committing: restart it
                        # and loop to replay the journal — the dead
                        # attempt never reached the commit point, so the
                        # batch is applied exactly once.
                        if not self._restart_writer(exc):
                            break
                    except BaseException as exc:
                        # Surface the failure to every subsequent caller
                        # instead of dying silently inside the task.
                        self._failure = exc
                        break
            finally:
                self._queue.task_done()

    def _apply_journal(self) -> None:
        """Apply every journaled batch in order (writer thread only).

        Each entry commits atomically from the caller's point of view:
        ``tracker.step`` + plane republish first, then ``_latest`` flips
        to the new epoch and the entry leaves the journal.  A fault (or
        death) before the commit point leaves the entry journaled for
        replay; there is no state in which an epoch is served before its
        batch fully applied.
        """
        while self._journal:
            seq, t, batch = self._journal[0]
            if (
                self._fault_plan is not None
                and self._fault_plan.writer_dies_at(seq)
                and seq not in self._writer_faults_fired
            ):
                self._writer_faults_fired.add(seq)
                raise WriterDeathError(
                    f"injected fault: writer died before applying batch {seq}"
                )
            apply_started = time.monotonic()
            solution = self._tracker.step(t, batch)
            self._republish()
            self._latest = TopKAnswer(
                epoch=self._latest.epoch + 1,
                time=solution.time,
                nodes=tuple(solution.nodes),
                value=float(solution.value),
            )
            self.batches_applied += 1
            self._journal.popleft()
            self._apply_hist.observe(time.monotonic() - apply_started)
            self._batches_counter.inc()
            self._epoch_gauge.set(self._latest.epoch)
            self._lag_gauge.set(self._unapplied)

    def _restart_writer(self, exc: BaseException) -> bool:
        """Replace the dead writer thread; False when the budget is gone."""
        self._writer_restarts += 1
        if self._writer_restarts > self._writer_restart_budget:
            self._failure = exc
            self._ladder.degrade(
                DegradationReason.WRITER_DEATH,
                f"writer restart budget ({self._writer_restart_budget}) exhausted",
            )
            return False
        self._ladder.note_incident(
            DegradationReason.WRITER_DEATH,
            f"restarting writer (attempt {self._writer_restarts}), "
            f"replaying {len(self._journal)} journaled batch(es)",
        )
        dead = self._apply_thread
        self._apply_thread = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-ingest"
        )
        dead.shutdown(wait=False)
        return True

    def _republish(self) -> None:
        """Republish the CSR plane for the new epoch (sharded oracles only).

        Only once the pool is actually running: eagerly spawning workers
        (or publishing generations nobody maps) for a stream whose
        sweeps all fall below the executor's dispatch floor would pay an
        O(V + P) snapshot per batch for nothing.  Dispatch re-checks the
        plane against ``graph.version`` anyway; this merely keeps a live
        pool's plane warm so epoch-N query traffic never pays the
        publish inside a query.  Publish failures are retried here with
        backoff (we are on the writer thread — blocking is fine) before
        the executor is left degraded; its own recovery machinery then
        retries on later epochs.
        """
        oracle = getattr(self._tracker, "oracle", None)
        executor = getattr(oracle, "executor", None)
        if executor is None or not executor.pool_running:
            return
        republish_started = time.monotonic()
        delay = 0.05
        for _ in range(3):
            if executor.ensure_plane(self._tracker.graph):
                self._republish_hist.observe(
                    time.monotonic() - republish_started
                )
                return
            time.sleep(delay)  # writer thread, not the event loop
            delay *= 2
        # Still failing: the executor has recorded PUBLISH_FAILED and
        # serves serially until a later publish succeeds.

    def _check_failure(self) -> None:
        if self._failure is not None:
            raise DegradedExecutionError(
                f"ingest consumer failed: {self._failure!r}"
            ) from self._failure
