"""Degradation state machine for the parallel serving stack.

The sharded executor's original defense against faults was a one-way
ladder: any failure flipped a ``degraded`` string and the executor ran
serially forever, with one generic warning.  That is safe (results never
differ from serial) but wasteful — a single worker crash permanently
forfeits every core — and opaque: operators cannot ask *why* the
executor is serial or whether it will come back.

:class:`DegradationLadder` replaces the string with an explicit state
machine:

* **SHARDED** — the pool is healthy; requests are partitioned across it.
* **DEGRADED** — requests are served serially for a *recoverable*
  :class:`DegradationReason` (worker death, attach failure, publish
  failure, …).  After the recorded backoff expires the owner may attempt
  recovery (respawn dead workers, republish the plane) and transition
  back to SHARDED.
* **HALTED** — serial forever, for a *terminal* reason (shared memory
  unavailable, restart budget exhausted, explicit close, single-worker
  configuration).  No recovery is ever attempted.

Every transition is recorded (bounded history), surfaced through
:meth:`DegradationLadder.report`, and announced with at most one warning
per reason per ``warn_interval`` — repeated flapping on the same reason
never floods the log, and each warning carries a recovery hint.  The
ladder never touches results: degradation changes *where* a value is
computed, never what it is.
"""

from __future__ import annotations

import enum
import time
import warnings
from typing import Callable, Dict, List, Optional

from repro.obs import names as metric_names
from repro.obs.registry import metrics_registry

__all__ = [
    "DegradationLadder",
    "DegradationReason",
    "DegradationState",
    "TERMINAL_REASONS",
]

# Bound once at import; every ladder in the process feeds the same two
# series.  The counters are bumped at the exact sites that mutate the
# ladder's own history/incident bookkeeping, so health_report() and the
# registry can never drift apart.
_TRANSITIONS = metrics_registry().counter(
    metric_names.DEGRADATION_TRANSITIONS_TOTAL
)
_INCIDENTS = metrics_registry().counter(metric_names.DEGRADATION_INCIDENTS_TOTAL)


class DegradationReason(enum.Enum):
    """Why the stack is (or once was) serving serially."""

    #: Configured with ``workers <= 1`` — serial by construction.
    SINGLE_WORKER = "single worker configuration"
    #: POSIX shared memory is unusable on this host.
    NO_SHM = "shared memory unavailable"
    #: Plane / queue / process creation failed at pool startup.
    POOL_START_FAILED = "pool startup failed"
    #: A worker process died while tasks were in flight.
    WORKER_DEATH = "worker process died"
    #: A worker reported a task error (non-attach).
    WORKER_ERROR = "worker reported an error"
    #: A worker could not attach the published plane (skew / missing).
    ATTACH_TIMEOUT = "plane attach failed or timed out"
    #: A shard missed its per-task deadline twice (retry exhausted).
    TASK_TIMEOUT = "shard deadline exceeded"
    #: Publishing the CSR plane (or weights) into shared memory failed.
    PUBLISH_FAILED = "plane publish failed"
    #: The supervisor's worker restart budget ran out.
    RESTART_BUDGET_EXHAUSTED = "worker restart budget exhausted"
    #: The ingest service's writer thread died.
    WRITER_DEATH = "ingest writer thread died"
    #: A thread-mode shard raised; it was recomputed serially.
    THREAD_ERROR = "thread worker raised"
    #: Explicitly closed by the owner.
    CLOSED = "closed"


#: Reasons that can never recover: once entered, the ladder is HALTED.
TERMINAL_REASONS = frozenset(
    {
        DegradationReason.SINGLE_WORKER,
        DegradationReason.NO_SHM,
        DegradationReason.RESTART_BUDGET_EXHAUSTED,
        DegradationReason.CLOSED,
    }
)

#: Reasons that describe configuration, not failure — no warning emitted.
_SILENT_REASONS = frozenset(
    {DegradationReason.SINGLE_WORKER, DegradationReason.CLOSED}
)

#: Operator-facing hint appended to each reason's (single) warning.
RECOVERY_HINTS: Dict[DegradationReason, str] = {
    DegradationReason.NO_SHM: (
        "serving serially permanently; mount /dev/shm or drop workers to 1"
    ),
    DegradationReason.POOL_START_FAILED: (
        "will retry pool startup after backoff"
    ),
    DegradationReason.WORKER_DEATH: (
        "dead workers are respawned within the restart budget; "
        "sharded mode resumes automatically"
    ),
    DegradationReason.WORKER_ERROR: (
        "the failing shard was recomputed serially; sharded mode resumes "
        "after backoff"
    ),
    DegradationReason.ATTACH_TIMEOUT: (
        "the shard was recomputed serially; attach is retried after backoff"
    ),
    DegradationReason.TASK_TIMEOUT: (
        "the slow shard fell back to serial; raise task_timeout / "
        "REPRO_TASK_TIMEOUT for legitimately long sweeps"
    ),
    DegradationReason.PUBLISH_FAILED: (
        "serving serially until the next publish attempt succeeds"
    ),
    DegradationReason.RESTART_BUDGET_EXHAUSTED: (
        "serving serially permanently; the pool crashed more than "
        "restart_budget times"
    ),
    DegradationReason.WRITER_DEATH: (
        "the writer is restarted and unapplied batches are replayed from "
        "the journal"
    ),
    DegradationReason.THREAD_ERROR: (
        "the failing shard was recomputed serially; thread dispatch "
        "continues for later requests"
    ),
}


class DegradationState(enum.Enum):
    """Where requests are currently served."""

    SHARDED = "sharded"
    DEGRADED = "degraded"
    HALTED = "halted"


class DegradationLadder:
    """Tracks degradation state, transitions, backoff and warnings.

    One instance backs each :class:`~repro.parallel.executor.
    ShardedOracleExecutor` (and the :class:`~repro.parallel.service.
    IngestService` reuses the reason enum for its writer).  The ladder is
    bookkeeping only — owners decide *when* to degrade or recover; the
    ladder records it, rate-limits the operator warnings, and answers
    ``can_attempt_recovery`` from the stored backoff deadline.

    Args:
        warn_interval: minimum seconds between two warnings for the
            *same* reason.  The first transition to each reason always
            warns; flapping within the interval is silent (but still
            recorded in the transition history and incident counters).
        clock: monotonic clock injection point (tests).
        history_limit: bound on the retained transition history.
    """

    def __init__(
        self,
        *,
        warn_interval: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
        history_limit: int = 32,
    ) -> None:
        self._clock = clock
        self._warn_interval = warn_interval
        self._history_limit = max(1, history_limit)
        self.state = DegradationState.SHARDED
        self.reason: Optional[DegradationReason] = None
        self.detail: str = ""
        self.retry_at: float = 0.0
        self.transitions: List[Dict[str, object]] = []
        self.incidents: Dict[str, int] = {}
        self.recoveries = 0
        self._warned_at: Dict[DegradationReason, float] = {}

    # ------------------------------------------------------------------
    @property
    def healthy(self) -> bool:
        """Whether requests may be dispatched to the pool right now."""
        return self.state is DegradationState.SHARDED

    @property
    def halted(self) -> bool:
        """Whether degradation is permanent (no recovery will be tried)."""
        return self.state is DegradationState.HALTED

    def can_attempt_recovery(self, now: Optional[float] = None) -> bool:
        """Whether a recovery attempt is due (DEGRADED and backoff over)."""
        if self.state is not DegradationState.DEGRADED:
            return False
        if now is None:
            now = self._clock()
        return now >= self.retry_at

    # ------------------------------------------------------------------
    def note_incident(self, reason: DegradationReason, detail: str = "") -> None:
        """Record a fault that did *not* change the serving state.

        Used for faults absorbed without leaving SHARDED — e.g. a slow
        shard that fell back to serial for that task only, or a worker
        death whose respawn succeeded within the same request.  Counted
        (and warned, rate-limited) but the state machine does not move.
        """
        self.incidents[reason.name] = self.incidents.get(reason.name, 0) + 1
        _INCIDENTS.inc()
        self._record("incident", reason, detail)
        self._warn(reason, detail)

    def degrade(
        self,
        reason: DegradationReason,
        detail: str = "",
        *,
        retry_delay: float = 0.0,
    ) -> None:
        """Enter DEGRADED (or HALTED for terminal reasons).

        ``retry_delay`` seconds must elapse before
        :meth:`can_attempt_recovery` answers True.  Degrading an already
        HALTED ladder is a no-op — terminal states are sticky.
        """
        if self.halted:
            return
        self.incidents[reason.name] = self.incidents.get(reason.name, 0) + 1
        _INCIDENTS.inc()
        terminal = reason in TERMINAL_REASONS
        self.state = (
            DegradationState.HALTED if terminal else DegradationState.DEGRADED
        )
        self.reason = reason
        self.detail = detail
        self.retry_at = self._clock() + max(0.0, retry_delay)
        self._record(self.state.value, reason, detail)
        self._warn(reason, detail)

    def recover(self, detail: str = "") -> None:
        """Return to SHARDED (no-op when HALTED — terminal is terminal)."""
        if self.halted or self.state is DegradationState.SHARDED:
            return
        self.state = DegradationState.SHARDED
        self.reason = None
        self.detail = ""
        self.retry_at = 0.0
        self.recoveries += 1
        self._record("recovered", None, detail)

    # ------------------------------------------------------------------
    def _record(
        self, event: str, reason: Optional[DegradationReason], detail: str
    ) -> None:
        # Transition-record schema (stable; consumers rely on these keys,
        # see the health_report docs in ARCHITECTURE.md):
        #   event  -- "incident" | "degraded" | "halted" | "recovered"
        #   reason -- DegradationReason.name, or "" for recoveries
        #   detail -- free-text context
        #   at     -- the ladder's (injectable, monotonic) clock reading
        self.transitions.append(
            {
                "event": event,
                "reason": reason.name if reason else "",
                "detail": detail,
                "at": self._clock(),
            }
        )
        _TRANSITIONS.inc()
        if len(self.transitions) > self._history_limit:
            del self.transitions[: -self._history_limit]

    def _warn(self, reason: DegradationReason, detail: str) -> None:
        """One warning per reason per ``warn_interval`` — never a flood."""
        if reason in _SILENT_REASONS:
            return
        now = self._clock()
        last = self._warned_at.get(reason)
        if last is not None and now - last < self._warn_interval:
            return
        self._warned_at[reason] = now
        hint = RECOVERY_HINTS.get(reason, "serving serially")
        suffix = f" ({detail})" if detail else ""
        warnings.warn(
            f"parallel stack degraded [{reason.name}]: "
            f"{reason.value}{suffix}; {hint}",
            RuntimeWarning,
            stacklevel=4,
        )

    def report(self) -> Dict[str, object]:
        """Inspectable snapshot (the executor's ``health_report`` core).

        ``transitions`` is the bounded history as a list of dicts with the
        stable keys ``event`` / ``reason`` / ``detail`` / ``at`` (the
        ladder clock's reading when the record was made — monotonic
        seconds by default).  Each dict is copied, so callers may keep or
        mutate the snapshot freely.
        """
        return {
            "state": self.state.value,
            "reason": self.reason.name if self.reason else None,
            "detail": self.detail,
            "recoveries": self.recoveries,
            "incidents": dict(sorted(self.incidents.items())),
            "transitions": [dict(record) for record in self.transitions],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        reason = f", reason={self.reason.name}" if self.reason else ""
        return f"DegradationLadder(state={self.state.value}{reason})"
