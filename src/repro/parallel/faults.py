"""Seeded, deterministic fault injection for the parallel stack.

Chaos testing a multi-process executor only works if the chaos is
*replayable*: the same plan must kill the same worker on the same task
every run, or a failing seed cannot be debugged.  This module provides
that plan.  A :class:`FaultPlan` is parsed from a compact spec string —
supplied either programmatically or via the ``REPRO_FAULTS`` environment
variable — and describes exactly which fault fires where:

``kill=w0:2``
    worker 0 dies (``os._exit``) while processing its 2nd task.
``delay=w1:3:0.5``
    worker 1 sleeps 0.5 s before answering its 3rd task.
``drop=w0:1``
    worker 0 silently discards its 1st task message (never replies).
``attach=w1:1``
    worker 1's 1st plane-attach attempt raises.
``publish=2``
    the owner's 2nd plane publish raises (before any segment exists).
``writer=1``
    the ingest writer thread dies before applying batch seq 1.
``seed=7``
    plan identity for test parametrisation (recorded, not consumed).

Entries are ``;``-separated; one entry may list several sites with
``,`` (``kill=w0:1,w1:1``).  Task/attach ordinals are 1-based and count
**per worker incarnation** — a respawned worker starts a fresh count, so
a fault that should fire once must target an ordinal its replacement
will not reach (the quarantine tests exploit the opposite: the same
ordinal re-fires on the respawn, striking the task again).

Production code pays one branch per hook site: every hook is a no-op
``None``/``False``/``0.0`` when no plan is active.  Worker-side hooks
travel to the spawn-context child as a picklable :class:`WorkerFaults`.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["FAULTS_ENV", "FaultInjected", "FaultPlan", "WorkerFaults"]

#: Environment variable holding a fault spec ("" / unset = no faults).
FAULTS_ENV = "REPRO_FAULTS"


class FaultInjected(RuntimeError):
    """Raised at owner-side hook sites (publish, writer) when a fault fires."""


def _parse_site(token: str, entry: str) -> Tuple[int, List[str]]:
    """``w<idx>:<ordinal>[:extra]`` → (worker index, remaining fields)."""
    fields = token.split(":")
    head = fields[0]
    if not head.startswith("w") or not head[1:].isdigit():
        raise ValueError(f"bad fault site {token!r} in {entry!r}")
    return int(head[1:]), fields[1:]


def _ordinal(fields: List[str], token: str, entry: str) -> int:
    if not fields or not fields[0].isdigit() or int(fields[0]) < 1:
        raise ValueError(f"bad fault ordinal in {token!r} ({entry!r})")
    return int(fields[0])


class FaultPlan:
    """A deterministic schedule of injected faults.

    Instances are mutated only through the owner-side ``next_*`` hooks
    (attempt counters); the schedule itself is immutable after parsing,
    so the same plan object can drive a scenario and then be inspected.
    """

    def __init__(self) -> None:
        self.kills: Dict[int, Set[int]] = {}
        self.delays: Dict[int, Dict[int, float]] = {}
        self.drops: Dict[int, Set[int]] = {}
        self.attach_failures: Dict[int, Set[int]] = {}
        self.publish_failures: Set[int] = set()
        self.writer_kills: Set[int] = set()
        self.seed: Optional[int] = None
        self.spec: str = ""
        self._publish_attempts = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a spec string (see module docstring for the grammar)."""
        plan = cls()
        plan.spec = spec
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            name, _, rhs = entry.partition("=")
            name = name.strip()
            tokens = [t.strip() for t in rhs.split(",") if t.strip()]
            if name == "seed":
                plan.seed = int(rhs)
            elif name == "publish":
                for token in tokens:
                    plan.publish_failures.add(_ordinal([token], token, entry))
            elif name == "writer":
                for token in tokens:
                    plan.writer_kills.add(_ordinal([token], token, entry))
            elif name in ("kill", "drop", "attach"):
                table = {
                    "kill": plan.kills,
                    "drop": plan.drops,
                    "attach": plan.attach_failures,
                }[name]
                for token in tokens:
                    worker, fields = _parse_site(token, entry)
                    table.setdefault(worker, set()).add(
                        _ordinal(fields, token, entry)
                    )
            elif name == "delay":
                for token in tokens:
                    worker, fields = _parse_site(token, entry)
                    ordinal = _ordinal(fields, token, entry)
                    if len(fields) < 2:
                        raise ValueError(
                            f"delay needs seconds: {token!r} ({entry!r})"
                        )
                    plan.delays.setdefault(worker, {})[ordinal] = float(fields[1])
            else:
                raise ValueError(f"unknown fault kind {name!r} in {entry!r}")
        return plan

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """Plan from ``REPRO_FAULTS``, or None when unset/empty."""
        spec = os.environ.get(FAULTS_ENV, "").strip()
        if not spec:
            return None
        return cls.parse(spec)

    # ------------------------------------------------------------------
    # worker-side
    # ------------------------------------------------------------------
    def for_worker(self, worker_index: int) -> Optional["WorkerFaults"]:
        """Picklable per-worker fault schedule (None when that worker is
        untouched — the common case, keeping the hot loop branch-free)."""
        kills = self.kills.get(worker_index, set())
        delays = self.delays.get(worker_index, {})
        drops = self.drops.get(worker_index, set())
        attach = self.attach_failures.get(worker_index, set())
        if not (kills or delays or drops or attach):
            return None
        return WorkerFaults(
            kill_at=frozenset(kills),
            delay_at=dict(delays),
            drop_at=frozenset(drops),
            attach_fail_at=frozenset(attach),
        )

    # ------------------------------------------------------------------
    # owner-side hooks (counters live on the plan: one schedule, shared
    # across pool restarts, so "fail the 2nd publish" means the 2nd ever)
    # ------------------------------------------------------------------
    def next_publish_fails(self) -> bool:
        """Advance the publish-attempt counter; True when this one fails."""
        self._publish_attempts += 1
        return self._publish_attempts in self.publish_failures

    def writer_dies_at(self, seq: int) -> bool:
        """Whether the writer thread should die before applying ``seq``."""
        return seq in self.writer_kills

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.spec!r})"


class WorkerFaults:
    """Per-worker fault schedule shipped to the child process.

    Counters are per *incarnation*: a fresh instance is handed to every
    (re)spawned worker, so ordinals restart at 1 after a respawn.  All
    state is plain builtins — the spawn context pickles it.
    """

    def __init__(
        self,
        *,
        kill_at: "frozenset[int]" = frozenset(),
        delay_at: Optional[Dict[int, float]] = None,
        drop_at: "frozenset[int]" = frozenset(),
        attach_fail_at: "frozenset[int]" = frozenset(),
    ) -> None:
        self.kill_at = kill_at
        self.delay_at = delay_at or {}
        self.drop_at = drop_at
        self.attach_fail_at = attach_fail_at
        self._tasks_seen = 0
        self._attaches_seen = 0

    def next_task(self) -> int:
        """Advance and return the 1-based ordinal of the incoming task."""
        self._tasks_seen += 1
        return self._tasks_seen

    def should_drop(self, ordinal: int) -> bool:
        return ordinal in self.drop_at

    def should_kill(self, ordinal: int) -> bool:
        return ordinal in self.kill_at

    def delay_for(self, ordinal: int) -> float:
        return self.delay_at.get(ordinal, 0.0)

    def next_attach_fails(self) -> bool:
        """Advance the attach counter; True when this attach must raise."""
        self._attaches_seen += 1
        return self._attaches_seen in self.attach_fail_at
