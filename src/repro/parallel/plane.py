"""Shared-memory CSR plane: zero-copy graph publication for worker pools.

The sharded oracle executor (:mod:`repro.parallel.executor`) farms spread
and ancestor sweeps out to a pool of worker processes.  Shipping the graph
to those workers by pickling would cost O(V + P) serialization per query
batch; instead the owner publishes the *flat CSR arrays* — the exact wire
format the reachability engine already computes on — into POSIX shared
memory once per graph epoch, and workers map them directly.

Layout
------
A plane is a named family of ``multiprocessing.shared_memory`` segments:

* ``{prefix}-hdr`` — one small int64 header array::

      [generation, num_nodes, num_pairs, graph_time, ready]

  ``generation`` increments on every publish; workers read it to learn
  which data segments are current.  ``ready`` is written last (release
  fence by program order), so a torn publish is never observable: a worker
  that reads ``ready != generation`` simply re-reads.

* ``{prefix}-g{generation}-ip`` / ``-ix`` / ``-ex`` — the snapshot's
  ``indptr`` (int64), ``indices`` (int64) and per-pair max ``expiries``
  (float64), indexed by the graph's interned node ids.

Workers attach by *name* (derived from prefix + generation read off the
header), so nothing but the few-byte task message ever crosses a pipe.
The owner unlinks a generation's segments when the next one is published;
on Linux, attached mappings stay valid until the worker drops them, so a
worker holding the previous generation finishes its task unharmed (the
executor's synchronous dispatch means this never happens in practice).

:class:`PlaneEngine` is the worker-side query engine over the mapped
arrays: forward bit-plane spread counts (counted and weighted),
reachable-id sets and the transpose-backed ancestor sweep, all
bit-identical to the serial :class:`~repro.tdn.csr.DeltaCSR` results on
the same graph state at the same effective horizon (the owner resolves
the ``t + 1`` horizon clamp before dispatch, so workers never need the
clock).  The engine carries no traversal loop of its own — it adapts the
same :class:`repro.kernels.TraversalKernel` the serial engines run, over
the published flat arrays minus the (empty) overlay, so sharded and
serial physics are one code path rather than a hand-synced convention.
"""

from __future__ import annotations

import secrets
from types import ModuleType
from typing import TYPE_CHECKING, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.kernels import (
    PLANE_WIDTH,
    Fold,
    TraversalKernel,
    build_transpose,
    max_in_expiries,
    resolve_fold,
)
from repro.parallel.markers import published_plane

if TYPE_CHECKING:
    from repro.tdn.graph import TDNGraph

__all__ = [
    "PlaneEngine",
    "SharedCSRPlane",
    "SharedWeights",
    "attach_plane_engine",
    "attach_weights",
    "shared_memory_available",
    "weights_segment_name",
]

_HEADER_SLOTS = 5
_GEN, _NODES, _PAIRS, _TIME, _READY = range(_HEADER_SLOTS)


def _shm_module() -> ModuleType:
    from multiprocessing import shared_memory

    return shared_memory


def shared_memory_available() -> bool:
    """Probe whether POSIX shared memory actually works on this host.

    ``multiprocessing.shared_memory`` imports fine but fails at segment
    creation on locked-down containers (no ``/dev/shm``); the executor
    probes once and falls back to the serial engine when it does.
    """
    try:
        shm = _shm_module().SharedMemory(create=True, size=16)
    except (ImportError, OSError, PermissionError):
        return False
    try:
        shm.close()
        shm.unlink()
    except OSError:  # pragma: no cover - cleanup best effort
        pass
    return True


@published_plane("indptr", "indices", "expiries", writers=("__init__",))
class PlaneEngine:
    """Flat-array reachability engine over one published CSR plane.

    Operates on plain numpy views — its arrays may live in an attached
    shared-memory segment (worker side) or in ordinary process memory
    (tests, the hypothesis shard-merge property).  There is no overlay and
    no clock: callers pass the *effective* horizon (already clamped to
    ``t + 1`` by the owner), which makes every query a pure function of
    the arrays and keeps worker results bit-identical to the serial
    engine's.  Both directions are thin adapters over the shared
    :class:`~repro.kernels.TraversalKernel` (always on its vectorized
    path — workers never pay the calibration probe); the reverse kernel
    is built lazily, once per attached generation.
    """

    __slots__ = (
        "num_nodes",
        "num_pairs",
        "indptr",
        "indices",
        "expiries",
        "_fwd",
        "_rev",
    )

    #: Candidate sets packed per bit-plane sweep — the kernel's uint64
    #: mask width, re-exported from the single source of truth
    #: (:data:`repro.kernels.PLANE_WIDTH`; fixed, not an override knob).
    PLANE_WIDTH = PLANE_WIDTH

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        expiries: np.ndarray,
        backend: Optional[str] = None,
    ) -> None:
        self.num_nodes = int(indptr.shape[0]) - 1
        self.num_pairs = int(indices.shape[0])
        self.indptr = indptr
        self.indices = indices
        self.expiries = expiries
        self._fwd = TraversalKernel(indptr, indices, expiries, backend=backend)
        self._rev: Optional[TraversalKernel] = None

    def _reverse_kernel(self) -> TraversalKernel:
        """Lazily build the transpose kernel (once per attached generation)."""
        if self._rev is None:
            tindptr, tindices, texpiries = build_transpose(
                self.indptr, self.indices, self.expiries
            )
            self._rev = TraversalKernel(
                tindptr, tindices, texpiries, backend=self._fwd.backend
            )
        return self._rev

    # ------------------------------------------------------------------
    def reachable_ids(self, ids: Sequence[int], eff: Optional[float]) -> Set[int]:
        """Forward reachable id set at the effective horizon."""
        return self._fwd.reachable_ids(ids, eff)

    def ancestor_ids(self, ids: Sequence[int], eff: Optional[float]) -> Set[int]:
        """Transpose-backed reverse reachable id set (seeds included)."""
        return self._reverse_kernel().reachable_ids(ids, eff)

    def spread_counts(
        self, id_sets: Sequence[Sequence[int]], eff: Optional[float]
    ) -> List[int]:
        """Per-set reachable counts via the shared bit-plane sweep.

        Semantically ``[len(self.reachable_ids(s, eff)) for s in
        id_sets]``; up to :attr:`PLANE_WIDTH` sets share each physical
        traversal, exactly as in :meth:`repro.tdn.csr.DeltaCSR.
        spread_counts` minus the (empty) overlay — it *is* the same
        kernel code.
        """
        return self._fwd.spread_counts(id_sets, eff)

    def weighted_spread_sums(
        self,
        id_sets: Sequence[Sequence[int]],
        eff: Optional[float],
        weights: np.ndarray,
    ) -> List[float]:
        """Per-set reached-weight sums via the weighted bit-plane sweep.

        ``weights`` is the dense id-indexed float64 array the owner
        published alongside the plane; sums fold in the kernel's
        canonical ascending-id order, so worker results are bit-identical
        to the serial engine's.
        """
        return self._fwd.weighted_spread_sums(id_sets, eff, weights)

    def fold_spread_sums(
        self,
        id_sets: Sequence[Sequence[int]],
        eff: Optional[float],
        fold: Fold,
        weights: Optional[np.ndarray] = None,
    ) -> List[float]:
        """Per-set scores under a registered fold semantics.

        Derived folds (``time_decay``) recompute their node values from
        the mapped arrays on every call — the published plane holds
        exactly the alive pairs a fresh snapshot would, and the
        derivation is elementwise over identical float64 inputs, so
        worker-side values match the owner's serial derivation bit for
        bit.  The arrays themselves are never written (the plane is a
        read-only mapping of the published segments).
        """
        fold = resolve_fold(fold)
        node_values = weights
        if fold.derives_node_values:
            max_in = max_in_expiries(
                self.indices, self.expiries, self.num_nodes, eff
            )
            node_values = fold.values_from_max_in(max_in, eff)
        return fold.batch(self._fwd, id_sets, eff, node_values)


class SharedCSRPlane:
    """Owner side of the shared-memory CSR plane (publish / unlink).

    One plane serves one executor.  :meth:`publish` flattens the graph's
    alive pair adjacency (via :class:`~repro.tdn.csr.CSRSnapshot`, the
    same builder the serial engine compacts with) into a fresh generation
    of segments and flips the header; superseded generations are unlinked
    immediately.  The owner must be the only publisher, and publishes must
    not race in-flight worker tasks — the executor's synchronous dispatch
    guarantees both.
    """

    def __init__(self, prefix: Optional[str] = None) -> None:
        self.prefix = prefix or f"repro-plane-{secrets.token_hex(4)}"
        # Crash safety: every attribute close() touches exists *before*
        # the first segment is created, so close() (or __del__) after a
        # failed __init__ neither raises nor leaks.
        self._hdr = None
        self._header = None
        self._segments: List = []  # live data segments of the current generation
        self.generation = 0
        self.closed = False
        shm = _shm_module()
        self._hdr = shm.SharedMemory(
            create=True, name=f"{self.prefix}-hdr", size=_HEADER_SLOTS * 8
        )
        self._header = np.ndarray(
            (_HEADER_SLOTS,), dtype=np.int64, buffer=self._hdr.buf
        )
        self._header[:] = 0

    # ------------------------------------------------------------------
    @staticmethod
    def segment_names(prefix: str, generation: int) -> Tuple[str, str, str]:
        """The data segment names of one generation (shared with workers)."""
        stem = f"{prefix}-g{generation}"
        return f"{stem}-ip", f"{stem}-ix", f"{stem}-ex"

    def publish(self, graph: "TDNGraph") -> int:
        """Publish ``graph``'s current alive adjacency; returns the generation.

        Cost is one O(V + P log P) snapshot build plus three array copies.
        Callers amortize it per *epoch* (graph version), not per query —
        see :meth:`ShardedOracleExecutor.ensure_plane`.
        """
        if self.closed:
            raise RuntimeError("plane is closed")
        from repro.tdn.csr import CSRSnapshot

        snapshot = CSRSnapshot.build(graph)
        generation = self.generation + 1
        names = self.segment_names(self.prefix, generation)
        shm = _shm_module()
        segments = []
        arrays = (snapshot.indptr, snapshot.indices, snapshot.expiries)
        try:
            for name, array in zip(names, arrays):
                segment = shm.SharedMemory(
                    create=True, name=name, size=max(array.nbytes, 8)
                )
                segments.append(segment)
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                view[:] = array
        except OSError:
            for segment in segments:
                segment.close()
                segment.unlink()
            raise
        header = self._header
        header[_GEN] = generation
        header[_NODES] = snapshot.num_nodes
        header[_PAIRS] = snapshot.num_pairs
        header[_TIME] = int(graph.time)
        header[_READY] = generation  # written last: publish is now visible
        previous = self._segments
        self._segments = segments
        self.generation = generation
        for segment in previous:
            segment.close()
            try:
                segment.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        return generation

    def close(self) -> None:
        """Unlink every segment this plane owns (idempotent, crash-safe)."""
        if self.closed:
            return
        self.closed = True
        for segment in self._segments:
            segment.close()
            try:
                segment.unlink()
            except OSError:  # pragma: no cover
                pass
        self._segments = []
        self._header = None
        if self._hdr is not None:  # None iff __init__ failed at creation
            self._hdr.close()
            try:
                self._hdr.unlink()
            except OSError:  # pragma: no cover
                pass
            self._hdr = None

    def __del__(self) -> None:  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:  # repro-lint: disable=RPL304
            pass  # interpreter teardown: modules may already be gone


def weights_segment_name(prefix: str, seq: int) -> str:
    """Segment name for the ``seq``-th published weights epoch.

    All segment-name derivation lives in this module (enforced by
    repro-lint RPL203) so the owner and workers can never drift on the
    naming scheme.
    """
    return f"{prefix}-w{seq}"


class SharedWeights:
    """Owner-side publication of one dense float64 weight array.

    The weighted bit-plane sweep needs the oracle's id-indexed node
    weights worker-side; shipping the array in every task message would
    cost O(V) serialization per shard.  Instead the executor publishes it
    once per *weights epoch* (the array is append-only — it grows when
    new nodes are interned, its prefix never changes — so the epoch is
    simply its length) into one named segment, and tasks carry only the
    segment name.  The owner is the sole unlink authority, exactly as for
    the plane's data segments.
    """

    __slots__ = ("name", "length", "_segment", "closed")

    def __init__(self, name: str, weights: np.ndarray) -> None:
        # Attributes close() touches exist before the segment is created,
        # so close()/__del__ after a failed create is a clean no-op.
        self.name = name
        self.length = int(weights.shape[0])
        self._segment = None
        self.closed = False
        shm = _shm_module()
        self._segment = shm.SharedMemory(
            create=True, name=name, size=max(weights.nbytes, 8)
        )
        view = np.ndarray(
            (self.length,), dtype=np.float64, buffer=self._segment.buf
        )
        view[:] = weights

    def close(self) -> None:
        """Unlink the segment (idempotent, crash-safe)."""
        if self.closed:
            return
        self.closed = True
        if self._segment is None:  # __init__ failed at creation
            return
        self._segment.close()
        try:
            self._segment.unlink()
        except OSError:  # pragma: no cover - already gone
            pass

    def __del__(self) -> None:  # pragma: no cover - belt and braces
        try:
            self.close()
        except Exception:  # repro-lint: disable=RPL304
            pass  # interpreter teardown: modules may already be gone


@published_plane("weights", writers=("__init__", "detach"))
class _WeightsAttachment:
    """Worker-side mapping of one published weights segment."""

    __slots__ = ("name", "weights", "_segment")

    def __init__(self, name: str, length: int) -> None:
        shm = _shm_module()
        self.name = name
        self._segment = shm.SharedMemory(name=name)
        self.weights = np.ndarray(
            (length,), dtype=np.float64, buffer=self._segment.buf
        )

    def detach(self) -> None:
        self.weights = None
        try:
            self._segment.close()
        except OSError:  # pragma: no cover
            pass


def attach_weights(name: str, length: int) -> _WeightsAttachment:
    """Attach a published weights segment by name (worker side)."""
    return _WeightsAttachment(name, length)


class _Attachment:
    """Worker-side mapping of one plane generation (header + data)."""

    def __init__(
        self, prefix: str, generation: int, num_nodes: int, num_pairs: int
    ) -> None:
        shm = _shm_module()
        names = SharedCSRPlane.segment_names(prefix, generation)
        self.generation = generation
        self._segments = []
        # Attaching re-registers the name with the (inherited, shared)
        # resource tracker — a set no-op, since the owner registered it at
        # creation.  The owner stays the single unlink authority; workers
        # only ever close their mappings.
        try:
            for name in names:
                self._segments.append(shm.SharedMemory(name=name))
        except Exception:
            self.detach()
            raise
        ip_seg, ix_seg, ex_seg = self._segments
        indptr = np.ndarray((num_nodes + 1,), dtype=np.int64, buffer=ip_seg.buf)
        indices = np.ndarray((num_pairs,), dtype=np.int64, buffer=ix_seg.buf)
        expiries = np.ndarray((num_pairs,), dtype=np.float64, buffer=ex_seg.buf)
        self.engine = PlaneEngine(indptr, indices, expiries)

    def detach(self) -> None:
        self.engine = None
        for segment in self._segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover
                pass
        self._segments = []


def attach_plane_engine(prefix: str, expected_generation: int) -> "_Attachment":
    """Attach the plane's current generation; returns an :class:`_Attachment`.

    Raises ``RuntimeError`` when the header's ready generation does not
    match ``expected_generation`` — the owner republished (or tore down)
    between dispatch and attach, and the caller must report the task as
    failed so the owner re-dispatches or falls back.
    """
    shm = _shm_module()
    hdr = shm.SharedMemory(name=f"{prefix}-hdr")
    try:
        header = np.ndarray((_HEADER_SLOTS,), dtype=np.int64, buffer=hdr.buf)
        ready = int(header[_READY])
        num_nodes = int(header[_NODES])
        num_pairs = int(header[_PAIRS])
    finally:
        hdr.close()
    if ready != expected_generation:
        raise RuntimeError(
            f"plane generation skew: header ready={ready}, "
            f"task expects {expected_generation}"
        )
    return _Attachment(prefix, expected_generation, num_nodes, num_pairs)
