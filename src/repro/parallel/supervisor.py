"""Worker-pool supervision: liveness, respawn budget, quarantine.

:class:`WorkerSupervisor` owns the executor's worker processes.  The
executor checks liveness on every dispatch round-trip; when a worker is
found dead the supervisor recycles the pool — subject to a bounded
*restart budget* and exponential backoff with seeded jitter (via
:func:`repro.utils.rng.make_rng`, the repo's one sanctioned randomness
source) so a crash-looping pool neither spins hot nor thunders back all
at once.  A successful round-trip resets the backoff; exhausting the
budget is terminal (the executor degrades permanently rather than
fork-bombing the host).

Respawn recycles the *whole* pool, not just the dead slots: all workers
share one task queue, and a process that dies blocked inside
``Queue.get()`` dies holding the queue's reader lock — a replacement fed
into the same queue would wedge forever.  The owner registers a ``reset``
hook that rebuilds the queue set between teardown and respawn; only the
dead workers are charged against the budget (survivors are recycled for
queue hygiene, not because they failed).

The supervisor also keeps the *poisoned-task* ledger: every task a dead
worker had claimed gets a strike, and a task with two strikes is
quarantined — it runs serially in the owner from then on and is never
retried into the pool, so one pathological input cannot chew through the
restart budget.

The live-process table (``procs``) is a plain dict shared by reference
with the executor's GC finalizer: respawned workers replace their dead
predecessors *in that dict*, so teardown always sees the current
incarnation and can never leak a respawned process.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Hashable, List, Optional

from repro.obs import names as metric_names
from repro.obs.registry import metrics_registry
from repro.utils.rng import make_rng

__all__ = ["WorkerSupervisor"]

# Bound once at import; bumped at the same sites that charge the restart
# budget / flip the quarantine flag, so report() and the registry agree.
_RESTARTS = metrics_registry().counter(metric_names.WORKER_RESTARTS_TOTAL)
_QUARANTINES = metrics_registry().counter(metric_names.TASK_QUARANTINES_TOTAL)

#: Default cap on total worker respawns over the executor's lifetime.
DEFAULT_RESTART_BUDGET = 16

#: First-retry backoff in seconds; doubles per consecutive failure.
DEFAULT_BACKOFF_BASE = 0.05

#: Ceiling on the (pre-jitter) backoff delay in seconds.
DEFAULT_BACKOFF_CAP = 2.0

#: Strikes before a task is quarantined (runs serially forever).
QUARANTINE_STRIKES = 2


class WorkerSupervisor:
    """Tracks worker liveness and respawns the dead, within budget.

    Args:
        spawn: factory called with a worker index; must return a
            *started* process object (``is_alive`` / ``join`` /
            ``terminate``).  The executor closes plane prefix, queues and
            fault plan over it.
        workers: pool width (worker indices ``0 .. workers - 1``).
        restart_budget: total respawns allowed over the supervisor's
            lifetime; the budget is deliberately global, not per-worker —
            a pool where *any* mix of workers has crashed this many times
            is not healthy enough to keep feeding.
        backoff_base / backoff_cap: exponential backoff bounds (seconds).
        seed: jitter seed.  Chaos tests pin it so backoff schedules are
            replayable; production leaves it None.
        clock: monotonic clock injection point (tests).
        reset: owner hook run between pool teardown and respawn — the
            executor rebuilds its task/result queues here, because the old
            set may be wedged by a reader-lock-holding death.
    """

    def __init__(
        self,
        spawn: Callable[[int], Any],
        workers: int,
        *,
        restart_budget: int = DEFAULT_RESTART_BUDGET,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        seed: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        reset: Optional[Callable[[], None]] = None,
    ) -> None:
        self._spawn = spawn
        self._reset = reset
        self.workers = workers
        self.restart_budget = max(0, restart_budget)
        self.restarts_used = 0
        self._backoff_base = max(0.0, backoff_base)
        self._backoff_cap = max(self._backoff_base, backoff_cap)
        self._rng = make_rng(seed)
        self._clock = clock
        #: Live process per worker index — shared by reference with the
        #: executor's GC finalizer so respawns can never leak.
        self.procs: Dict[int, Any] = {}
        self._consecutive_failures = 0
        self._respawn_at = 0.0
        self._strikes: Dict[Hashable, int] = {}
        self.quarantined: "set[Hashable]" = set()

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the initial pool (does not consume the restart budget)."""
        for index in range(self.workers):
            self.procs[index] = self._spawn(index)

    def dead_workers(self) -> List[int]:
        """Indices whose current incarnation is no longer alive."""
        return [
            index
            for index, proc in sorted(self.procs.items())
            if not proc.is_alive()
        ]

    def all_alive(self) -> bool:
        return bool(self.procs) and not self.dead_workers()

    def note_success(self) -> None:
        """A full round-trip succeeded: reset the backoff ramp."""
        self._consecutive_failures = 0
        self._respawn_at = 0.0

    # ------------------------------------------------------------------
    # respawn
    # ------------------------------------------------------------------
    def respawn_dead(self, now: Optional[float] = None) -> str:
        """Recycle the pool if any worker is dead, within budget/backoff.

        Returns one of:

        * ``"ok"`` — nothing was dead, or the pool was recycled with
          fresh workers (the owner must re-enqueue outstanding tasks:
          the queue set was rebuilt by the ``reset`` hook).
        * ``"waiting"`` — dead workers exist but the backoff window has
          not elapsed; call again later (the owner keeps serving results
          from the survivors meanwhile).
        * ``"exhausted"`` — the restart budget ran out; the pool must not
          be used again (terminal degradation).

        Only the dead are charged against the budget; surviving workers
        are recycled too (terminate + respawn) because they read from the
        same queues the death may have wedged.
        """
        dead = self.dead_workers()
        if not dead:
            return "ok"
        if now is None:
            now = self._clock()
        if now < self._respawn_at:
            return "waiting"
        if self.restarts_used + len(dead) > self.restart_budget:
            return "exhausted"
        self.restarts_used += len(dead)
        _RESTARTS.inc(len(dead))
        for _, proc in sorted(self.procs.items()):
            if proc.is_alive():
                proc.terminate()
        for _, proc in sorted(self.procs.items()):
            proc.join(timeout=5.0)
        if self._reset is not None:
            self._reset()
        for index in range(self.workers):
            self.procs[index] = self._spawn(index)
        self._consecutive_failures += 1
        self._respawn_at = now + self._backoff_delay()
        return "ok"

    def _backoff_delay(self) -> float:
        """Exponential backoff with jitter in [0.5, 1.5) of the nominal."""
        nominal = min(
            self._backoff_cap,
            self._backoff_base * (2.0 ** (self._consecutive_failures - 1)),
        )
        return nominal * (0.5 + self._rng.random())

    # ------------------------------------------------------------------
    # poisoned-task quarantine
    # ------------------------------------------------------------------
    def strike(self, task_key: Hashable) -> int:
        """Record that ``task_key`` was in flight when a worker died.

        Two strikes quarantine the task: it is flagged, served serially,
        and never retried into the pool.  Returns the new strike count.
        """
        count = self._strikes.get(task_key, 0) + 1
        self._strikes[task_key] = count
        if count >= QUARANTINE_STRIKES and task_key not in self.quarantined:
            self.quarantined.add(task_key)
            _QUARANTINES.inc()
        return count

    def is_quarantined(self, task_key: Hashable) -> bool:
        return task_key in self.quarantined

    # ------------------------------------------------------------------
    def report(self) -> Dict[str, object]:
        """Health snapshot folded into ``executor.health_report()``."""
        alive = sum(
            1 for index in sorted(self.procs) if self.procs[index].is_alive()
        )
        return {
            "workers": self.workers,
            "alive": alive,
            "restarts_used": self.restarts_used,
            "restart_budget": self.restart_budget,
            "quarantined_tasks": len(self.quarantined),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerSupervisor(workers={self.workers}, "
            f"restarts={self.restarts_used}/{self.restart_budget})"
        )
