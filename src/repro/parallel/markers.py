"""Immutable-after-publish markers for shared-plane arrays.

``@published_plane("indptr", "indices", writers=("__init__",))`` declares
that once an instance is constructed (published to workers), the named
array attributes must never be written again except from the listed
methods.  The decorator records the declaration in a process-local
registry and returns the class unchanged — enforcement is *static*:
``repro.lint``'s concurrency pass reads the decorator from the AST
(never importing this module) and flags violating writes as RPL303.

The runtime registry exists so tests and tooling can introspect the
published surface (e.g. assert that every shared array an executor
exports is covered by a marker).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Tuple, Type, TypeVar

_ClassT = TypeVar("_ClassT", bound=type)

#: class qualname -> (attrs, writer-method names).
PUBLISHED_PLANES: Dict[str, Tuple[FrozenSet[str], FrozenSet[str]]] = {}


def published_plane(
    *attrs: str, writers: Tuple[str, ...] = ("__init__",)
) -> Callable[[_ClassT], _ClassT]:
    """Mark ``attrs`` of the decorated class immutable after publish.

    ``writers`` lists the only methods allowed to assign (or write
    through) those attributes; everything else is an RPL303 finding.
    """

    def decorate(cls: _ClassT) -> _ClassT:
        PUBLISHED_PLANES[cls.__qualname__] = (
            frozenset(attrs),
            frozenset(writers),
        )
        return cls

    return decorate


def published_attrs(cls: Type[object]) -> FrozenSet[str]:
    """Attrs declared immutable-after-publish for ``cls`` (may be empty)."""
    entry = PUBLISHED_PLANES.get(cls.__qualname__)
    return entry[0] if entry is not None else frozenset()
