"""Worker-process entry point for the sharded oracle executor.

Each worker runs :func:`worker_main` forever: pull a task message off the
shared task queue, run the requested sweep against the shared-memory CSR
plane, push the result.  Task messages are tiny (op name, request id,
shard index, plane generation, id lists, horizon) — the graph itself never
crosses the pipe; workers map the published plane segments directly
(:func:`repro.parallel.plane.attach_plane_engine`) and cache the mapping
until the owner publishes a newer generation.  Weighted sweeps likewise
map the owner's published weight segment by name
(:func:`repro.parallel.plane.attach_weights`, cached per weights key) and
return 64-wide per-set weight sums instead of shipping reachable-id sets
back through the pipe.

Supervision protocol: before computing, a worker acknowledges each claimed
task with a ``("started", worker_index)`` outcome.  The owner uses the ack
to know *which* shard a worker held when it died — that is what powers
poisoned-task strikes and targeted re-enqueueing instead of whole-request
serial recomputation.  Every result is tagged with the request id and
shard index so the owner can splice shard results back into submission
order, and every failure is reported as an ``("error", message)`` payload
instead of crashing the worker — the owner decides whether to retry.

Fault injection: an optional :class:`repro.parallel.faults.WorkerFaults`
schedule (shipped pickled from the owner's :class:`FaultPlan`) can drop a
task message, kill the process mid-task, delay a reply, or fail a plane
attach — each hook is a single branch that evaluates to a no-op in
production.  Ordinals are per incarnation: a respawned worker starts a
fresh schedule.
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

if TYPE_CHECKING:  # keep the spawn-time import graph minimal
    import numpy as np

    from repro.parallel.faults import WorkerFaults
    from repro.parallel.plane import PlaneEngine, _Attachment, _WeightsAttachment

__all__ = ["worker_main"]

#: Task opcodes (module-level so owner and worker can never drift apart).
OP_SPREAD = "spread"
OP_REACH = "reach"
OP_ANCESTORS = "ancestors"
OP_WSPREAD = "wspread"
OP_FSPREAD = "fspread"
OP_PING = "ping"
OP_STOP = "stop"


def worker_main(
    task_queue: Any,
    result_queue: Any,
    prefix: str,
    worker_index: int = 0,
    faults: Optional["WorkerFaults"] = None,
) -> None:
    """Serve plane sweeps until an ``OP_STOP`` message arrives.

    Args:
        task_queue: multiprocessing queue of task tuples
            ``(op, request_id, shard_index, generation, payload, eff)``.
            For :data:`OP_WSPREAD` the payload is ``(id_sets, weights_key,
            weights_name, weights_len)``; for :data:`OP_FSPREAD` it is
            ``(id_sets, fold_spec)`` with the fold's ``(name, params)``
            wire form; for the other sweeps it is the id list(s) directly.
        result_queue: queue of ``(request_id, shard_index, outcome)``
            tuples where ``outcome`` is ``("started", worker_index)``
            (claim ack), ``("ok", value)`` or ``("error", message)``.
        prefix: the shared plane's segment-name prefix.
        worker_index: this worker's stable slot in the pool (respawns
            reuse the slot).
        faults: optional injected fault schedule for this incarnation.
    """
    # Worker-local metrics: a private registry plus the kernel sweep
    # sampler, drained as tiny name->delta dicts after each task and
    # shipped through the result queue (one aggregate message per task,
    # never per-event traffic).  The owner folds the deltas into its own
    # registry; see ShardedOracleExecutor._dispatch.  Imported here, not
    # at module top, to keep the spawn-time import graph minimal.
    from repro.kernels.instrument import enable_kernel_metrics
    from repro.obs import names as metric_names
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    enable_kernel_metrics(registry=registry)
    tasks_done = registry.counter(metric_names.WORKER_TASKS_TOTAL)

    def flush_metrics(request_id: int, shard_index: int) -> None:
        # Sent BEFORE the ok/error reply: once the owner has every shard
        # result its dispatch loop returns, and a metrics message behind
        # the final "ok" would be dropped as stale on the next request —
        # losing the drained deltas (the drain high-water mark advanced).
        deltas = registry.drain_counter_deltas()
        if deltas:
            result_queue.put((request_id, shard_index, ("metrics", deltas)))

    attachment: Optional[_Attachment] = None  # current generation's mapping
    weight_maps: Dict[str, _WeightsAttachment] = {}
    # A worker only ever needs the keys of currently-live oracles; cap
    # the cache so keys of closed/collected oracles (whose segments the
    # owner already released) cannot accumulate mappings forever.
    max_weight_maps = 8

    def engine_for(generation: int) -> PlaneEngine:
        nonlocal attachment
        if attachment is None or attachment.generation != generation:
            from repro.parallel.plane import attach_plane_engine

            if faults is not None and faults.next_attach_fails():
                raise RuntimeError("injected fault: plane attach failed")
            stale, attachment = attachment, None
            if stale is not None:
                stale.detach()
            attachment = attach_plane_engine(prefix, generation)
        return attachment.engine

    def weights_for(key: str, name: str, length: int) -> "np.ndarray":
        cached = weight_maps.get(key)
        if cached is None or cached.name != name:
            from repro.parallel.plane import attach_weights

            if cached is not None:
                cached.detach()
                del weight_maps[key]
            while len(weight_maps) >= max_weight_maps:
                stale_key = next(iter(weight_maps))  # oldest insertion
                weight_maps.pop(stale_key).detach()
            weight_maps[key] = cached = attach_weights(name, length)
        return cached.weights

    while True:
        task = task_queue.get()
        op = task[0]
        if op == OP_STOP:
            break
        if op == OP_PING:
            result_queue.put((task[1], 0, ("ok", "pong")))
            continue
        _, request_id, shard_index, generation, payload, eff = task
        delay = 0.0
        if faults is not None:
            ordinal = faults.next_task()
            if faults.should_drop(ordinal):
                continue  # simulate a lost task message: no ack, no reply
            delay = faults.delay_for(ordinal)
        # Claim ack: lets the owner strike exactly the shard we held if
        # this process dies before replying.
        result_queue.put((request_id, shard_index, ("started", worker_index)))
        if faults is not None and faults.should_kill(ordinal):
            # Flush the feeder thread first: the claim ack must reach the
            # owner or the poisoned-task strike cannot be attributed.
            if hasattr(result_queue, "close"):
                result_queue.close()
                result_queue.join_thread()
            os._exit(1)  # simulate a hard crash mid-task (no cleanup)
        try:
            engine = engine_for(generation)
            value = _run(engine, op, payload, eff, weights_for)
            if delay > 0.0:
                time.sleep(delay)  # simulate a slow shard (past deadline)
            tasks_done.inc()
            flush_metrics(request_id, shard_index)
            result_queue.put((request_id, shard_index, ("ok", value)))
        except BaseException as exc:  # report, never crash the loop
            flush_metrics(request_id, shard_index)
            result_queue.put(
                (request_id, shard_index, ("error", f"{type(exc).__name__}: {exc}"))
            )
    if attachment is not None:
        attachment.detach()
    for cached in weight_maps.values():
        cached.detach()


def _run(
    engine: PlaneEngine,
    op: str,
    payload: Any,
    eff: Optional[float],
    weights_for: Callable[[str, str, int], "np.ndarray"],
) -> Any:
    if op == OP_SPREAD:
        return engine.spread_counts(payload, eff)
    if op == OP_REACH:
        # Sorted lists pickle smaller and more predictably than sets.
        return [sorted(engine.reachable_ids(ids, eff)) for ids in payload]
    if op == OP_ANCESTORS:
        return sorted(engine.ancestor_ids(payload, eff))
    if op == OP_WSPREAD:
        id_sets, weights_key, weights_name, weights_len = payload
        weights = weights_for(weights_key, weights_name, weights_len)
        return engine.weighted_spread_sums(id_sets, eff, weights)
    if op == OP_FSPREAD:
        from repro.kernels.folds import resolve_fold

        id_sets, fold_spec = payload
        return engine.fold_spread_sums(id_sets, eff, resolve_fold(fold_spec))
    raise ValueError(f"unknown worker op {op!r}")
