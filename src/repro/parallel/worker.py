"""Worker-process entry point for the sharded oracle executor.

Each worker runs :func:`worker_main` forever: pull a task message off the
shared task queue, run the requested sweep against the shared-memory CSR
plane, push the result.  Task messages are tiny (op name, request id,
shard index, plane generation, id lists, horizon) — the graph itself never
crosses the pipe; workers map the published plane segments directly
(:func:`repro.parallel.plane.attach_plane_engine`) and cache the mapping
until the owner publishes a newer generation.  Weighted sweeps likewise
map the owner's published weight segment by name
(:func:`repro.parallel.plane.attach_weights`, cached per weights key) and
return 64-wide per-set weight sums instead of shipping reachable-id sets
back through the pipe.

Every result is tagged with the request id and shard index so the owner
can splice shard results back into submission order, and every failure is
reported as an ``("error", message)`` payload instead of crashing the
worker — the owner decides whether to retry serially.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

if TYPE_CHECKING:  # keep the spawn-time import graph minimal
    import numpy as np

    from repro.parallel.plane import PlaneEngine, _Attachment, _WeightsAttachment

__all__ = ["worker_main"]

#: Task opcodes (module-level so owner and worker can never drift apart).
OP_SPREAD = "spread"
OP_REACH = "reach"
OP_ANCESTORS = "ancestors"
OP_WSPREAD = "wspread"
OP_PING = "ping"
OP_STOP = "stop"


def worker_main(task_queue: Any, result_queue: Any, prefix: str) -> None:
    """Serve plane sweeps until an ``OP_STOP`` message arrives.

    Args:
        task_queue: multiprocessing queue of task tuples
            ``(op, request_id, shard_index, generation, payload, eff)``.
            For :data:`OP_WSPREAD` the payload is ``(id_sets, weights_key,
            weights_name, weights_len)``; for the other sweeps it is the
            id list(s) directly.
        result_queue: queue of ``(request_id, shard_index, outcome)``
            tuples where ``outcome`` is ``("ok", value)`` or
            ``("error", message)``.
        prefix: the shared plane's segment-name prefix.
    """
    attachment: Optional[_Attachment] = None  # current generation's mapping
    weight_maps: Dict[str, _WeightsAttachment] = {}
    # A worker only ever needs the keys of currently-live oracles; cap
    # the cache so keys of closed/collected oracles (whose segments the
    # owner already released) cannot accumulate mappings forever.
    max_weight_maps = 8

    def engine_for(generation: int) -> PlaneEngine:
        nonlocal attachment
        if attachment is None or attachment.generation != generation:
            from repro.parallel.plane import attach_plane_engine

            stale, attachment = attachment, None
            if stale is not None:
                stale.detach()
            attachment = attach_plane_engine(prefix, generation)
        return attachment.engine

    def weights_for(key: str, name: str, length: int) -> "np.ndarray":
        cached = weight_maps.get(key)
        if cached is None or cached.name != name:
            from repro.parallel.plane import attach_weights

            if cached is not None:
                cached.detach()
                del weight_maps[key]
            while len(weight_maps) >= max_weight_maps:
                stale_key = next(iter(weight_maps))  # oldest insertion
                weight_maps.pop(stale_key).detach()
            weight_maps[key] = cached = attach_weights(name, length)
        return cached.weights

    while True:
        task = task_queue.get()
        op = task[0]
        if op == OP_STOP:
            break
        if op == OP_PING:
            result_queue.put((task[1], 0, ("ok", "pong")))
            continue
        _, request_id, shard_index, generation, payload, eff = task
        try:
            engine = engine_for(generation)
            value = _run(engine, op, payload, eff, weights_for)
            result_queue.put((request_id, shard_index, ("ok", value)))
        except BaseException as exc:  # report, never crash the loop
            result_queue.put(
                (request_id, shard_index, ("error", f"{type(exc).__name__}: {exc}"))
            )
    if attachment is not None:
        attachment.detach()
    for cached in weight_maps.values():
        cached.detach()


def _run(
    engine: PlaneEngine,
    op: str,
    payload: Any,
    eff: Optional[float],
    weights_for: Callable[[str, str, int], "np.ndarray"],
) -> Any:
    if op == OP_SPREAD:
        return engine.spread_counts(payload, eff)
    if op == OP_REACH:
        # Sorted lists pickle smaller and more predictably than sets.
        return [sorted(engine.reachable_ids(ids, eff)) for ids in payload]
    if op == OP_ANCESTORS:
        return sorted(engine.ancestor_ids(payload, eff))
    if op == OP_WSPREAD:
        id_sets, weights_key, weights_name, weights_len = payload
        weights = weights_for(weights_key, weights_name, weights_len)
        return engine.weighted_spread_sums(id_sets, eff, weights)
    raise ValueError(f"unknown worker op {op!r}")
