"""Worker-process entry point for the sharded oracle executor.

Each worker runs :func:`worker_main` forever: pull a task message off the
shared task queue, run the requested sweep against the shared-memory CSR
plane, push the result.  Task messages are tiny (op name, request id,
shard index, plane generation, id lists, horizon) — the graph itself never
crosses the pipe; workers map the published plane segments directly
(:func:`repro.parallel.plane.attach_plane_engine`) and cache the mapping
until the owner publishes a newer generation.

Every result is tagged with the request id and shard index so the owner
can splice shard results back into submission order, and every failure is
reported as an ``("error", message)`` payload instead of crashing the
worker — the owner decides whether to retry serially.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["worker_main"]

#: Task opcodes (module-level so owner and worker can never drift apart).
OP_SPREAD = "spread"
OP_REACH = "reach"
OP_ANCESTORS = "ancestors"
OP_PING = "ping"
OP_STOP = "stop"


def worker_main(task_queue, result_queue, prefix: str) -> None:
    """Serve plane sweeps until an ``OP_STOP`` message arrives.

    Args:
        task_queue: multiprocessing queue of task tuples
            ``(op, request_id, shard_index, generation, payload, eff)``.
        result_queue: queue of ``(request_id, shard_index, outcome)``
            tuples where ``outcome`` is ``("ok", value)`` or
            ``("error", message)``.
        prefix: the shared plane's segment-name prefix.
    """
    attachment = None  # current generation's mapping

    def engine_for(generation: int):
        nonlocal attachment
        if attachment is None or attachment.generation != generation:
            from repro.parallel.plane import attach_plane_engine

            stale, attachment = attachment, None
            if stale is not None:
                stale.detach()
            attachment = attach_plane_engine(prefix, generation)
        return attachment.engine

    while True:
        task = task_queue.get()
        op = task[0]
        if op == OP_STOP:
            break
        if op == OP_PING:
            result_queue.put((task[1], 0, ("ok", "pong")))
            continue
        _, request_id, shard_index, generation, payload, eff = task
        try:
            engine = engine_for(generation)
            value = _run(engine, op, payload, eff)
            result_queue.put((request_id, shard_index, ("ok", value)))
        except BaseException as exc:  # report, never crash the loop
            result_queue.put(
                (request_id, shard_index, ("error", f"{type(exc).__name__}: {exc}"))
            )
    if attachment is not None:
        attachment.detach()


def _run(engine, op: str, payload, eff: Optional[float]):
    if op == OP_SPREAD:
        return engine.spread_counts(payload, eff)
    if op == OP_REACH:
        # Sorted lists pickle smaller and more predictably than sets.
        return [sorted(engine.reachable_ids(ids, eff)) for ids in payload]
    if op == OP_ANCESTORS:
        return sorted(engine.ancestor_ids(payload, eff))
    raise ValueError(f"unknown worker op {op!r}")
