"""Sharded parallel influence engine.

The scaling seam of the library: a shared-memory **CSR plane** publishes
the graph's flat reachability arrays per epoch (:mod:`repro.parallel.
plane`), a persistent worker pool shards batched spread / ancestor sweeps
across processes (:mod:`repro.parallel.executor`) under explicit
supervision — dead workers respawn within a restart budget
(:mod:`repro.parallel.supervisor`), degradation is an inspectable,
*recoverable* state machine (:mod:`repro.parallel.degradation`), and a
seeded fault-injection harness drives it all deterministically in the
chaos suite (:mod:`repro.parallel.faults`) — and an asyncio **ingest
service** applies interaction batches with backpressure, journaled writer
recovery and staleness-flagged top-k serving against the last consistent
epoch (:mod:`repro.parallel.service`).

Everything is wired in through ``InfluenceOracle(parallel=...)`` /
``WeightedInfluenceOracle(parallel=...)`` — SieveADN, BasicReduction and
HistApprox inherit the parallel substrate untouched, and the sharded
engine is bit-for-bit equivalent to the serial one (same solutions, same
spread values, same oracle-call counts; pinned by the equivalence suite
and re-pinned under every seeded fault plan by the chaos suite).
"""

from repro.parallel.degradation import (
    DegradationLadder,
    DegradationReason,
    DegradationState,
)
from repro.parallel.executor import (
    ShardedOracleExecutor,
    merge_shard_counts,
    shard_slices,
)
from repro.parallel.faults import FaultInjected, FaultPlan
from repro.parallel.plane import (
    PlaneEngine,
    SharedCSRPlane,
    shared_memory_available,
)
from repro.parallel.service import IngestService, TopKAnswer, WriterDeathError
from repro.parallel.supervisor import WorkerSupervisor

__all__ = [
    "DegradationLadder",
    "DegradationReason",
    "DegradationState",
    "FaultInjected",
    "FaultPlan",
    "IngestService",
    "PlaneEngine",
    "ShardedOracleExecutor",
    "SharedCSRPlane",
    "TopKAnswer",
    "WorkerSupervisor",
    "WriterDeathError",
    "merge_shard_counts",
    "shard_slices",
    "shared_memory_available",
]
