"""Sharded parallel influence engine.

The scaling seam of the library: a shared-memory **CSR plane** publishes
the graph's flat reachability arrays per epoch (:mod:`repro.parallel.
plane`), a persistent worker pool shards batched spread / ancestor sweeps
across processes with a graceful serial fallback (:mod:`repro.parallel.
executor`), and an asyncio **ingest service** applies interaction batches
with backpressure while serving top-k queries against the last consistent
epoch (:mod:`repro.parallel.service`).

Everything is wired in through ``InfluenceOracle(parallel=...)`` /
``WeightedInfluenceOracle(parallel=...)`` — SieveADN, BasicReduction and
HistApprox inherit the parallel substrate untouched, and the sharded
engine is bit-for-bit equivalent to the serial one (same solutions, same
spread values, same oracle-call counts; pinned by the equivalence suite).
"""

from repro.parallel.executor import (
    ShardedOracleExecutor,
    merge_shard_counts,
    shard_slices,
)
from repro.parallel.plane import (
    PlaneEngine,
    SharedCSRPlane,
    shared_memory_available,
)
from repro.parallel.service import IngestService, TopKAnswer

__all__ = [
    "IngestService",
    "PlaneEngine",
    "ShardedOracleExecutor",
    "SharedCSRPlane",
    "TopKAnswer",
    "merge_shard_counts",
    "shard_slices",
    "shared_memory_available",
]
