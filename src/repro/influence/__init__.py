"""Influence-spread machinery on TDNs.

Implements the paper's influence spread ``f_t(S)`` (Definition 3) — the
number of distinct nodes reachable from ``S`` in ``G_t`` — together with the
changed-node computation that drives SIEVEADN's node stream, and the
independent-cascade (IC) machinery needed by the RR-set baselines (IMM, TIM+,
DIM) the paper compares against.
"""

from repro.influence.reachability import ancestors, reachable_set
from repro.influence.oracle import (
    MEMO_MODES,
    ORACLE_BACKENDS,
    InfluenceOracle,
    MemoTable,
)
from repro.influence.changed import changed_nodes
from repro.influence.fast_spread import (
    all_singleton_spreads,
    strongly_connected_components,
    top_spreaders,
)
from repro.influence.probabilities import (
    WeightedGraphSnapshot,
    interactions_to_probability,
)
from repro.influence.ic_model import estimate_spread_mc, simulate_ic

__all__ = [
    "reachable_set",
    "ancestors",
    "InfluenceOracle",
    "MemoTable",
    "MEMO_MODES",
    "ORACLE_BACKENDS",
    "changed_nodes",
    "interactions_to_probability",
    "WeightedGraphSnapshot",
    "simulate_ic",
    "estimate_spread_mc",
    "all_singleton_spreads",
    "strongly_connected_components",
    "top_spreaders",
]
