"""Independent cascade (IC) diffusion on weighted graph snapshots.

The RR-set baselines (IMM, TIM+, DIM) maximize *expected IC spread*; this
module provides forward simulation of the cascade and the Monte-Carlo spread
estimator used to cross-check the RR-set estimates in tests.  Under IC, when
node ``u`` becomes active it gets one chance to activate each inactive
out-neighbor ``v`` with probability ``p_uv``.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Hashable, Set

from repro.influence.probabilities import WeightedGraphSnapshot
from repro.utils.rng import SeedLike, make_rng

Node = Hashable


def simulate_ic(
    snapshot: WeightedGraphSnapshot,
    seeds: Iterable[Node],
    *,
    rng: SeedLike = None,
) -> Set[Node]:
    """Run one IC cascade from ``seeds``; returns the activated label set.

    Seeds absent from the snapshot are activated but cannot spread.
    """
    rand = make_rng(rng)
    active_idx: Set[int] = set()
    missing: Set[Node] = set()
    queue: deque = deque()
    for seed in seeds:
        idx = snapshot.index.get(seed)
        if idx is None:
            missing.add(seed)
        elif idx not in active_idx:
            active_idx.add(idx)
            queue.append(idx)
    while queue:
        u = queue.popleft()
        for v, p in snapshot.out_adj[u]:
            if v not in active_idx and rand.random() < p:
                active_idx.add(v)
                queue.append(v)
    activated = {snapshot.labels[i] for i in active_idx}
    activated.update(missing)
    return activated


def estimate_spread_mc(
    snapshot: WeightedGraphSnapshot,
    seeds: Iterable[Node],
    *,
    num_simulations: int = 1000,
    rng: SeedLike = None,
) -> float:
    """Monte-Carlo estimate of the expected IC spread of ``seeds``.

    Used by tests to validate the RR-set estimators (they must agree within
    sampling error) and by the DIM baseline's quality self-checks.
    """
    if num_simulations < 1:
        raise ValueError(f"num_simulations must be >= 1, got {num_simulations}")
    rand = make_rng(rng)
    seeds = list(seeds)
    total = 0
    for _ in range(num_simulations):
        total += len(simulate_ic(snapshot, seeds, rng=rand))
    return total / num_simulations
