"""Computing the changed-node set ``V_t-bar`` (paper Alg. 1, line 3).

SIEVEADN feeds its internal sieve not with edges but with *nodes whose
influence spread changed* when the batch ``E_t-bar`` was inserted.  Adding an
edge ``(u, v)`` can only increase the spread of nodes that can reach ``u``
(their reachable set may now extend through ``v``), so the exact changed set
is contained in the ancestors of the batch's source endpoints.

Two modes are provided:

* ``"ancestors"`` (default, used by the paper-faithful configuration):
  reverse BFS from the source endpoints over the instance's subgraph.  This
  is a tight superset of the truly changed nodes and preserves the
  approximation proof — feeding extra unchanged nodes never hurts
  correctness, only costs oracle calls.
* ``"sources"``: just the source endpoints themselves.  This is the cheap
  heuristic many streaming systems use; it can miss upstream nodes whose
  spread grew, so it trades a little quality for speed.  Exposed for the
  ablation benchmarks.

Two interchangeable sweep engines compute the ancestors (``backend``):

* ``"csr"``: the transpose of the graph's delta-CSR engine — an
  array-visited reverse BFS over the lazily built base transpose plus the
  reverse arrival overlay (:meth:`repro.tdn.csr.DeltaCSR.ancestor_ids`).
  This is the engine SIEVEADN uses when its oracle runs on the CSR
  backend, eliminating the per-object dict walk from Alg. 1's hot line.
* ``"dict"``: the reference pure-Python reverse BFS over the graph's
  dict-of-dict in-adjacency (:func:`repro.influence.reachability.ancestors`).

Both produce the identical node set; the returned order is deterministic
either way (sorted by interned id — see :func:`changed_nodes`).
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Set

from repro.influence.reachability import ancestors
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction

Node = Hashable

CHANGED_NODE_MODES = ("ancestors", "sources")
CHANGED_NODE_BACKENDS = ("dict", "csr")


def changed_nodes(
    graph: TDNGraph,
    batch: Iterable[Interaction],
    min_expiry: Optional[float] = None,
    mode: str = "ancestors",
    backend: str = "dict",
) -> List[Node]:
    """Return ``V_t-bar`` for a batch already inserted into ``graph``.

    Must be called *after* the batch has been added: paths through other
    edges of the same batch count toward reachability.

    Args:
        graph: the shared TDN (batch already inserted).
        batch: the interactions that just arrived.
        min_expiry: the calling instance's horizon filter.
        mode: ``"ancestors"`` or ``"sources"`` (see module docstring).
        backend: ``"dict"`` (reference reverse BFS) or ``"csr"``
            (transpose-backed array sweep); identical results either way.

    Returns:
        The changed nodes in deterministic order: sorted by interned id
        (first-appearance order, O(1) per node), with a ``repr`` tiebreak
        only for nodes that were never interned — so runs are reproducible
        regardless of set iteration order and the common path never pays
        the per-node ``repr`` allocation.
    """
    if mode not in CHANGED_NODE_MODES:
        raise ValueError(f"mode must be one of {CHANGED_NODE_MODES}, got {mode!r}")
    if backend not in CHANGED_NODE_BACKENDS:
        raise ValueError(
            f"backend must be one of {CHANGED_NODE_BACKENDS}, got {backend!r}"
        )
    sources: Set[Node] = {interaction.source for interaction in batch}
    if not sources:
        return []
    if mode == "ancestors" and backend == "csr":
        return _csr_ancestors_ordered(graph, sources, min_expiry)
    if mode == "sources":
        result = sources
    else:
        result = ancestors(graph, sources, min_expiry)
    node_id = graph.node_id

    def order_key(node: Node):
        interned = node_id(node)
        if interned is None:
            return (1, repr(node))
        return (0, interned)

    return sorted(result, key=order_key)


def nodes_in_id_order(graph: TDNGraph, ids: Iterable[int]) -> List[Node]:
    """Materialize interned ids as nodes, sorted by id (canonical order).

    This is the deterministic changed-node ordering: interned id equals
    first-appearance order, so the output is stable across runs regardless
    of set iteration order.  Shared by the CSR sweep below and by
    SIEVEADN's reuse of the oracle's dirty-cone closure, so the two paths
    can never order candidates differently.
    """
    node_of_id = graph.node_of_id
    return [node_of_id(i) for i in sorted(ids)]


def _csr_ancestors_ordered(
    graph: TDNGraph, sources: Set[Node], min_expiry: Optional[float]
) -> List[Node]:
    """Reverse sweep on the delta-CSR transpose, already in output order.

    The sweep works in id space, so the deterministic order comes from a
    plain numeric sort of the ancestor ids — no id -> node -> id round
    trip per candidate.  Uninterned sources (defensive: the batch contract
    says they were inserted) trivially reach only themselves and sort
    after every interned node, by ``repr``.
    """
    ids: List[int] = []
    extra: List[Node] = []
    # Order-safe: both accumulators are fully re-sorted below (numeric id
    # order / repr), so set iteration order cannot leak into the output.
    # repro-lint: disable-next=RPL401
    for source in sources:
        source_id = graph.node_id(source)
        if source_id is None:
            extra.append(source)
        else:
            ids.append(source_id)
    ordered: List[Node] = []
    if ids:
        ancestor_ids = graph.csr().ancestor_ids(ids, min_expiry)
        ordered.extend(nodes_in_id_order(graph, ancestor_ids))
    ordered.extend(sorted(extra, key=repr))
    return ordered
