"""Computing the changed-node set ``V_t-bar`` (paper Alg. 1, line 3).

SIEVEADN feeds its internal sieve not with edges but with *nodes whose
influence spread changed* when the batch ``E_t-bar`` was inserted.  Adding an
edge ``(u, v)`` can only increase the spread of nodes that can reach ``u``
(their reachable set may now extend through ``v``), so the exact changed set
is contained in the ancestors of the batch's source endpoints.

Two modes are provided:

* ``"ancestors"`` (default, used by the paper-faithful configuration):
  reverse BFS from the source endpoints over the instance's subgraph.  This
  is a tight superset of the truly changed nodes and preserves the
  approximation proof — feeding extra unchanged nodes never hurts
  correctness, only costs oracle calls.
* ``"sources"``: just the source endpoints themselves.  This is the cheap
  heuristic many streaming systems use; it can miss upstream nodes whose
  spread grew, so it trades a little quality for speed.  Exposed for the
  ablation benchmarks.
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Optional, Set

from repro.influence.reachability import ancestors
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction

Node = Hashable

CHANGED_NODE_MODES = ("ancestors", "sources")


def changed_nodes(
    graph: TDNGraph,
    batch: Iterable[Interaction],
    min_expiry: Optional[float] = None,
    mode: str = "ancestors",
) -> List[Node]:
    """Return ``V_t-bar`` for a batch already inserted into ``graph``.

    Must be called *after* the batch has been added: paths through other
    edges of the same batch count toward reachability.

    Args:
        graph: the shared TDN (batch already inserted).
        batch: the interactions that just arrived.
        min_expiry: the calling instance's horizon filter.
        mode: ``"ancestors"`` or ``"sources"`` (see module docstring).

    Returns:
        The changed nodes in deterministic (sorted-by-string) order so that
        runs are reproducible regardless of set iteration order.
    """
    if mode not in CHANGED_NODE_MODES:
        raise ValueError(f"mode must be one of {CHANGED_NODE_MODES}, got {mode!r}")
    sources: Set[Node] = {interaction.source for interaction in batch}
    if not sources:
        return []
    if mode == "sources":
        result = sources
    else:
        result = ancestors(graph, sources, min_expiry)
    return sorted(result, key=repr)
