"""Horizon-filtered reachability on a :class:`~repro.tdn.graph.TDNGraph`.

The influence spread of Definition 3 is plain directed reachability.  The
two breadth-first traversals here are the *reference* engine: the oracle's
default ``backend="csr"`` answers forward reachability from the delta-CSR
engine (:mod:`repro.tdn.csr`) instead, and :func:`ancestors` has a
transpose-backed counterpart there
(:meth:`~repro.tdn.csr.DeltaCSR.ancestor_ids`) used by ``changed_nodes``;
both compact paths are pinned to agree with the functions here by the
cross-backend equivalence suite.  All traversals accept a ``min_expiry``
horizon: only edges with expiry at or above the horizon are traversed,
which is how a single shared graph serves SIEVEADN instances with
different lifetime horizons (DESIGN.md Section 2).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Optional, Set

from repro.tdn.graph import TDNGraph

Node = Hashable


def reachable_set(
    graph: TDNGraph,
    sources: Iterable[Node],
    min_expiry: Optional[float] = None,
) -> Set[Node]:
    """Return all nodes reachable from ``sources`` (including the sources).

    A node is reachable from itself via the empty path, so every source that
    exists in the graph contributes itself to the result.  Sources that are
    not present in the (filtered) graph still count as reached — a seed node
    trivially "influences" itself — except that nodes entirely absent from
    the alive graph contribute only themselves.

    Args:
        graph: the shared TDN.
        sources: seed nodes ``S``.
        min_expiry: traverse only edges with expiry >= this horizon
            (``None`` = every alive edge).
    """
    visited: Set[Node] = set()
    queue: deque = deque()
    for s in sources:
        if s not in visited:
            visited.add(s)
            queue.append(s)
    while queue:
        node = queue.popleft()
        for nxt in graph.out_neighbors(node, min_expiry):
            if nxt not in visited:
                visited.add(nxt)
                queue.append(nxt)
    return visited


def ancestors(
    graph: TDNGraph,
    targets: Iterable[Node],
    min_expiry: Optional[float] = None,
) -> Set[Node]:
    """Return all nodes that can reach ``targets`` (including the targets).

    This is the reverse-BFS used to compute the changed-node set
    ``V_t-bar``: when an edge ``(u, v)`` is inserted, exactly the nodes that
    can reach ``u`` may see their influence spread grow.
    """
    visited: Set[Node] = set()
    queue: deque = deque()
    for s in targets:
        if s not in visited:
            visited.add(s)
            queue.append(s)
    while queue:
        node = queue.popleft()
        for prev in graph.in_neighbors(node, min_expiry):
            if prev not in visited:
                visited.add(prev)
                queue.append(prev)
    return visited
