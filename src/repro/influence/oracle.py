"""The influence oracle: counted, cached evaluations of ``f_t(S)``.

Every algorithm in the paper is measured in *oracle calls* — evaluations of
the influence spread ``f_t`` — because that evaluation (one BFS) dominates
runtime and is hardware independent.  :class:`InfluenceOracle` is the single
gateway through which all algorithms evaluate spreads:

* it counts real evaluations into a shared :class:`CallCounter`;
* it memoizes results per graph version, so repeated evaluation of the same
  set within one time step (e.g. the current sieve set ``S_theta`` while a
  batch of candidates streams past) costs one call, mirroring how any
  sensible implementation caches ``f(S)`` when computing marginal gains;
* it accepts a ``min_expiry`` horizon so each SIEVEADN instance evaluates on
  its own addition-only subgraph while sharing the one TDN.

Backends
--------
Two interchangeable reachability engines sit behind the same API:

* ``"csr"`` (default): the compact engine of :mod:`repro.tdn.csr` — one
  flat-array snapshot per graph version, array-visited frontier BFS, the
  same per-pair max-expiry horizon test.  :meth:`spread_many` evaluates a
  whole batch of sets against one shared snapshot.
* ``"dict"``: the reference pure-Python BFS over the graph's dict-of-dict
  adjacency (:func:`repro.influence.reachability.reachable_set`).

Both return identical values and spend identical oracle calls — the
cross-backend equivalence suite pins this on seeded streams — so the
accounting shown in the paper's figures is backend independent.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.influence.reachability import reachable_set
from repro.tdn.graph import TDNGraph
from repro.utils.counters import CallCounter

Node = Hashable

_CacheKey = Tuple[Optional[float], FrozenSet[Node]]

#: Selectable reachability engines.
ORACLE_BACKENDS = ("csr", "dict")


def fifo_cache_put(cache: dict, key, value, max_entries: int) -> None:
    """Insert into a FIFO-bounded memo table.

    Dicts preserve insertion order, so the first key is the oldest memo;
    evicting it keeps recent spreads hot under cache pressure instead of
    disabling memoization outright.  ``max_entries=0`` disables the table
    (nothing is ever stored).  Shared by :class:`InfluenceOracle` and
    :class:`~repro.influence.weighted.WeightedInfluenceOracle` so the two
    cache policies can never drift apart.
    """
    if max_entries <= 0:
        return
    if len(cache) >= max_entries:
        del cache[next(iter(cache))]
    cache[key] = value


class InfluenceOracle:
    """Evaluates the paper's influence spread with counting and caching.

    Args:
        graph: the shared TDN the spread is computed on.
        counter: the call counter to increment on every *real* evaluation
            (cache hits are free — they would be cached in any realistic
            implementation and the paper's counts assume as much for the
            lazy-greedy baseline).
        max_cache_entries: bound on the per-version memo table.  When the
            table is full the *oldest* entry is evicted to admit the new
            one (FIFO), so memoization keeps working through long
            query-heavy phases instead of silently shutting off.
        backend: ``"csr"`` (compact flat-array engine, default) or
            ``"dict"`` (reference dict-of-dict BFS).

    The memo table is invalidated wholesale whenever ``graph.version``
    changes, so stale spreads can never leak across structural updates.
    """

    def __init__(
        self,
        graph: TDNGraph,
        counter: Optional[CallCounter] = None,
        *,
        max_cache_entries: int = 200_000,
        backend: str = "csr",
    ) -> None:
        if backend not in ORACLE_BACKENDS:
            raise ValueError(
                f"backend must be one of {ORACLE_BACKENDS}, got {backend!r}"
            )
        if max_cache_entries < 0:
            raise ValueError(
                f"max_cache_entries must be >= 0, got {max_cache_entries}"
            )
        self.graph = graph
        self.backend = backend
        self.counter = counter if counter is not None else CallCounter("oracle")
        self._max_cache_entries = max_cache_entries
        self._cache: dict = {}
        self._cache_version = graph.version

    # ------------------------------------------------------------------
    def spread(self, nodes: Iterable[Node], min_expiry: Optional[float] = None) -> int:
        """Return ``f_t(S)``: distinct nodes reachable from ``nodes``.

        ``f_t(empty set) = 0`` (the function is normalized).  The horizon
        ``min_expiry`` restricts traversal to edges expiring at or after it.
        """
        key_nodes = frozenset(nodes)
        if not key_nodes:
            return 0
        self._sync_version()
        return self._spread_cached(key_nodes, min_expiry)

    def spread_many(
        self,
        sets: Sequence[Iterable[Node]],
        min_expiry: Optional[float] = None,
    ) -> List[int]:
        """Evaluate ``f_t`` for a whole batch of sets at one horizon.

        Semantically identical to ``[self.spread(s, min_expiry) for s in
        sets]`` — same values, same cache behavior, same call counting in
        the same order.  The whole batch shares one version check, and on
        the CSR backend every miss evaluates against the one version-keyed
        snapshot (:meth:`TDNGraph.csr` caches it, so the first miss builds
        and the rest reuse), which is what makes feeding a SIEVEADN
        candidate sweep through the oracle cheap.
        """
        self._sync_version()
        results: List[int] = []
        for nodes in sets:
            key_nodes = frozenset(nodes)
            results.append(
                self._spread_cached(key_nodes, min_expiry) if key_nodes else 0
            )
        return results

    def marginal_gain(
        self,
        base: Iterable[Node],
        candidate: Node,
        min_expiry: Optional[float] = None,
    ) -> int:
        """Return ``f_t(base + {candidate}) - f_t(base)``.

        The base spread is typically a cache hit (it is re-used across the
        whole candidate batch), so a marginal gain usually costs one oracle
        call, exactly as in the paper's accounting.
        """
        base_set = frozenset(base)
        with_candidate = base_set | {candidate}
        if len(with_candidate) == len(base_set):
            return 0
        return self.spread(with_candidate, min_expiry) - self.spread(base_set, min_expiry)

    # ------------------------------------------------------------------
    def _sync_version(self) -> None:
        if self.graph.version != self._cache_version:
            self._cache.clear()
            self._cache_version = self.graph.version

    def _spread_cached(
        self, key_nodes: FrozenSet[Node], min_expiry: Optional[float]
    ) -> int:
        key: _CacheKey = (min_expiry, key_nodes)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        self.counter.increment()
        value = self._evaluate(key_nodes, min_expiry)
        fifo_cache_put(self._cache, key, value, self._max_cache_entries)
        return value

    def _evaluate(
        self, key_nodes: FrozenSet[Node], min_expiry: Optional[float]
    ) -> int:
        if self.backend == "dict":
            return len(reachable_set(self.graph, key_nodes, min_expiry))
        ids, unknown = self.graph.intern_ids(key_nodes)
        if not ids:
            return unknown
        return self.graph.csr().reachable_count(ids, min_expiry) + unknown

    # ------------------------------------------------------------------
    @property
    def calls(self) -> int:
        """Total real evaluations so far."""
        return self.counter.total

    def invalidate(self) -> None:
        """Drop the memo table (tests use this to force recomputation)."""
        self._cache.clear()
        self._cache_version = self.graph.version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InfluenceOracle(backend={self.backend!r}, "
            f"calls={self.counter.total}, cached={len(self._cache)})"
        )
