"""The influence oracle: counted, cached evaluations of ``f_t(S)``.

Every algorithm in the paper is measured in *oracle calls* — evaluations of
the influence spread ``f_t`` — because that evaluation (one BFS) dominates
runtime and is hardware independent.  :class:`InfluenceOracle` is the single
gateway through which all algorithms evaluate spreads:

* it counts real evaluations into a shared :class:`CallCounter`;
* it memoizes results per graph version, so repeated evaluation of the same
  set within one time step (e.g. the current sieve set ``S_theta`` while a
  batch of candidates streams past) costs one call, mirroring how any
  sensible implementation caches ``f(S)`` when computing marginal gains;
* it accepts a ``min_expiry`` horizon so each SIEVEADN instance evaluates on
  its own addition-only subgraph while sharing the one TDN.

Backends
--------
Two interchangeable reachability engines sit behind the same API:

* ``"csr"`` (default): the incrementally maintained delta-CSR engine of
  :mod:`repro.tdn.csr` — an immutable base snapshot plus O(1)-per-edge
  overlay/tombstone deltas (no per-version rebuild), array-visited
  frontier BFS, the same per-pair max-expiry horizon test.
* ``"dict"``: the reference pure-Python BFS over the graph's dict-of-dict
  adjacency (:func:`repro.influence.reachability.reachable_set`).

Bit-plane batching
------------------
On the CSR backend, :meth:`InfluenceOracle.spread_many` does not issue one
traversal per set.  It first replays the *sequential* cache protocol —
walking the batch in order, taking hits, counting one oracle call per miss,
and reserving each miss's FIFO cache slot — and then evaluates all distinct
misses through :meth:`DeltaCSR.spread_counts`, which packs up to 64 seed
sets into uint64 visited-mask planes and propagates them to fixpoint in a
single shared multi-source sweep.  The *accounting* is therefore exactly
what ``[self.spread(s) for s in sets]`` would produce — same values, same
call counts, same cache evictions in the same order — while the *physics*
costs one multi-BFS per 64 sets.

Both backends return identical values and spend identical oracle calls —
the cross-backend equivalence suite pins this on seeded streams — so the
accounting shown in the paper's figures is backend independent.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.influence.reachability import reachable_set
from repro.tdn.graph import TDNGraph
from repro.utils.counters import CallCounter

Node = Hashable

_CacheKey = Tuple[Optional[float], FrozenSet[Node]]

#: Selectable reachability engines.
ORACLE_BACKENDS = ("csr", "dict")

#: In-batch placeholder for a cache slot whose value is still being
#: evaluated by the shared bit-plane sweep.  Reserving the slot up front
#: keeps FIFO insertion (and eviction) order identical to a sequential
#: evaluation of the batch.
_PENDING = object()


def fifo_cache_put(cache: dict, key, value, max_entries: int) -> None:
    """Insert into a FIFO-bounded memo table.

    Dicts preserve insertion order, so the first key is the oldest memo;
    evicting it keeps recent spreads hot under cache pressure instead of
    disabling memoization outright.  ``max_entries=0`` disables the table
    (nothing is ever stored).  Shared by :class:`InfluenceOracle` and
    :class:`~repro.influence.weighted.WeightedInfluenceOracle` so the two
    cache policies can never drift apart.
    """
    if max_entries <= 0:
        return
    if len(cache) >= max_entries:
        del cache[next(iter(cache))]
    cache[key] = value


class InfluenceOracle:
    """Evaluates the paper's influence spread with counting and caching.

    Args:
        graph: the shared TDN the spread is computed on.
        counter: the call counter to increment on every *real* evaluation
            (cache hits are free — they would be cached in any realistic
            implementation and the paper's counts assume as much for the
            lazy-greedy baseline).
        max_cache_entries: bound on the per-version memo table.  When the
            table is full the *oldest* entry is evicted to admit the new
            one (FIFO), so memoization keeps working through long
            query-heavy phases instead of silently shutting off.
        backend: ``"csr"`` (compact flat-array engine, default) or
            ``"dict"`` (reference dict-of-dict BFS).

    The memo table is invalidated wholesale whenever ``graph.version``
    changes, so stale spreads can never leak across structural updates.
    """

    def __init__(
        self,
        graph: TDNGraph,
        counter: Optional[CallCounter] = None,
        *,
        max_cache_entries: int = 200_000,
        backend: str = "csr",
    ) -> None:
        if backend not in ORACLE_BACKENDS:
            raise ValueError(
                f"backend must be one of {ORACLE_BACKENDS}, got {backend!r}"
            )
        if max_cache_entries < 0:
            raise ValueError(
                f"max_cache_entries must be >= 0, got {max_cache_entries}"
            )
        self.graph = graph
        self.backend = backend
        self.counter = counter if counter is not None else CallCounter("oracle")
        self._max_cache_entries = max_cache_entries
        self._cache: dict = {}
        self._cache_version = graph.version

    # ------------------------------------------------------------------
    def spread(self, nodes: Iterable[Node], min_expiry: Optional[float] = None) -> int:
        """Return ``f_t(S)``: distinct nodes reachable from ``nodes``.

        ``f_t(empty set) = 0`` (the function is normalized).  The horizon
        ``min_expiry`` restricts traversal to edges expiring at or after it.
        """
        key_nodes = frozenset(nodes)
        if not key_nodes:
            return 0
        self._sync_version()
        return self._spread_cached(key_nodes, min_expiry)

    def spread_many(
        self,
        sets: Sequence[Iterable[Node]],
        min_expiry: Optional[float] = None,
    ) -> List[int]:
        """Evaluate ``f_t`` for a whole batch of sets at one horizon.

        Semantically identical to ``[self.spread(s, min_expiry) for s in
        sets]`` — same values, same cache behavior, same call counting in
        the same order.  On the CSR backend the cache protocol is replayed
        sequentially (hits, per-miss counting, FIFO slot reservation) but
        the distinct misses are then evaluated together through the
        engine's bit-plane multi-source sweep — one shared traversal per
        64 sets instead of one BFS per set — which is what makes feeding a
        SIEVEADN candidate sweep through the oracle cheap.
        """
        self._sync_version()
        if self.backend == "dict":
            reference: List[int] = []
            for nodes in sets:
                key_nodes = frozenset(nodes)
                reference.append(
                    self._spread_cached(key_nodes, min_expiry) if key_nodes else 0
                )
            return reference
        results: List[Optional[int]] = [None] * len(sets)
        cache = self._cache
        miss_keys: List[_CacheKey] = []  # first-miss order, mirrors sequential
        miss_sets: List[FrozenSet[Node]] = []
        slot_of: dict = {}
        placements: List[Tuple[int, int]] = []  # (result index, miss slot)
        for i, nodes in enumerate(sets):
            key_nodes = frozenset(nodes)
            if not key_nodes:
                results[i] = 0
                continue
            key: _CacheKey = (min_expiry, key_nodes)
            hit = cache.get(key)
            if hit is _PENDING:
                # Duplicate of an in-batch miss: a sequential run would hit
                # the (by then populated) cache entry — no call counted.
                placements.append((i, slot_of[key]))
                continue
            if hit is not None:
                results[i] = hit
                continue
            self.counter.increment()
            slot = slot_of.get(key)
            if slot is None:
                slot = len(miss_keys)
                slot_of[key] = slot
                miss_keys.append(key)
                miss_sets.append(key_nodes)
            # Reserve the FIFO slot exactly where a sequential evaluation
            # would have inserted the computed value (a re-counted miss —
            # its reservation evicted mid-batch — re-inserts, as it would
            # sequentially).
            fifo_cache_put(cache, key, _PENDING, self._max_cache_entries)
            placements.append((i, slot))
        if miss_sets:
            try:
                values = self._evaluate_batch(miss_sets, min_expiry)
            except BaseException:
                for key in miss_keys:
                    if cache.get(key) is _PENDING:
                        del cache[key]
                raise
            for key, value in zip(miss_keys, values):
                if cache.get(key) is _PENDING:
                    cache[key] = value
            for i, slot in placements:
                results[i] = values[slot]
        return results

    def marginal_gain(
        self,
        base: Iterable[Node],
        candidate: Node,
        min_expiry: Optional[float] = None,
    ) -> int:
        """Return ``f_t(base + {candidate}) - f_t(base)``.

        The base spread is typically a cache hit (it is re-used across the
        whole candidate batch), so a marginal gain usually costs one oracle
        call, exactly as in the paper's accounting.
        """
        base_set = frozenset(base)
        with_candidate = base_set | {candidate}
        if len(with_candidate) == len(base_set):
            return 0
        return self.spread(with_candidate, min_expiry) - self.spread(base_set, min_expiry)

    # ------------------------------------------------------------------
    def _sync_version(self) -> None:
        if self.graph.version != self._cache_version:
            self._cache.clear()
            self._cache_version = self.graph.version

    def _spread_cached(
        self, key_nodes: FrozenSet[Node], min_expiry: Optional[float]
    ) -> int:
        key: _CacheKey = (min_expiry, key_nodes)
        hit = self._cache.get(key)
        if hit is not None and hit is not _PENDING:
            return hit
        self.counter.increment()
        value = self._evaluate(key_nodes, min_expiry)
        fifo_cache_put(self._cache, key, value, self._max_cache_entries)
        return value

    def _evaluate(
        self, key_nodes: FrozenSet[Node], min_expiry: Optional[float]
    ) -> int:
        if self.backend == "dict":
            return len(reachable_set(self.graph, key_nodes, min_expiry))
        ids, unknown = self.graph.intern_ids(key_nodes)
        if not ids:
            return unknown
        return self.graph.csr().reachable_count(ids, min_expiry) + unknown

    def _evaluate_batch(
        self, key_sets: Sequence[FrozenSet[Node]], min_expiry: Optional[float]
    ) -> List[int]:
        """Evaluate distinct cache misses via the shared bit-plane sweep."""
        graph = self.graph
        values: List[int] = [0] * len(key_sets)
        id_sets: List[List[int]] = []
        unknowns: List[int] = []
        pending: List[int] = []
        for j, key_nodes in enumerate(key_sets):
            ids, unknown = graph.intern_ids(key_nodes)
            if ids:
                pending.append(j)
                id_sets.append(ids)
                unknowns.append(unknown)
            else:
                values[j] = unknown
        if id_sets:
            counts = graph.csr().spread_counts(id_sets, min_expiry)
            for j, count, unknown in zip(pending, counts, unknowns):
                values[j] = count + unknown
        return values

    # ------------------------------------------------------------------
    @property
    def calls(self) -> int:
        """Total real evaluations so far."""
        return self.counter.total

    def invalidate(self) -> None:
        """Drop the memo table (tests use this to force recomputation)."""
        self._cache.clear()
        self._cache_version = self.graph.version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InfluenceOracle(backend={self.backend!r}, "
            f"calls={self.counter.total}, cached={len(self._cache)})"
        )
