"""The influence oracle: counted, cached evaluations of ``f_t(S)``.

Every algorithm in the paper is measured in *oracle calls* — evaluations of
the influence spread ``f_t`` — because that evaluation (one BFS) dominates
runtime and is hardware independent.  :class:`InfluenceOracle` is the single
gateway through which all algorithms evaluate spreads:

* it counts real evaluations into a shared :class:`CallCounter`;
* it memoizes results per graph version, so repeated evaluation of the same
  set within one time step (e.g. the current sieve set ``S_theta`` while a
  batch of candidates streams past) costs one call, mirroring how any
  sensible implementation caches ``f(S)`` when computing marginal gains;
* it accepts a ``min_expiry`` horizon so each SIEVEADN instance evaluates on
  its own addition-only subgraph while sharing the one TDN.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, Optional, Tuple

from repro.influence.reachability import reachable_set
from repro.tdn.graph import TDNGraph
from repro.utils.counters import CallCounter

Node = Hashable

_CacheKey = Tuple[Optional[float], FrozenSet[Node]]


class InfluenceOracle:
    """Evaluates the paper's influence spread with counting and caching.

    Args:
        graph: the shared TDN the spread is computed on.
        counter: the call counter to increment on every *real* evaluation
            (cache hits are free — they would be cached in any realistic
            implementation and the paper's counts assume as much for the
            lazy-greedy baseline).
        max_cache_entries: safety bound on the per-version memo table.

    The memo table is invalidated wholesale whenever ``graph.version``
    changes, so stale spreads can never leak across structural updates.
    """

    def __init__(
        self,
        graph: TDNGraph,
        counter: Optional[CallCounter] = None,
        *,
        max_cache_entries: int = 200_000,
    ) -> None:
        self.graph = graph
        self.counter = counter if counter is not None else CallCounter("oracle")
        self._max_cache_entries = max_cache_entries
        self._cache: dict = {}
        self._cache_version = graph.version

    # ------------------------------------------------------------------
    def spread(self, nodes: Iterable[Node], min_expiry: Optional[float] = None) -> int:
        """Return ``f_t(S)``: distinct nodes reachable from ``nodes``.

        ``f_t(empty set) = 0`` (the function is normalized).  The horizon
        ``min_expiry`` restricts traversal to edges expiring at or after it.
        """
        key_nodes = frozenset(nodes)
        if not key_nodes:
            return 0
        if self.graph.version != self._cache_version:
            self._cache.clear()
            self._cache_version = self.graph.version
        key: _CacheKey = (min_expiry, key_nodes)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        self.counter.increment()
        value = len(reachable_set(self.graph, key_nodes, min_expiry))
        if len(self._cache) < self._max_cache_entries:
            self._cache[key] = value
        return value

    def marginal_gain(
        self,
        base: Iterable[Node],
        candidate: Node,
        min_expiry: Optional[float] = None,
    ) -> int:
        """Return ``f_t(base + {candidate}) - f_t(base)``.

        The base spread is typically a cache hit (it is re-used across the
        whole candidate batch), so a marginal gain usually costs one oracle
        call, exactly as in the paper's accounting.
        """
        base_set = frozenset(base)
        with_candidate = base_set | {candidate}
        if len(with_candidate) == len(base_set):
            return 0
        return self.spread(with_candidate, min_expiry) - self.spread(base_set, min_expiry)

    # ------------------------------------------------------------------
    @property
    def calls(self) -> int:
        """Total real evaluations so far."""
        return self.counter.total

    def invalidate(self) -> None:
        """Drop the memo table (tests use this to force recomputation)."""
        self._cache.clear()
        self._cache_version = self.graph.version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InfluenceOracle(calls={self.counter.total}, cached={len(self._cache)})"
