"""The influence oracle: counted, cached evaluations of ``f_t(S)``.

Every algorithm in the paper is measured in *oracle calls* — evaluations of
the influence spread ``f_t`` — because that evaluation (one BFS) dominates
runtime and is hardware independent.  :class:`InfluenceOracle` is the single
gateway through which all algorithms evaluate spreads:

* it counts real evaluations into a shared :class:`CallCounter`;
* it memoizes results in a delta-aware table, so repeated evaluation of the
  same set (e.g. the current sieve set ``S_theta`` while a batch of
  candidates streams past, or across batches that provably did not touch
  the set's reachable cone) costs one call, mirroring how any sensible
  implementation caches ``f(S)`` when computing marginal gains;
* it accepts a ``min_expiry`` horizon so each SIEVEADN instance evaluates on
  its own addition-only subgraph while sharing the one TDN.

Backends
--------
Two interchangeable reachability engines sit behind the same API:

* ``"csr"`` (default): the incrementally maintained delta-CSR engine of
  :mod:`repro.tdn.csr` — an immutable base snapshot plus O(1)-per-edge
  overlay/tombstone deltas (no per-version rebuild), with every traversal
  served by the shared array-level kernel (:mod:`repro.kernels`), the
  same per-pair max-expiry horizon test.
* ``"dict"``: the reference pure-Python BFS over the graph's dict-of-dict
  adjacency (:func:`repro.influence.reachability.reachable_set`).

Dirty-cone invalidation (``memo_mode``)
---------------------------------------
The memo table survives graph version bumps.  Under the default
``memo_mode="delta"`` the oracle reads, at each sync, the graph's
dirty-source journal — the interned ids whose forward cone the structural
changes since its last sync touched (arrival sources plus dead-pair
sources; see :meth:`repro.tdn.graph.TDNGraph.dirty_source_ids_since`) —
closes it under the engine's reverse-transpose sweep
(:meth:`repro.tdn.csr.DeltaCSR.touched_cone_ids`), and evicts exactly the
memo entries whose key-set intersects that closed dirty set.  The contract
behind retaining the rest:

* an arrival ``u -> v`` can only change ``f_t(S)`` if some node of ``S``
  reaches ``u`` in the *post-batch* graph, so post-batch ancestors of
  arrival sources cover every affected key;
* an expiry can only change ``f_t(S)`` if ``S`` reached the dead pair's
  source when the entry was cached; the first dead pair along any such
  path has its source journaled and the path prefix ahead of it is still
  alive, so post-expiry ancestors of dead-pair sources cover every
  affected key (non-final parallel-edge removals never change a pair's
  maximum alive expiry — expiries drain in increasing order — and are not
  journaled);
* clock advances that expire nothing change no live-horizon value (every
  surviving pair's max expiry still clears the new ``t + 1`` floor), and
  bump no version.

Eviction preserves the table's FIFO insertion order, so cache-pressure
eviction (oldest first) behaves identically in both modes, and a retained
entry is always equal to a from-scratch evaluation (property-tested).
``memo_mode="version"`` keeps the historical wholesale-clear-per-version
behavior for equivalence testing and benchmarking.  Both memo modes
produce identical spread values and solutions; ``"delta"`` simply spends
fewer oracle calls when consecutive batches leave most cones untouched.

Bit-plane batching
------------------
On the CSR backend, :meth:`InfluenceOracle.spread_many` does not issue one
traversal per set.  It first replays the *sequential* cache protocol —
walking the batch in order, taking hits, counting one oracle call per miss,
and reserving each miss's FIFO cache slot — and then evaluates all distinct
misses through :meth:`DeltaCSR.spread_counts`, which packs up to 64 seed
sets into uint64 visited-mask planes and propagates them to fixpoint in a
single shared multi-source sweep.  The *accounting* is therefore exactly
what ``[self.spread(s) for s in sets]`` would produce — same values, same
call counts, same cache evictions in the same order — while the *physics*
costs one multi-BFS per 64 sets.

Both backends return identical values and spend identical oracle calls —
the cross-backend equivalence suite pins this on seeded streams — so the
accounting shown in the paper's figures is backend independent.  The
dirty-cone closure runs on the owning backend's own sweep (transpose CSR
for ``"csr"``, the reference dict ancestor walk for ``"dict"`` — a dict
oracle never forces a CSR engine build just to evict); both sweeps
produce the identical closure, so memo semantics are backend independent
too.

Sharded parallel evaluation (``parallel``)
------------------------------------------
``parallel`` plugs a :class:`~repro.parallel.executor.
ShardedOracleExecutor` under the CSR backend: batched miss evaluations
and the dirty-cone ancestor sweep are partitioned across a persistent
worker pool that maps the published shared-memory CSR plane, while every
bit of accounting (cache protocol, call counting, FIFO order) stays in
this layer — so the sharded oracle is bit-for-bit equivalent to the
serial one, merely faster on multi-core hosts.  Pass a worker count (an
executor is created and owned by this oracle; close it via
:meth:`InfluenceOracle.close`) or share one executor instance across
oracles.  The executor degrades to serial on its own (single worker,
shared memory unavailable, small batches, worker death), so ``parallel``
never changes results, only wall-clock.
"""

from __future__ import annotations

from typing import (
    FrozenSet,
    Hashable,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.errors import ConfigError, SemanticsError
from repro.influence.reachability import ancestors, reachable_set
from repro.kernels import Fold, resolve_fold
from repro.obs import names as metric_names
from repro.obs.registry import metrics_registry
from repro.tdn.graph import TDNGraph
from repro.utils.counters import CallCounter
from repro.utils.deprecation import warn_once

Node = Hashable

# Instruments bound once at import (the registry pre-registers the whole
# catalog, so these lookups cannot miss).  The oracle records into the
# process registry; worker processes run their own oracle instances over
# their own registries and ship counter deltas owner-side.
_MEMO_HITS = metrics_registry().counter(metric_names.ORACLE_MEMO_HITS_TOTAL)
_MEMO_MISSES = metrics_registry().counter(metric_names.ORACLE_MEMO_MISSES_TOTAL)
_MEMO_EVICTIONS = metrics_registry().counter(
    metric_names.ORACLE_MEMO_EVICTIONS_TOTAL
)
_CONE_SIZE = metrics_registry().histogram(metric_names.ORACLE_CONE_SIZE_NODES)

#: Count-semantics cache key.  Non-count semantics append the fold's
#: hashable token as a third element, so two semantics over one graph can
#: never collide on a memo slot; the key-set nodes stay at index 1, which
#: is the only position the table's inverted index relies on.
_CacheKey = Tuple[Optional[float], FrozenSet[Node]]

#: Selectable reachability engines.
ORACLE_BACKENDS = ("csr", "dict")

#: Selectable memo invalidation policies.
MEMO_MODES = ("delta", "version")

#: In-batch placeholder for a cache slot whose value is still being
#: evaluated by the shared bit-plane sweep.  Reserving the slot up front
#: keeps FIFO insertion (and eviction) order identical to a sequential
#: evaluation of the batch.
_PENDING = object()


def replay_batch_protocol(
    memo, counter, sets, min_expiry, evaluate, zero, semantics=None
):
    """The sequential-replay cache protocol behind batched ``spread_many``.

    Shared by :class:`InfluenceOracle` and :class:`~repro.influence.
    weighted.WeightedInfluenceOracle` so the two can never drift: walk
    the batch in submission order taking hits, count one oracle call per
    miss, reserve each miss's FIFO cache slot with ``_PENDING`` (so
    in-batch duplicates replay as the cache hits they would sequentially
    be), then evaluate the distinct misses together through ``evaluate``
    and fulfill the reservations.  Values, call counts and eviction order
    are exactly those of ``[spread(s) for s in sets]``.

    Every set is frozen *before* the first cache mutation: a bad input
    (unhashable member, exhausted iterator) must raise while the memo
    still holds no ``_PENDING`` reservation to leak, and reservations are
    likewise rolled back when ``evaluate`` itself raises.

    ``semantics`` is an optional hashable token appended to every cache
    key (``None`` keeps the historical two-element key), so oracles
    evaluating different fold semantics over one shared graph keep fully
    disjoint memo populations.
    """
    frozen_sets = [frozenset(nodes) for nodes in sets]
    results: list = [None] * len(sets)
    miss_keys: list = []  # first-miss order, mirrors sequential
    miss_sets: list = []
    slot_of: dict = {}
    placements: list = []  # (result index, miss slot)
    # Hit/miss accounting is accumulated locally and flushed once after
    # the replay loop — the registry lock must not be taken per set.
    hits = 0
    misses = 0
    for i, key_nodes in enumerate(frozen_sets):
        if not key_nodes:
            results[i] = zero
            continue
        key = (
            (min_expiry, key_nodes)
            if semantics is None
            else (min_expiry, key_nodes, semantics)
        )
        hit = memo.get(key)
        if hit is _PENDING:
            # Duplicate of an in-batch miss: a sequential run would hit
            # the (by then populated) cache entry — no call counted.
            placements.append((i, slot_of[key]))
            hits += 1
            continue
        if hit is not None:
            results[i] = hit
            hits += 1
            continue
        counter.increment()
        misses += 1
        slot = slot_of.get(key)
        if slot is None:
            slot = len(miss_keys)
            slot_of[key] = slot
            miss_keys.append(key)
            miss_sets.append(key_nodes)
        # Reserve the FIFO slot exactly where a sequential evaluation
        # would have inserted the computed value (a re-counted miss —
        # its reservation evicted mid-batch — re-inserts, as it would
        # sequentially).
        memo.put(key, _PENDING)
        placements.append((i, slot))
    if hits:
        _MEMO_HITS.inc(hits)
    if misses:
        _MEMO_MISSES.inc(misses)
    if miss_sets:
        try:
            values = evaluate(miss_sets, min_expiry)
        except BaseException:
            for key in miss_keys:
                if memo.get(key) is _PENDING:
                    memo.delete(key)
            raise
        for key, value in zip(miss_keys, values):
            memo.fulfill(key, value)
        for i, slot in placements:
            results[i] = values[slot]
    return results


def resolve_executor(parallel, backend: str):
    """Normalize an oracle's ``parallel`` argument.

    Returns ``(executor, owns_executor)``: ``None`` for serial operation,
    a fresh owned :class:`~repro.parallel.executor.ShardedOracleExecutor`
    for an integer worker count above 1, or the caller's shared executor
    instance (not owned — the caller closes it).  Sharding requires the
    flat-array plane, so the ``"dict"`` backend rejects it outright
    rather than silently ignoring the request.
    """
    if parallel is None:
        return None, False
    if isinstance(parallel, bool):
        raise TypeError("parallel must be None, an int worker count, or an executor")
    if backend != "csr":
        raise ConfigError(
            f"parallel evaluation requires backend='csr', got {backend!r}"
        )
    if isinstance(parallel, int):
        if parallel <= 1:
            return None, False
        # Deliberate injection seam: the oracle layer constructs its own
        # sharded executor only when asked for one by worker count; the
        # import stays lazy so serial use never touches repro.parallel.
        # repro-lint: disable-next=RPL102
        from repro.parallel.executor import ShardedOracleExecutor

        return ShardedOracleExecutor(parallel), True
    return parallel, False


class DirtyCone(NamedTuple):
    """One delta sync's dirty set: journaled seeds and their closure.

    ``seed_ids`` are the raw dirty sources read off the graph journal;
    ``cone_ids`` is their closure under the reverse-transpose ancestor
    sweep — the ids whose forward cone the deltas touched.  SIEVEADN
    reuses the closure as its changed-node set when the seeds coincide
    with the batch it is processing, so eviction and candidate derivation
    share one sweep per batch.
    """

    seed_ids: FrozenSet[int]
    cone_ids: Set[int]


class MemoTable:
    """FIFO-bounded memo table with delta-aware dirty-cone invalidation.

    One instance backs each oracle (shared by :class:`InfluenceOracle` and
    :class:`~repro.influence.weighted.WeightedInfluenceOracle`, so the two
    cache policies can never drift apart).  The table tracks, per key, the
    nodes the key mentions (an inverted index), which makes evicting every
    entry that intersects a dirty-node set proportional to the entries
    actually evicted rather than to the table size.

    Dicts preserve insertion order, so the first key is always the oldest
    memo; evicting it under capacity pressure keeps recent spreads hot
    instead of disabling memoization outright, and dirty-cone eviction
    (plain deletes) never reorders the survivors.  ``max_entries=0``
    disables the table entirely.
    """

    __slots__ = (
        "graph",
        "data",
        "max_entries",
        "memo_mode",
        "cone_backend",
        "executor",
        "_index",
        "_version",
        "_cursor",
    )

    def __init__(
        self,
        graph: TDNGraph,
        max_entries: int,
        memo_mode: str,
        cone_backend: str = "csr",
    ) -> None:
        if memo_mode not in MEMO_MODES:
            raise ConfigError(
                f"memo_mode must be one of {MEMO_MODES}, got {memo_mode!r}"
            )
        if max_entries < 0:
            raise ConfigError(f"max_entries must be >= 0, got {max_entries}")
        if cone_backend not in ORACLE_BACKENDS:
            raise ConfigError(
                f"cone_backend must be one of {ORACLE_BACKENDS}, got {cone_backend!r}"
            )
        self.graph = graph
        self.data: dict = {}
        self.max_entries = max_entries
        self.memo_mode = memo_mode
        self.cone_backend = cone_backend
        self.executor = None  # optional ShardedOracleExecutor (csr cones)
        self._index: dict = {}  # node -> set of live keys mentioning it
        self._version = graph.version
        self._cursor = graph.dirty_cursor

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Entry maintenance
    # ------------------------------------------------------------------
    def get(self, key: _CacheKey):
        """The cached value (``None`` when absent; may be ``_PENDING``)."""
        return self.data.get(key)

    def put(self, key: _CacheKey, value) -> None:
        """Insert under FIFO capacity; overwriting never reorders."""
        if self.max_entries <= 0:
            return
        data = self.data
        if key in data:
            data[key] = value
            return
        if len(data) >= self.max_entries:
            self.delete(next(iter(data)))
        data[key] = value
        index = self._index
        for node in key[1]:
            index.setdefault(node, set()).add(key)

    def fulfill(self, key: _CacheKey, value) -> None:
        """Replace a reserved ``_PENDING`` placeholder with its value.

        No-op when the reservation was already evicted mid-batch under
        capacity pressure (a sequential run would have lost that slot the
        same way).  The slot was indexed at reservation time, so this
        write never touches FIFO order or the inverted index.
        """
        if self.data.get(key) is _PENDING:
            self.data[key] = value

    def delete(self, key: _CacheKey) -> None:
        """Drop one entry (no-op when absent), keeping the index exact."""
        if key not in self.data:
            return
        del self.data[key]
        index = self._index
        for node in key[1]:
            keys = index.get(node)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del index[node]

    def clear(self) -> None:
        self.data.clear()
        self._index.clear()

    def evict_nodes(self, dirty_nodes: Set[Node]) -> int:
        """Evict every entry whose key-set intersects ``dirty_nodes``."""
        index = self._index
        if not index or not dirty_nodes:
            return 0
        victims: Set[_CacheKey] = set()
        for node in index.keys() & dirty_nodes:
            victims.update(index[node])
        for key in victims:
            self.delete(key)
        if victims:
            _MEMO_EVICTIONS.inc(len(victims))
        return len(victims)

    # ------------------------------------------------------------------
    # Version sync
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop everything and fast-forward to the graph's current state."""
        self.clear()
        self._version = self.graph.version
        self._cursor = self.graph.dirty_cursor

    def sync(self, want_cone: bool = False) -> Optional[DirtyCone]:
        """Bring the table up to date with the graph.

        Under ``memo_mode="delta"`` this reads the dirty-source journal
        suffix since the last sync, closes it under the owning backend's
        reverse ancestor sweep, and evicts only the intersecting entries;
        the computed :class:`DirtyCone` is returned when ``want_cone`` is
        set (or when entries were at stake), so one sweep can serve both
        eviction and SIEVEADN's changed-node derivation.  Returns ``None``
        when nothing was stale, when the journal had been trimmed past the
        cursor (wholesale clear), or under ``memo_mode="version"`` (the
        historical clear-per-version policy).
        """
        graph = self.graph
        if graph.version == self._version:
            return None
        record = None
        if self.memo_mode == "delta" and (self.data or want_cone):
            seeds = graph.dirty_source_ids_since(self._cursor)
            if seeds is None:
                self.clear()
            else:
                cone_ids = self._closed_cone(seeds) if seeds else set()
                _CONE_SIZE.observe(len(cone_ids))
                if self.data and cone_ids:
                    node_of_id = graph.node_of_id
                    self.evict_nodes({node_of_id(i) for i in cone_ids})
                record = DirtyCone(frozenset(seeds), cone_ids)
        else:
            self.clear()
        self._version = graph.version
        self._cursor = graph.dirty_cursor
        return record

    def _closed_cone(self, seed_ids: Set[int]) -> Set[int]:
        """Ancestor closure of the dirty seeds, on the owning backend.

        A ``"csr"`` oracle rides the engine's transpose sweep; a
        ``"dict"`` oracle keeps its pure-dict profile by closing through
        the reference :func:`~repro.influence.reachability.ancestors`
        walk instead of forcing a CSR engine build just for eviction.
        Both sweeps produce the identical set (pinned by the equivalence
        suites), so memo semantics — and with them call counts — stay
        backend independent either way.
        """
        graph = self.graph
        if self.cone_backend == "dict":
            node_of_id = graph.node_of_id
            # sorted(): seed_ids arrives as a set; id order fixes the walk.
            seed_nodes = [node_of_id(i) for i in sorted(seed_ids)]
            node_id = graph.node_id
            return {node_id(n) for n in ancestors(graph, seed_nodes, None)}
        if self.executor is not None:
            # Shard-merged reverse sweep; identical closure (reachability
            # distributes over seed union), serial fallback inside.
            return self.executor.touched_cone_ids(graph, seed_ids)
        return graph.csr().touched_cone_ids(seed_ids)


class InfluenceOracle:
    """Evaluates the paper's influence spread with counting and caching.

    Args:
        graph: the shared TDN the spread is computed on.
        counter: the call counter to increment on every *real* evaluation
            (cache hits are free — they would be cached in any realistic
            implementation and the paper's counts assume as much for the
            lazy-greedy baseline).
        max_cache_entries: bound on the memo table.  When the table is
            full the *oldest* entry is evicted to admit the new one
            (FIFO), so memoization keeps working through long query-heavy
            phases instead of silently shutting off.
        backend: ``"csr"`` (compact flat-array engine, default) or
            ``"dict"`` (reference dict-of-dict BFS).
        memo_mode: ``"delta"`` (default) retains memo entries across graph
            versions, evicting only those whose reachable cone the changes
            touched (see the module docstring for the invalidation
            contract); ``"version"`` restores the historical wholesale
            clear on every ``graph.version`` bump.
        parallel: sharded evaluation over the CSR backend — ``None``
            (serial, default), a worker count (the oracle creates and
            owns a :class:`~repro.parallel.executor.ShardedOracleExecutor`;
            release it with :meth:`close`), or an executor instance to
            share across oracles.  Values, solutions and call counts are
            bit-identical to serial evaluation.
        semantics: the influence fold this oracle evaluates — a name
            from :data:`repro.kernels.FOLD_NAMES`, a ``(name, params)``
            spec, or a :class:`~repro.kernels.Fold` instance.  The
            default ``"count"`` keeps the paper's ``|R(S)|`` on its
            historical byte-identical code path; ``"hop_discount"`` and
            ``"time_decay"`` evaluate through the fold seam (CSR backend
            only) with memo keys carrying the fold token, so two
            semantics sharing one graph never share cache entries.
            ``"weighted_sum"`` is rejected here — its per-node weights
            live on :class:`~repro.influence.weighted.
            WeightedInfluenceOracle`.
    """

    def __init__(
        self,
        graph: TDNGraph,
        counter: Optional[CallCounter] = None,
        *deprecated_positional,
        max_cache_entries: int = 200_000,
        backend: str = "csr",
        memo_mode: str = "delta",
        parallel=None,
        semantics="count",
    ) -> None:
        if deprecated_positional:
            # Historical spelling: config passed positionally after the
            # counter.  Kept working for one release; the keyword form is
            # the supported API.
            warn_once(
                "oracle-positional-config",
                "passing max_cache_entries/backend/memo_mode to "
                "InfluenceOracle positionally is deprecated; pass them as "
                "keywords (or use repro.api.open_tracker)",
            )
            names = ("max_cache_entries", "backend", "memo_mode")
            if len(deprecated_positional) > len(names):
                raise ConfigError(
                    "InfluenceOracle takes at most graph, counter, "
                    f"{', '.join(names)} positionally; "
                    f"got {len(deprecated_positional) + 2} arguments"
                )
            values = dict(zip(names, deprecated_positional))
            max_cache_entries = values.get("max_cache_entries", max_cache_entries)
            backend = values.get("backend", backend)
            memo_mode = values.get("memo_mode", memo_mode)
        if backend not in ORACLE_BACKENDS:
            raise ConfigError(
                f"backend must be one of {ORACLE_BACKENDS}, got {backend!r}"
            )
        if max_cache_entries < 0:
            raise ConfigError(f"max_cache_entries must be >= 0, got {max_cache_entries}")
        fold = resolve_fold(semantics)
        if fold.name == "weighted_sum":
            raise SemanticsError(
                "semantics 'weighted_sum' carries per-node weights; "
                "construct a WeightedInfluenceOracle (or use "
                "repro.api.open_tracker with Semantics.WEIGHTED_SUM) instead"
            )
        if fold.name != "count" and backend != "csr":
            raise SemanticsError(
                f"semantics {fold.name!r} requires backend='csr', got {backend!r}"
            )
        self.graph = graph
        self.backend = backend
        self.fold = fold
        #: None on the count path (the pre-fold two-element memo keys and
        #: int values), the fold's hashable token otherwise.
        self._semantics_token = None if fold.name == "count" else fold.token()
        self.counter = counter if counter is not None else CallCounter("oracle")
        self._executor, self._owns_executor = resolve_executor(parallel, backend)
        self._memo = MemoTable(
            graph, max_cache_entries, memo_mode, cone_backend=backend
        )
        self._memo.executor = self._executor

    @property
    def semantics(self) -> str:
        """The registered name of this oracle's fold."""
        return self.fold.name

    @property
    def memo_mode(self) -> str:
        """The active memo invalidation policy (``"delta"`` | ``"version"``)."""
        return self._memo.memo_mode

    @property
    def max_cache_entries(self) -> int:
        """The memo table's FIFO capacity bound."""
        return self._memo.max_entries

    @property
    def executor(self):
        """The sharded executor behind this oracle (``None`` = serial)."""
        return self._executor

    @property
    def workers(self) -> int:
        """Configured evaluation worker count (1 = serial)."""
        return self._executor.workers if self._executor is not None else 1

    def close(self) -> None:
        """Release the worker pool if this oracle owns one (idempotent)."""
        if self._owns_executor and self._executor is not None:
            self._executor.close()

    def health_report(self) -> Optional[dict]:
        """The sharded executor's degradation/health snapshot.

        ``None`` for a serial oracle; otherwise the executor's
        :meth:`~repro.parallel.executor.ShardedOracleExecutor.
        health_report` (state, reason, restart budget, incidents, …).
        """
        if self._executor is None:
            return None
        return self._executor.health_report()

    # ------------------------------------------------------------------
    def spread(self, nodes: Iterable[Node], min_expiry: Optional[float] = None):
        """Return ``f_t(S)`` under this oracle's semantics.

        For the default ``"count"`` fold this is the distinct-node count
        ``|R(S)|`` (an int, exactly as before the fold seam existed);
        other semantics score the same reached set through their fold and
        return a float.  ``f_t(empty set) = 0`` (the function is
        normalized).  The horizon ``min_expiry`` restricts traversal to
        edges expiring at or after it.
        """
        key_nodes = frozenset(nodes)
        if not key_nodes:
            return 0 if self._semantics_token is None else 0.0
        self._memo.sync()
        return self._spread_cached(key_nodes, min_expiry)

    def sync_dirty(self) -> Optional[DirtyCone]:
        """Sync the memo table now; returns the dirty cone when one ran.

        SIEVEADN calls this at the top of each batch so that memo eviction
        and its own changed-node derivation share a single ancestor sweep:
        when the returned cone's seeds coincide with the batch's sources,
        the closure *is* the changed-node set.  Returns ``None`` when the
        table was already in sync, was cleared wholesale, or runs under
        ``memo_mode="version"``.
        """
        return self._memo.sync(want_cone=True)

    def spread_many(
        self,
        sets: Sequence[Iterable[Node]],
        min_expiry: Optional[float] = None,
    ) -> List[Union[int, float]]:
        """Evaluate ``f_t`` for a whole batch of sets at one horizon.

        Semantically identical to ``[self.spread(s, min_expiry) for s in
        sets]`` — same values, same cache behavior, same call counting in
        the same order (under either memo mode; the table is synced once
        before the batch replays the sequential protocol).  On the CSR
        backend the cache protocol is replayed sequentially (hits,
        per-miss counting, FIFO slot reservation) but the distinct misses
        are then evaluated together through the engine's bit-plane
        multi-source sweep — one shared traversal per 64 sets instead of
        one BFS per set — which is what makes feeding a SIEVEADN candidate
        sweep through the oracle cheap.
        """
        self._memo.sync()
        if self.backend == "dict":
            reference: List[int] = []
            for nodes in sets:
                key_nodes = frozenset(nodes)
                reference.append(
                    self._spread_cached(key_nodes, min_expiry) if key_nodes else 0
                )
            return reference
        return replay_batch_protocol(
            self._memo,
            self.counter,
            sets,
            min_expiry,
            self._evaluate_batch,
            0 if self._semantics_token is None else 0.0,
            semantics=self._semantics_token,
        )

    def marginal_gain(
        self,
        base: Iterable[Node],
        candidate: Node,
        min_expiry: Optional[float] = None,
    ) -> int:
        """Return ``f_t(base + {candidate}) - f_t(base)``.

        The base spread is typically a cache hit (it is re-used across the
        whole candidate batch), so a marginal gain usually costs one oracle
        call, exactly as in the paper's accounting.
        """
        base_set = frozenset(base)
        with_candidate = base_set | {candidate}
        if len(with_candidate) == len(base_set):
            return 0
        return self.spread(with_candidate, min_expiry) - self.spread(
            base_set, min_expiry
        )

    # ------------------------------------------------------------------
    def _spread_cached(self, key_nodes: FrozenSet[Node], min_expiry: Optional[float]):
        token = self._semantics_token
        key = (
            (min_expiry, key_nodes)
            if token is None
            else (min_expiry, key_nodes, token)
        )
        hit = self._memo.get(key)
        if hit is not None and hit is not _PENDING:
            _MEMO_HITS.inc()
            return hit
        self.counter.increment()
        _MEMO_MISSES.inc()
        value = self._evaluate(key_nodes, min_expiry)
        self._memo.put(key, value)
        return value

    def _evaluate(self, key_nodes: FrozenSet[Node], min_expiry: Optional[float]):
        if self.backend == "dict":
            return len(reachable_set(self.graph, key_nodes, min_expiry))
        ids, unknown = self.graph.intern_ids(key_nodes)
        if self._semantics_token is None:
            if not ids:
                return unknown
            return self.graph.csr().reachable_count(ids, min_expiry) + unknown
        # Unknown (never-interned) seeds reach exactly themselves with no
        # alive in-edge: every shipped fold scores such a node 1.0, added
        # after the engine fold exactly as the count path adds them.
        if not ids:
            return float(unknown)
        sums = self.graph.csr().fold_spread_sums([ids], min_expiry, self.fold)
        return sums[0] + unknown

    def _evaluate_batch(
        self, key_sets: Sequence[FrozenSet[Node]], min_expiry: Optional[float]
    ) -> List:
        """Evaluate distinct cache misses via the shared bit-plane sweep."""
        graph = self.graph
        fold_token = self._semantics_token
        values: List = [0] * len(key_sets)
        id_sets: List[List[int]] = []
        unknowns: List[int] = []
        pending: List[int] = []
        for j, key_nodes in enumerate(key_sets):
            ids, unknown = graph.intern_ids(key_nodes)
            if ids:
                pending.append(j)
                id_sets.append(ids)
                unknowns.append(unknown)
            else:
                values[j] = unknown if fold_token is None else float(unknown)
        if id_sets:
            if fold_token is None:
                if self._executor is not None:
                    counts = self._executor.spread_counts(graph, id_sets, min_expiry)
                else:
                    counts = graph.csr().spread_counts(id_sets, min_expiry)
            elif self._executor is not None:
                counts = self._executor.fold_spread_sums(
                    graph, id_sets, min_expiry, fold=self.fold
                )
            else:
                counts = graph.csr().fold_spread_sums(id_sets, min_expiry, self.fold)
            for j, count, unknown in zip(pending, counts, unknowns):
                values[j] = count + unknown
        return values

    # ------------------------------------------------------------------
    @property
    def calls(self) -> int:
        """Total real evaluations so far."""
        return self.counter.total

    def invalidate(self) -> None:
        """Drop the memo table (tests use this to force recomputation)."""
        self._memo.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InfluenceOracle(backend={self.backend!r}, "
            f"semantics={self.semantics!r}, "
            f"memo_mode={self.memo_mode!r}, "
            f"calls={self.counter.total}, cached={len(self._memo)})"
        )
