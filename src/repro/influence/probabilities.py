"""Interaction counts -> IC diffusion probabilities (paper Section V-C).

The IC-model baselines the paper compares against (IMM, TIM+, DIM) require a
static weighted influence graph.  The paper derives edge probabilities from
the observed interactions: if node ``u`` imposed ``x`` interactions on node
``v``, edge ``(u, v)`` gets diffusion probability

    p_uv = 2 / (1 + exp(-0.2 x)) - 1

which is 0 at ``x = 0`` and saturates toward 1 as the interaction count
grows.  :class:`WeightedGraphSnapshot` freezes the alive TDN into that
weighted digraph, which the RR-set machinery then samples.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterator, List, Tuple

from repro.tdn.graph import TDNGraph

Node = Hashable


def interactions_to_probability(count: int, *, scale: float = 0.2) -> float:
    """Map an interaction count ``x`` to the paper's diffusion probability.

    ``p = 2 / (1 + exp(-scale * x)) - 1``; monotone in ``x``, 0 at 0, and
    bounded below 1.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if count == 0:
        return 0.0
    return 2.0 / (1.0 + math.exp(-scale * count)) - 1.0


class WeightedGraphSnapshot:
    """A frozen weighted digraph built from the alive edges of a TDN.

    Nodes are indexed densely ``0..n-1`` so the RR-set samplers can use flat
    lists; the original node labels are retained for translating seed sets
    back.  Edges store the IC probability derived from the alive interaction
    multiplicity at snapshot time.
    """

    def __init__(self, graph: TDNGraph, *, scale: float = 0.2) -> None:
        labels = sorted(graph.node_set(), key=repr)
        self.labels: List[Node] = labels
        self.index: Dict[Node, int] = {node: i for i, node in enumerate(labels)}
        n = len(labels)
        # In-adjacency as parallel lists per node: (in_neighbor_index, prob).
        # RR-set sampling walks *incoming* edges, so in-adjacency is primary.
        self.in_adj: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        self.out_adj: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        self.num_edges = 0
        for u, v, count in graph.alive_pairs_with_counts():
            p = interactions_to_probability(count, scale=scale)
            if p <= 0.0:
                continue
            ui, vi = self.index[u], self.index[v]
            self.in_adj[vi].append((ui, p))
            self.out_adj[ui].append((vi, p))
            self.num_edges += 1
        self.snapshot_version = graph.version
        self.snapshot_time = graph.time

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the snapshot."""
        return len(self.labels)

    def to_labels(self, indices) -> List[Node]:
        """Translate dense node indices back to original labels."""
        return [self.labels[i] for i in indices]

    def probability(self, u: Node, v: Node) -> float:
        """Return ``p_uv`` between two labeled nodes (0.0 if no edge)."""
        ui = self.index.get(u)
        vi = self.index.get(v)
        if ui is None or vi is None:
            return 0.0
        for w, p in self.out_adj[ui]:
            if w == vi:
                return p
        return 0.0

    def edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate labeled weighted edges ``(u, v, p)``."""
        for ui, nbrs in enumerate(self.out_adj):
            for vi, p in nbrs:
                yield (self.labels[ui], self.labels[vi], p)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WeightedGraphSnapshot(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"time={self.snapshot_time})"
        )
