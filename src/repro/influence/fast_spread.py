"""Batch spread computation via SCC condensation.

The lazy-greedy baseline's dominant cost is its first round: one reachability
BFS per alive node.  All of those can be answered in a single pass:

1. find strongly connected components (iterative Tarjan — recursion-free,
   streams of thousands of nodes are common);
2. in reverse topological order of the condensation DAG, propagate
   *reachable node sets* upward as Python-int bitsets (union = bitwise OR,
   effectively word-parallel);
3. each node's spread is the popcount of its component's bitset.

The result is exactly ``f_t({v})`` for every alive ``v`` (verified against
the BFS oracle in ``tests/influence/test_fast_spread.py``).  This module is
an *optional* engine: the algorithms keep using the counted per-set oracle
so that oracle-call accounting stays comparable with the paper; callers
that only need a one-shot popularity sweep (for example the
``examples/lbsn_popular_places.py`` style reporting, or offline analysis)
can use this directly.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.tdn.graph import TDNGraph

Node = Hashable


def strongly_connected_components(
    graph: TDNGraph, min_expiry: Optional[float] = None
) -> List[List[Node]]:
    """Iterative Tarjan SCC over the (horizon-filtered) alive graph.

    Returns components in reverse topological order of the condensation —
    every edge of the condensation points from a later component in the
    list to an earlier one — which is exactly the order the reachability
    propagation wants.
    """
    nodes = sorted(graph.node_set(), key=repr)
    index_of: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Dict[Node, bool] = {}
    stack: List[Node] = []
    components: List[List[Node]] = []
    counter = [0]

    for root in nodes:
        if root in index_of:
            continue
        # Each frame: (node, iterator over its successors).
        work = [(root, iter(sorted(graph.out_neighbors(root, min_expiry), key=repr)))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, successors = work[-1]
            advanced = False
            for nxt in successors:
                if nxt not in index_of:
                    index_of[nxt] = lowlink[nxt] = counter[0]
                    counter[0] += 1
                    stack.append(nxt)
                    on_stack[nxt] = True
                    successors = sorted(graph.out_neighbors(nxt, min_expiry), key=repr)
                    work.append((nxt, iter(successors)))
                    advanced = True
                    break
                if on_stack.get(nxt):
                    lowlink[node] = min(lowlink[node], index_of[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def all_singleton_spreads(
    graph: TDNGraph, min_expiry: Optional[float] = None
) -> Dict[Node, int]:
    """``f_t({v})`` for every alive node ``v``, in one condensation pass.

    Nodes in the same SCC share one reachable set; sets are propagated
    along condensation edges as integer bitsets.  Complexity is
    ``O(V + E)`` graph work plus ``O(#condensation-edges * V / wordsize)``
    bitset unions — in practice far below one BFS per node.
    """
    components = strongly_connected_components(graph, min_expiry)
    component_of: Dict[Node, int] = {}
    for component_id, members in enumerate(components):
        for member in members:
            component_of[member] = component_id
    node_bit: Dict[Node, int] = {}
    for position, node in enumerate(component_of):
        node_bit[node] = 1 << position
    # Reverse topological order == the order Tarjan emitted components:
    # successors of a component always appear earlier in the list.
    reach_bits: List[int] = [0] * len(components)
    for component_id, members in enumerate(components):
        bits = 0
        for member in members:
            bits |= node_bit[member]
            for nxt in graph.out_neighbors(member, min_expiry):
                nxt_component = component_of[nxt]
                if nxt_component != component_id:
                    bits |= reach_bits[nxt_component]
        reach_bits[component_id] = bits
    spreads: Dict[Node, int] = {}
    for component_id, members in enumerate(components):
        size = reach_bits[component_id].bit_count()
        for member in members:
            spreads[member] = size
    return spreads


def top_spreaders(
    graph: TDNGraph,
    count: int,
    min_expiry: Optional[float] = None,
) -> List[Node]:
    """The ``count`` nodes with the largest singleton spreads.

    A one-shot popularity ranking (NOT a solution to the paper's set
    problem — it ignores overlap between reach sets; use the trackers for
    that), useful for analysis and as a cheap warm start.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    spreads = all_singleton_spreads(graph, min_expiry)
    ranked = sorted(spreads, key=lambda n: (-spreads[n], repr(n)))
    return ranked[:count]
