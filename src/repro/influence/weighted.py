"""Weighted influence spread: the paper's "define your own f_t" hook.

Right after Definition 3 the paper notes that *any* influence spread works
with the framework "as long as Theorem 1 holds" (normalized, monotone,
submodular).  The canonical generalization is node-weighted reachability:

    f_t(S) = sum of w(v) over v reachable from S in G_t

with non-negative node weights ``w``.  It is normalized (empty sum),
monotone (reachable sets grow with S), and submodular (a weighted coverage
function), so every guarantee in the paper carries over verbatim.

Practical uses: weighting users by follower count or monetary value
(viral-marketing ROI), weighting places by capacity, or zero-weighting
bot accounts.  :class:`WeightedInfluenceOracle` is a drop-in replacement
for :class:`~repro.influence.oracle.InfluenceOracle` — construct any
tracker with it and the algorithms never know the difference.
"""

from __future__ import annotations

import secrets
import weakref
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.influence.oracle import (
    _PENDING,
    ORACLE_BACKENDS,
    MemoTable,
    replay_batch_protocol,
    resolve_executor,
)
from repro.errors import ConfigError
from repro.kernels import dense_weight_sum
from repro.influence.reachability import reachable_set
from repro.tdn.graph import TDNGraph
from repro.utils.counters import CallCounter

Node = Hashable
WeightSpec = Union[Dict[Node, float], Callable[[Node], float]]
_CacheKey = Tuple[Optional[float], FrozenSet[Node]]


def _release_published_weights(executor_ref, weights_key: str) -> None:
    """GC/close hook: drop one oracle's weight segment from its executor."""
    executor = executor_ref()
    if executor is not None:
        try:
            executor.release_weights(weights_key)
        except Exception:  # pragma: no cover - teardown is best effort
            pass


class WeightedInfluenceOracle:
    """Counted, cached evaluation of node-weighted reachability spread.

    Args:
        graph: the shared TDN.
        weights: either a mapping node -> weight or a callable; missing
            nodes default to ``default_weight``.  Weights must be
            non-negative — a negative weight breaks monotonicity and with
            it every approximation guarantee.
        default_weight: weight for nodes absent from the mapping (1.0
            recovers the paper's unweighted spread exactly).
        counter: shared call counter (fresh one by default).
        backend: ``"csr"`` (default) computes the reachable id set on the
            graph's delta-CSR engine; with mapping/default weights it sums
            a dense per-id node-weight array over it — one vectorized
            gather instead of a per-node Python weight lookup — while a
            weight *callable* is still invoked once per reached node (it
            may be partial or stateful, so it is never pre-evaluated for
            unreached nodes).  ``"dict"`` is the reference dict BFS.  Both
            return identical values and spend identical calls.
        memo_mode: ``"delta"`` (default) retains memo entries across graph
            versions, evicting only keys whose reachable cone the changes
            touched (weighted values obey the same contract: a cone no
            delta touched reaches the same nodes, hence sums the same
            weights); ``"version"`` restores the wholesale per-version
            clear.  See :mod:`repro.influence.oracle` for the contract.
        parallel: sharded evaluation over the CSR backend (``None``, a
            worker count, or a shared executor — the same contract as
            :class:`InfluenceOracle`).  With mapping/default weights the
            dense weight array is published into shared memory alongside
            the CSR plane and workers return 64-wide *weight sums* folded
            in their bit-plane sweeps; a weight callable instead makes
            workers return per-set reachable id sets so the callable
            never crosses a process boundary.  Either way values stay
            bit-identical to serial evaluation (the kernel's canonical
            ascending-id summation order).

    The interface matches :class:`InfluenceOracle` (``spread``,
    ``marginal_gain``, ``calls``), so it can be injected into any
    algorithm::

        oracle = WeightedInfluenceOracle(graph, {"vip": 100.0})
        tracker = HistApprox(k, eps, graph, oracle)
    """

    def __init__(
        self,
        graph: TDNGraph,
        weights: Optional[WeightSpec] = None,
        *,
        default_weight: float = 1.0,
        counter: Optional[CallCounter] = None,
        max_cache_entries: int = 200_000,
        backend: str = "csr",
        memo_mode: str = "delta",
        parallel=None,
    ) -> None:
        if default_weight < 0:
            raise ConfigError(f"default_weight must be >= 0, got {default_weight}")
        if max_cache_entries < 0:
            raise ConfigError(f"max_cache_entries must be >= 0, got {max_cache_entries}")
        if backend not in ORACLE_BACKENDS:
            raise ConfigError(
                f"backend must be one of {ORACLE_BACKENDS}, got {backend!r}"
            )
        self.graph = graph
        self.backend = backend
        self.counter = (
            counter if counter is not None else CallCounter("weighted-oracle")
        )
        self._default = float(default_weight)
        # Dense per-interned-id weight cache, extended lazily as new nodes
        # appear (ids are append-only, so prefixes never go stale).  Only
        # used for mapping/default weights, which are total and pure; a
        # user *callable* is never pre-evaluated for nodes outside the
        # reachable set (it may raise for them, be partial, or vary), so
        # the csr path falls back to per-reached-node calls for it —
        # exactly the dict backend's evaluation pattern.
        self._weight_array = np.empty(0, dtype=np.float64)
        self._dense_weights = weights is None or not callable(weights)
        self._uniform_default = weights is None
        # Stable per-oracle token for the executor's shared-memory weight
        # publication (the dense array is append-only, so its length is
        # its epoch — the executor republishes only when it grew).
        self._weights_key = f"w{secrets.token_hex(4)}"
        if weights is None:
            self._weight_of: Callable[[Node], float] = lambda node: self._default
        elif callable(weights):
            self._weight_of = weights
        else:
            mapping = dict(weights)
            for node, weight in mapping.items():
                if weight < 0:
                    raise ConfigError(
                        f"weight for {node!r} is negative ({weight}); weighted "
                        "spread requires non-negative weights to stay monotone"
                    )
            self._weight_of = lambda node: mapping.get(node, self._default)
        self._executor, self._owns_executor = resolve_executor(parallel, backend)
        self._memo = MemoTable(
            graph, max_cache_entries, memo_mode, cone_backend=backend
        )
        self._memo.executor = self._executor
        self._weights_finalizer = None
        self._arm_weights_finalizer()

    def _arm_weights_finalizer(self) -> None:
        """(Re-)register the weight-segment release hook.

        Releases this oracle's published weight segment when the oracle
        is closed or collected, so a shared long-lived executor never
        accumulates one O(V) segment per short-lived oracle.  Re-armed
        before every parallel publication because ``weakref.finalize`` is
        one-shot: an oracle used again after :meth:`close` republishes,
        and that republication must stay collectable too.  The finalizer
        holds only a weak executor reference — it must neither keep the
        pool alive nor resurrect this oracle.
        """
        if self._executor is None:
            return
        finalizer = self._weights_finalizer
        if finalizer is not None and finalizer.alive:
            return
        self._weights_finalizer = weakref.finalize(
            self,
            _release_published_weights,
            weakref.ref(self._executor),
            self._weights_key,
        )

    # ------------------------------------------------------------------
    @property
    def memo_mode(self) -> str:
        """The active memo invalidation policy (``"delta"`` | ``"version"``)."""
        return self._memo.memo_mode

    @property
    def executor(self):
        """The sharded executor behind this oracle (``None`` = serial)."""
        return self._executor

    @property
    def workers(self) -> int:
        """Configured evaluation worker count (1 = serial)."""
        return self._executor.workers if self._executor is not None else 1

    def close(self) -> None:
        """Release the worker pool if this oracle owns one (idempotent),
        and this oracle's published weight segment either way."""
        if self._executor is not None:
            if self._weights_finalizer is not None:
                self._weights_finalizer()
            if self._owns_executor:
                self._executor.close()

    def health_report(self) -> Optional[dict]:
        """The sharded executor's degradation/health snapshot (None = serial)."""
        if self._executor is None:
            return None
        return self._executor.health_report()

    def sync_dirty(self):
        """Sync the memo table now; returns the dirty cone when one ran.

        Interface parity with :meth:`InfluenceOracle.sync_dirty`, so
        SIEVEADN shares one ancestor sweep per batch with a weighted
        oracle too.
        """
        return self._memo.sync(want_cone=True)

    def spread(
        self, nodes: Iterable[Node], min_expiry: Optional[float] = None
    ) -> float:
        """Total weight of nodes reachable from ``nodes``."""
        key_nodes = frozenset(nodes)
        if not key_nodes:
            return 0.0
        self._memo.sync()
        key: _CacheKey = (min_expiry, key_nodes)
        hit = self._memo.get(key)
        if hit is not None and hit is not _PENDING:
            return hit
        self.counter.increment()
        if self.backend == "dict":
            value = 0.0
            reached = reachable_set(self.graph, key_nodes, min_expiry)
            for node in sorted(reached, key=self._node_order_key):
                value += self._checked_weight(node)
        else:
            value = self._csr_spread(key_nodes, min_expiry)
        self._memo.put(key, value)
        return value

    def _checked_weight(self, node: Node) -> float:
        weight = self._weight_of(node)
        if weight < 0:
            raise ConfigError(f"weight callable returned negative value for {node!r}")
        return weight

    def _node_order_key(self, node: Node) -> Tuple[int, object]:
        """Total order for folding float weights over node sets.

        Interned nodes sort by id (ascending — the canonical summation
        order of :func:`repro.kernels.dense_weight_sum`), never-interned
        nodes after them by ``repr``.  Folding in this order keeps the
        dict backend bit-identical across PYTHONHASHSEED values.
        """
        interned = self.graph.node_id(node)
        if interned is None:
            return (1, repr(node))
        return (0, interned)

    def _split_seeds(self, key_nodes: FrozenSet[Node]) -> Tuple[List[int], float]:
        """Interned seed ids plus the weight of never-interned seeds.

        A never-interned seed has no edges and reaches only itself, so it
        contributes its own weight directly.  Iteration runs in canonical
        node order so the uninterned-weight fold is order-deterministic.
        """
        node_id = self.graph.node_id
        ids: List[int] = []
        value = 0.0
        for node in sorted(key_nodes, key=self._node_order_key):
            interned = node_id(node)
            if interned is None:
                value += self._checked_weight(node)
            else:
                ids.append(interned)
        return ids, value

    def _weight_of_reached(self, reached) -> float:
        """Total weight of a reached id set (dense gather when possible).

        Summation runs in the canonical ascending-id order of
        :func:`repro.kernels.dense_weight_sum`, so the value is
        bit-identical no matter where the reached set came from — a
        serial BFS, the weighted bit-plane kernel, or a sorted id list
        shipped back from a sharded worker.
        """
        if not reached:
            return 0.0
        if self._uniform_default:
            # No mapping at all: every node weighs default_weight.
            return self._default * len(reached)
        if not self._dense_weights:
            node_of_id = self.graph.node_of_id
            return sum(
                self._checked_weight(node_of_id(reached_id))
                for reached_id in sorted(reached)
            )
        weights = self._weights_upto(self.graph.num_interned)
        return dense_weight_sum(weights, reached)

    def _csr_spread(
        self, key_nodes: FrozenSet[Node], min_expiry: Optional[float]
    ) -> float:
        """Sum the dense weight array over the engine's reachable id set."""
        ids, value = self._split_seeds(key_nodes)
        if not ids:
            return value
        reached = self.graph.csr().reachable_ids(ids, min_expiry)
        return value + self._weight_of_reached(reached)

    def _weights_upto(self, count: int) -> np.ndarray:
        """The dense id-indexed weight array, extended to ``count`` entries."""
        have = self._weight_array.shape[0]
        if have < count:
            node_of_id = self.graph.node_of_id
            fresh = np.asarray(
                [self._checked_weight(node_of_id(i)) for i in range(have, count)],
                dtype=np.float64,
            )
            self._weight_array = np.concatenate([self._weight_array, fresh])
        return self._weight_array

    def spread_many(
        self,
        sets: Sequence[Iterable[Node]],
        min_expiry: Optional[float] = None,
    ) -> List[float]:
        """Evaluate the weighted spread for a whole batch of sets.

        Same sequential-replay protocol as :meth:`InfluenceOracle.
        spread_many` — identical values, cache behavior and call counts
        as a loop of :meth:`spread` — but distinct misses are evaluated
        together on the CSR backend through the *weighted bit-plane*
        kernel: dense weights fold into the shared multi-source sweep (64
        weighted evaluations per physical traversal, serial or sharded),
        while weight callables keep the per-set reachable-id path so they
        are only ever invoked in-process.
        """
        if self.backend == "dict":
            return [self.spread(nodes, min_expiry) for nodes in sets]
        self._memo.sync()
        return replay_batch_protocol(
            self._memo, self.counter, sets, min_expiry, self._evaluate_batch, 0.0
        )

    def _evaluate_batch(
        self, key_sets: Sequence[FrozenSet[Node]], min_expiry: Optional[float]
    ) -> List[float]:
        """Evaluate distinct misses via the weighted bit-plane kernel.

        Dense weights (mapping / default) never materialize a reachable
        id set per miss any more: the engine — or, under ``parallel``,
        the sharded worker pool over the published weight segment — folds
        the dense weight array directly into the shared bit-plane sweep,
        64 weighted evaluations per physical traversal.  Uniform weights
        ride the plain counted sweep (``count * default_weight``), and a
        weight *callable* keeps the per-set reachable-id path so it is
        only ever invoked in-process, for actually reached nodes.
        """
        values: List[float] = [0.0] * len(key_sets)
        id_sets: List[List[int]] = []
        pending: List[int] = []
        for j, key_nodes in enumerate(key_sets):
            ids, base_value = self._split_seeds(key_nodes)
            values[j] = base_value
            if ids:
                pending.append(j)
                id_sets.append(ids)
        if not id_sets:
            return values
        graph = self.graph
        executor = self._executor
        if not self._dense_weights:
            # Callable weights stay in-process: workers return id sets.
            if executor is not None:
                reached_sets = executor.reachable_ids_many(
                    graph, id_sets, min_expiry
                )
            else:
                engine = graph.csr()
                reached_sets = [
                    engine.reachable_ids(ids, min_expiry) for ids in id_sets
                ]
            for j, reached in zip(pending, reached_sets):
                values[j] += self._weight_of_reached(reached)
        elif self._uniform_default:
            # No mapping at all: the counted sweep carries the value.
            if executor is not None:
                counts = executor.spread_counts(graph, id_sets, min_expiry)
            else:
                counts = graph.csr().spread_counts(id_sets, min_expiry)
            for j, count in zip(pending, counts):
                values[j] += self._default * count
        else:
            weights = self._weights_upto(graph.num_interned)
            if executor is not None:
                self._arm_weights_finalizer()
                sums = executor.weighted_spread_sums(
                    graph,
                    id_sets,
                    min_expiry,
                    weights=weights,
                    weights_key=self._weights_key,
                )
            else:
                sums = graph.csr().weighted_spread_sums(
                    id_sets, min_expiry, weights
                )
            for j, value in zip(pending, sums):
                values[j] += value
        return values

    def marginal_gain(
        self,
        base: Iterable[Node],
        candidate: Node,
        min_expiry: Optional[float] = None,
    ) -> float:
        """``f(base + candidate) - f(base)`` under the weighted objective."""
        base_set = frozenset(base)
        with_candidate = base_set | {candidate}
        if len(with_candidate) == len(base_set):
            return 0.0
        return self.spread(with_candidate, min_expiry) - self.spread(
            base_set, min_expiry
        )

    @property
    def calls(self) -> int:
        """Total real evaluations so far."""
        return self.counter.total

    def invalidate(self) -> None:
        """Drop the memo table."""
        self._memo.reset()
