"""Weighted influence spread: the paper's "define your own f_t" hook.

Right after Definition 3 the paper notes that *any* influence spread works
with the framework "as long as Theorem 1 holds" (normalized, monotone,
submodular).  The canonical generalization is node-weighted reachability:

    f_t(S) = sum of w(v) over v reachable from S in G_t

with non-negative node weights ``w``.  It is normalized (empty sum),
monotone (reachable sets grow with S), and submodular (a weighted coverage
function), so every guarantee in the paper carries over verbatim.

Practical uses: weighting users by follower count or monetary value
(viral-marketing ROI), weighting places by capacity, or zero-weighting
bot accounts.  :class:`WeightedInfluenceOracle` is a drop-in replacement
for :class:`~repro.influence.oracle.InfluenceOracle` — construct any
tracker with it and the algorithms never know the difference.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.influence.oracle import fifo_cache_put
from repro.influence.reachability import reachable_set
from repro.tdn.graph import TDNGraph
from repro.utils.counters import CallCounter

Node = Hashable
WeightSpec = Union[Dict[Node, float], Callable[[Node], float]]


class WeightedInfluenceOracle:
    """Counted, cached evaluation of node-weighted reachability spread.

    Args:
        graph: the shared TDN.
        weights: either a mapping node -> weight or a callable; missing
            nodes default to ``default_weight``.  Weights must be
            non-negative — a negative weight breaks monotonicity and with
            it every approximation guarantee.
        default_weight: weight for nodes absent from the mapping (1.0
            recovers the paper's unweighted spread exactly).
        counter: shared call counter (fresh one by default).

    The interface matches :class:`InfluenceOracle` (``spread``,
    ``marginal_gain``, ``calls``), so it can be injected into any
    algorithm::

        oracle = WeightedInfluenceOracle(graph, {"vip": 100.0})
        tracker = HistApprox(k, eps, graph, oracle)
    """

    def __init__(
        self,
        graph: TDNGraph,
        weights: Optional[WeightSpec] = None,
        *,
        default_weight: float = 1.0,
        counter: Optional[CallCounter] = None,
        max_cache_entries: int = 200_000,
    ) -> None:
        if default_weight < 0:
            raise ValueError(f"default_weight must be >= 0, got {default_weight}")
        if max_cache_entries < 0:
            raise ValueError(
                f"max_cache_entries must be >= 0, got {max_cache_entries}"
            )
        self.graph = graph
        self.counter = counter if counter is not None else CallCounter("weighted-oracle")
        self._default = float(default_weight)
        if weights is None:
            self._weight_of: Callable[[Node], float] = lambda node: self._default
        elif callable(weights):
            self._weight_of = weights
        else:
            mapping = dict(weights)
            for node, weight in mapping.items():
                if weight < 0:
                    raise ValueError(
                        f"weight for {node!r} is negative ({weight}); weighted "
                        "spread requires non-negative weights to stay monotone"
                    )
            self._weight_of = lambda node: mapping.get(node, self._default)
        self._max_cache_entries = max_cache_entries
        self._cache: dict = {}
        self._cache_version = graph.version

    # ------------------------------------------------------------------
    def spread(self, nodes: Iterable[Node], min_expiry: Optional[float] = None) -> float:
        """Total weight of nodes reachable from ``nodes``."""
        key_nodes = frozenset(nodes)
        if not key_nodes:
            return 0.0
        if self.graph.version != self._cache_version:
            self._cache.clear()
            self._cache_version = self.graph.version
        key: Tuple[Optional[float], FrozenSet[Node]] = (min_expiry, key_nodes)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        self.counter.increment()
        reached = reachable_set(self.graph, key_nodes, min_expiry)
        value = 0.0
        for node in reached:
            weight = self._weight_of(node)
            if weight < 0:
                raise ValueError(
                    f"weight callable returned negative value for {node!r}"
                )
            value += weight
        fifo_cache_put(self._cache, key, value, self._max_cache_entries)
        return value

    def spread_many(
        self,
        sets: Sequence[Iterable[Node]],
        min_expiry: Optional[float] = None,
    ) -> List[float]:
        """Batched :meth:`spread` (interface parity with InfluenceOracle)."""
        return [self.spread(nodes, min_expiry) for nodes in sets]

    def marginal_gain(
        self,
        base: Iterable[Node],
        candidate: Node,
        min_expiry: Optional[float] = None,
    ) -> float:
        """``f(base + candidate) - f(base)`` under the weighted objective."""
        base_set = frozenset(base)
        with_candidate = base_set | {candidate}
        if len(with_candidate) == len(base_set):
            return 0.0
        return self.spread(with_candidate, min_expiry) - self.spread(base_set, min_expiry)

    @property
    def calls(self) -> int:
        """Total real evaluations so far."""
        return self.counter.total

    def invalidate(self) -> None:
        """Drop the memo table."""
        self._cache.clear()
        self._cache_version = self.graph.version
