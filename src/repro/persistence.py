"""Checkpointing: serialize and restore tracker state.

A production tracker runs for weeks; being able to snapshot it (graph +
algorithm state) and resume after a restart is table stakes.  This module
round-trips the TDN graph and each of the paper's algorithms through plain
JSON-able dictionaries:

* the graph serializes as ``(time, [source, target, expiry] rows)`` —
  expiry (not arrival time) is the only temporal attribute the TDN needs —
  plus the node interning table in id order: dense ids are part of the
  graph's identity (the CSR engine indexes by them and the changed-node
  sweep orders candidates by them), so a restored graph must intern
  every node at its original id even if the node's edges have expired;
* a SIEVEADN instance serializes its threshold grid (delta + per-exponent
  sieve sets with their cached values) and horizon;
* BASICREDUCTION / HISTAPPROX serialize their horizon-keyed instances;
* every algorithm payload carries its oracle's *configuration* (backend,
  memo mode, cache bound, sharded-executor worker count) — not the memo
  contents, which are a pure cache, nor the worker pool, which is
  runtime state re-created lazily — so a restored run keeps the same
  evaluation engine, invalidation policy and parallelism.

Restoring reconnects everything to a freshly rebuilt graph and a fresh
oracle; resumed runs produce *identical solutions and spread values* to
uninterrupted ones (verified in ``tests/test_persistence.py``).  Oracle
*call counts* after a restore can exceed the uninterrupted run's under
``memo_mode="delta"``: the memo table restarts cold (it is deliberately
not serialized) and re-pays evaluations the warm table would have
retained, until it re-warms.

Node labels must be JSON-compatible (strings, numbers); the loader refuses
graphs whose serialized labels would not round-trip.  This applies to
*every node the graph has ever seen*, not just currently-alive endpoints:
the interning table must round-trip in full, or restored dense ids (and
with them the deterministic changed-node ordering) would silently diverge
from the original run.

Randomized components (lifetime policies, the Random baseline, RR-set
samplers) are intentionally *not* serialized: RNG state is not portable
across Python versions, and the caller re-supplies policies on restore.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.basic_reduction import BasicReduction
from repro.errors import PersistenceError
from repro.core.hist_approx import HistApprox
from repro.core.sieve_adn import SieveADN
from repro.core.thresholds import SieveSet, ThresholdSet
from repro.influence.oracle import InfluenceOracle
from repro.tdn.graph import INFINITE_EXPIRY, TDNGraph
from repro.tdn.interaction import Interaction

_FORMAT_VERSION = 1
_JSONABLE_LABEL_TYPES = (str, int, float)


# ----------------------------------------------------------------------
# Graph
# ----------------------------------------------------------------------
def graph_to_dict(graph: TDNGraph) -> Dict:
    """Serialize the alive graph (labels must be JSON-compatible)."""
    edges = []
    for u, nbrs_pair in graph._out.items():  # noqa: SLF001 - own module
        for v, pair in nbrs_pair.items():
            _check_label(u)
            _check_label(v)
            for expiry, multiplicity in pair.expiries.items():
                serialized_expiry = None if expiry == INFINITE_EXPIRY else int(expiry)
                for _ in range(multiplicity):
                    edges.append([u, v, serialized_expiry])
    for node in graph._id_nodes:  # noqa: SLF001 - own module
        _check_label(node)
    return {
        "format_version": _FORMAT_VERSION,
        "type": "TDNGraph",
        "time": graph.time,
        "csr_mode": graph._csr_mode,  # noqa: SLF001 - own module
        "interned": list(graph._id_nodes),  # noqa: SLF001 - own module
        "edges": edges,
    }


def graph_from_dict(payload: Dict) -> TDNGraph:
    """Rebuild a graph serialized by :func:`graph_to_dict`.

    The interning table is restored first so every node keeps its original
    dense id (checkpoints from before the table was serialized fall back
    to replay-order interning).
    """
    _check_payload(payload, "TDNGraph")
    graph = TDNGraph(
        start_time=payload["time"], csr_mode=payload.get("csr_mode", "delta")
    )
    for node in payload.get("interned", ()):
        if node not in graph._node_ids:  # noqa: SLF001 - own module
            graph._node_ids[node] = len(graph._id_nodes)  # noqa: SLF001
            graph._id_nodes.append(node)  # noqa: SLF001
    t = payload["time"]
    for u, v, expiry in payload["edges"]:
        lifetime = None if expiry is None else int(expiry) - t
        graph.add_interaction(Interaction(u, v, t, lifetime))
    return graph


# ----------------------------------------------------------------------
# Oracle configuration
# ----------------------------------------------------------------------
def _maybe_oracle_to_dict(oracle) -> Optional[Dict]:
    """Config dict for real oracles; ``None`` for duck-typed stand-ins."""
    if isinstance(oracle, InfluenceOracle):
        return oracle_to_dict(oracle)
    return None


def oracle_to_dict(oracle: InfluenceOracle) -> Dict:
    """Serialize an oracle's configuration (never its memo contents).

    ``workers`` records the sharded-executor worker count so a restored
    run keeps its parallel evaluation setup; the pool itself is runtime
    state and is re-created lazily on the first parallel-eligible batch
    (a restore never spawns processes by itself).  ``semantics`` records
    the oracle's fold as its ``(name, params)`` wire form so a restored
    run evaluates under the same influence semantics (and keys its memo
    table identically); unknown names fail loudly on restore.  The
    default ``count`` fold is *omitted* so default-semantics checkpoints
    stay byte-identical to pre-fold ones (restore treats a missing key
    as ``count``).
    """
    payload = {
        "backend": oracle.backend,
        "memo_mode": oracle.memo_mode,
        "max_cache_entries": oracle.max_cache_entries,
        "workers": oracle.workers,
    }
    if oracle.fold.spec() != ("count", {}):
        payload["semantics"] = list(oracle.fold.spec())
    return payload


def oracle_from_dict(payload: Optional[Dict], graph: TDNGraph) -> InfluenceOracle:
    """Rebuild an oracle for a restored graph.

    Checkpoints from before the oracle configuration was serialized (or a
    missing key) fall back to a *current-defaults* oracle: solutions and
    spread values are unaffected by the memo policy, but post-restore
    call accounting follows today's ``memo_mode="delta"`` rather than the
    wholesale clear the original run used.  Checkpoints from before
    semantics were serialized default to ``"count"`` (the only semantics
    that existed then); a serialized name the registry does not know
    raises :class:`~repro.errors.SemanticsError` rather than silently
    resuming under different influence arithmetic.
    """
    if not payload:
        return InfluenceOracle(graph)
    workers = payload.get("workers", 1)
    return InfluenceOracle(
        graph,
        backend=payload.get("backend", "csr"),
        memo_mode=payload.get("memo_mode", "delta"),
        max_cache_entries=payload.get("max_cache_entries", 200_000),
        parallel=workers if workers and workers > 1 else None,
        semantics=payload.get("semantics", "count"),
    )


# ----------------------------------------------------------------------
# Threshold grids and sieve instances
# ----------------------------------------------------------------------
def _thresholds_to_dict(grid: ThresholdSet) -> Dict:
    return {
        "k": grid.k,
        "epsilon": grid.epsilon,
        "delta": grid.delta,
        "sieves": {
            str(exponent): {
                "nodes": list(sieve.nodes),
                "cached_value": sieve.cached_value,
            }
            for exponent, sieve in grid._sieves.items()  # noqa: SLF001
        },
    }


def _thresholds_from_dict(payload: Dict) -> ThresholdSet:
    grid = ThresholdSet(payload["k"], payload["epsilon"])
    grid.delta = payload["delta"]
    for exponent_str, sieve_payload in payload["sieves"].items():
        sieve = SieveSet()
        for node in sieve_payload["nodes"]:
            sieve.add(node)
        sieve.cached_value = sieve_payload["cached_value"]
        grid._sieves[int(exponent_str)] = sieve  # noqa: SLF001
    return grid


def sieve_adn_to_dict(sieve: SieveADN, include_oracle: bool = True) -> Dict:
    """Serialize one SIEVEADN instance (graph stored separately).

    Composite serializers pass ``include_oracle=False``: their instances
    all share the one top-level oracle, so repeating its configuration in
    every nested payload would be redundant (and misleading, suggesting
    per-instance oracles).
    """
    min_expiry = sieve.min_expiry
    if min_expiry == math.inf:
        min_expiry = "inf"
    payload = {
        "format_version": _FORMAT_VERSION,
        "type": "SieveADN",
        "k": sieve.k,
        "epsilon": sieve.epsilon,
        "min_expiry": min_expiry,
        "changed_mode": sieve.changed_mode,
        "last_time": sieve._last_time,  # noqa: SLF001
        "thresholds": _thresholds_to_dict(sieve.thresholds),
    }
    if include_oracle:
        payload["oracle"] = _maybe_oracle_to_dict(sieve.oracle)
    return payload


def sieve_adn_from_dict(
    payload: Dict, graph: TDNGraph, oracle: InfluenceOracle
) -> SieveADN:
    """Rebuild a SIEVEADN instance against a restored graph."""
    _check_payload(payload, "SieveADN")
    min_expiry = payload["min_expiry"]
    if min_expiry == "inf":
        min_expiry = math.inf
    sieve = SieveADN(
        payload["k"],
        payload["epsilon"],
        graph,
        oracle,
        min_expiry=min_expiry,
        changed_mode=payload["changed_mode"],
    )
    sieve.thresholds = _thresholds_from_dict(payload["thresholds"])
    sieve._last_time = payload["last_time"]  # noqa: SLF001
    return sieve


# ----------------------------------------------------------------------
# Full algorithms
# ----------------------------------------------------------------------
def algorithm_to_dict(algorithm) -> Dict:
    """Serialize a SieveADN / BasicReduction / HistApprox instance."""
    if isinstance(algorithm, SieveADN):
        return sieve_adn_to_dict(algorithm)
    if isinstance(algorithm, BasicReduction):
        return {
            "format_version": _FORMAT_VERSION,
            "type": "BasicReduction",
            "k": algorithm.k,
            "epsilon": algorithm.epsilon,
            "L": algorithm.L,
            "changed_mode": algorithm.changed_mode,
            "last_time": algorithm._last_time,  # noqa: SLF001
            "oracle": _maybe_oracle_to_dict(algorithm.oracle),
            "instances": [
                {
                    "horizon": horizon,
                    "state": sieve_adn_to_dict(instance, include_oracle=False),
                }
                for horizon, instance in algorithm._instances  # noqa: SLF001
            ],
        }
    if isinstance(algorithm, HistApprox):
        return {
            "format_version": _FORMAT_VERSION,
            "type": "HistApprox",
            "k": algorithm.k,
            "epsilon": algorithm.epsilon,
            "changed_mode": algorithm.changed_mode,
            "refine_head": algorithm.refine_head,
            "last_time": algorithm._last_time,  # noqa: SLF001
            "oracle": _maybe_oracle_to_dict(algorithm.oracle),
            "instances": [
                {
                    "horizon": "inf" if horizon == math.inf else horizon,
                    "state": sieve_adn_to_dict(
                        algorithm._instances[horizon],  # noqa: SLF001
                        include_oracle=False,
                    ),
                }
                for horizon in algorithm._horizons  # noqa: SLF001
            ],
        }
    raise TypeError(
        f"cannot serialize {type(algorithm).__name__}; supported: "
        "SieveADN, BasicReduction, HistApprox"
    )


def algorithm_from_dict(payload: Dict, graph: TDNGraph, oracle=None):
    """Rebuild an algorithm serialized by :func:`algorithm_to_dict`.

    When no ``oracle`` is supplied, one is rebuilt from the payload's
    serialized oracle configuration (backend / memo mode / cache bound).
    """
    if oracle is None:
        oracle = oracle_from_dict(payload.get("oracle"), graph)
    kind = payload.get("type")
    if kind == "SieveADN":
        return sieve_adn_from_dict(payload, graph, oracle)
    if kind == "BasicReduction":
        _check_payload(payload, "BasicReduction")
        algorithm = BasicReduction(
            payload["k"],
            payload["epsilon"],
            payload["L"],
            graph,
            oracle,
            changed_mode=payload["changed_mode"],
        )
        algorithm._last_time = payload["last_time"]  # noqa: SLF001
        for row in payload["instances"]:
            instance = sieve_adn_from_dict(row["state"], graph, oracle)
            algorithm._instances.append((row["horizon"], instance))  # noqa: SLF001
        return algorithm
    if kind == "HistApprox":
        _check_payload(payload, "HistApprox")
        algorithm = HistApprox(
            payload["k"],
            payload["epsilon"],
            graph,
            oracle,
            changed_mode=payload["changed_mode"],
            refine_head=payload["refine_head"],
        )
        algorithm._last_time = payload["last_time"]  # noqa: SLF001
        for row in payload["instances"]:
            horizon = math.inf if row["horizon"] == "inf" else row["horizon"]
            instance = sieve_adn_from_dict(row["state"], graph, oracle)
            algorithm._horizons.append(horizon)  # noqa: SLF001
            algorithm._instances[horizon] = instance  # noqa: SLF001
        return algorithm
    raise PersistenceError(f"unknown serialized algorithm type {kind!r}")


# ----------------------------------------------------------------------
# File-level checkpoints
# ----------------------------------------------------------------------
def save_checkpoint(path: Union[str, Path], graph: TDNGraph, algorithm) -> None:
    """Write a JSON checkpoint of the graph plus one algorithm."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "graph": graph_to_dict(graph),
        "algorithm": algorithm_to_dict(algorithm),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle)


def load_checkpoint(path: Union[str, Path]):
    """Load a checkpoint; returns ``(graph, algorithm)`` rewired together."""
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("format_version") != _FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported checkpoint format {payload.get('format_version')!r}"
        )
    graph = graph_from_dict(payload["graph"])
    algorithm = algorithm_from_dict(payload["algorithm"], graph)
    return graph, algorithm


# ----------------------------------------------------------------------
def _check_label(label) -> None:
    if not isinstance(label, _JSONABLE_LABEL_TYPES) or isinstance(label, bool):
        raise TypeError(
            f"node label {label!r} is not JSON-serializable; persistence "
            "supports str/int/float labels"
        )


def _check_payload(payload: Dict, expected_type: str) -> None:
    if payload.get("type") != expected_type:
        raise PersistenceError(
            f"expected serialized {expected_type}, got {payload.get('type')!r}"
        )
    if payload.get("format_version") != _FORMAT_VERSION:
        raise PersistenceError(
            f"unsupported format version {payload.get('format_version')!r}"
        )
