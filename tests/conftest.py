"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import List

import pytest

from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for tests that need randomness."""
    return random.Random(12345)


def random_tdn_events(
    rng: random.Random,
    *,
    num_nodes: int = 8,
    num_steps: int = 12,
    max_lifetime: int = 6,
    edges_per_step: int = 3,
) -> List[Interaction]:
    """Random small TDN event trace used across property-style tests."""
    events: List[Interaction] = []
    for t in range(num_steps):
        for _ in range(rng.randint(1, edges_per_step)):
            u = rng.randrange(num_nodes)
            v = rng.randrange(num_nodes)
            if u == v:
                continue
            events.append(
                Interaction(f"n{u}", f"n{v}", t, rng.randint(1, max_lifetime))
            )
    return events


def replay_into(graph: TDNGraph, events: List[Interaction], upto_time: int) -> None:
    """Advance ``graph`` step by step inserting events in time order."""
    by_time: dict = {}
    for event in events:
        by_time.setdefault(event.time, []).append(event)
    for t in range(upto_time + 1):
        graph.advance_to(t)
        for event in by_time.get(t, []):
            graph.add_interaction(event)
