"""Tests for the command-line tracker (python -m repro.track)."""

import json

import pytest

from repro.track import build_parser, main


class TestArgumentParsing:
    def test_requires_a_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_input_and_dataset_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--input", "x", "--dataset", "gowalla"])

    def test_defaults(self):
        args = build_parser().parse_args(["--dataset", "gowalla"])
        assert args.algorithm == "hist-approx"
        assert args.k == 10
        assert args.lifetime == "geometric"


class TestDatasetRuns:
    def test_synthetic_run(self, capsys):
        code = main([
            "--dataset", "twitter-hk", "--events", "150",
            "--k", "3", "--report-every", "50",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "summary" in out
        assert "oracle calls" in out
        assert "final influencers" in out

    def test_quiet_mode(self, capsys):
        main([
            "--dataset", "gowalla", "--events", "100",
            "--k", "2", "--quiet",
        ])
        out = capsys.readouterr().out
        assert "t=" not in out.split("summary")[0]

    @pytest.mark.parametrize(
        "algorithm", ["hist-approx", "basic-reduction", "sieve-adn", "greedy", "random"]
    )
    def test_all_algorithms_run(self, algorithm, capsys):
        args = [
            "--dataset", "brightkite", "--events", "60",
            "--algorithm", algorithm, "--k", "2", "--quiet",
            "--max-lifetime", "50",
        ]
        if algorithm == "sieve-adn":
            args += ["--lifetime", "infinite"]
        assert main(args) == 0

    def test_constant_lifetime(self, capsys):
        assert main([
            "--dataset", "gowalla", "--events", "80", "--k", "2",
            "--lifetime", "constant", "--max-lifetime", "20", "--quiet",
        ]) == 0


class TestFileInput:
    def test_snap_file_run(self, tmp_path, capsys):
        path = tmp_path / "trace.txt"
        lines = [f"u{i % 5} v{i % 7} {i}" for i in range(50)]
        path.write_text("\n".join(lines) + "\n")
        code = main([
            "--input", str(path), "--k", "2", "--quiet",
            "--max-lifetime", "30",
        ])
        assert code == 0
        assert "events processed:   50" in capsys.readouterr().out

    def test_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        assert main(["--input", str(path), "--quiet"]) == 1


class TestCheckpointing:
    def test_checkpoint_written_and_loadable(self, tmp_path, capsys):
        checkpoint = tmp_path / "state.json"
        main([
            "--dataset", "twitter-hk", "--events", "120", "--k", "2",
            "--checkpoint", str(checkpoint), "--checkpoint-every", "50",
            "--quiet", "--max-lifetime", "60",
        ])
        assert checkpoint.exists()
        payload = json.loads(checkpoint.read_text())
        assert payload["algorithm"]["type"] == "HistApprox"
        from repro.persistence import load_checkpoint

        graph, algorithm = load_checkpoint(checkpoint)
        assert algorithm.query().value >= 0.0


class TestWorkersFlag:
    def test_workers_default_is_serial(self):
        args = build_parser().parse_args(["--dataset", "gowalla"])
        assert args.workers == 1

    def test_sharded_run_matches_serial_run(self, capsys):
        """The CLI produces identical output fields with --workers 2."""
        argv = [
            "--dataset", "twitter-hk", "--events", "120",
            "--k", "3", "--algorithm", "sieve-adn", "--quiet",
        ]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        sharded_out = capsys.readouterr().out
        pick = lambda text, field: [  # noqa: E731 - tiny local helper
            line for line in text.splitlines() if field in line
        ]
        for field in ("oracle calls", "final value", "final influencers"):
            assert pick(sharded_out, field) == pick(serial_out, field)
        assert "evaluation workers: 2" in sharded_out
