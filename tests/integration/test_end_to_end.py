"""End-to-end integration tests across the whole stack.

These replay realistic synthetic streams through the full pipeline —
dataset generator -> lifetime policy -> shared TDN -> algorithms ->
harness — and assert the cross-cutting behaviours the paper's evaluation
depends on.
"""

from repro import (
    BasicReduction,
    ConstantLifetime,
    GeometricLifetime,
    HistApprox,
    InfluenceTracker,
    TDNGraph,
    make_stream,
)

# The baselines and the experiment harness stay internal (research
# tooling); this end-to-end suite drives them on purpose.
# repro-lint: disable-next=RPL105
from repro.baselines.greedy_recompute import GreedyRecompute

# repro-lint: disable-next=RPL105
from repro.baselines.random_baseline import RandomBaseline

# repro-lint: disable-next=RPL105
from repro.experiments.harness import run_tracking


class TestQualityOrdering:
    def test_greedy_hist_random_ordering(self):
        """Fig. 8's invariant ordering on a realistic stream."""
        report = run_tracking(
            make_stream("twitter-hk", 200, seed=5),
            {
                "hist": lambda graph: HistApprox(5, 0.2, graph),
                "greedy": lambda graph: GreedyRecompute(5, graph),
                "random": lambda graph: RandomBaseline(5, graph, seed=3),
            },
            lifetime_policy=GeometricLifetime(0.02, 150, seed=6),
            query_interval=5,
        )
        hist = report["hist"].mean_value
        greedy = report["greedy"].mean_value
        random_val = report["random"].mean_value
        assert greedy >= hist * 0.999
        assert hist > random_val
        assert hist >= 0.75 * greedy  # well above the 1/3 floor in practice

    def test_hist_uses_fewer_calls_than_greedy(self):
        """Fig. 10's invariant on a realistic stream."""
        report = run_tracking(
            make_stream("brightkite", 200, seed=2),
            {
                "hist": lambda graph: HistApprox(10, 0.2, graph),
                "greedy": lambda graph: GreedyRecompute(10, graph),
            },
            lifetime_policy=GeometricLifetime(0.02, 150, seed=3),
            query_interval=1,
        )
        assert report["hist"].total_calls < report["greedy"].total_calls


class TestModelEquivalences:
    def test_constant_lifetime_equals_sliding_window(self):
        """Example 4: TDN with constant lifetime W == W-step sliding window.

        HISTAPPROX on the TDN must report values on the same graph as a
        manually maintained sliding window.
        """
        events = make_stream("twitter-hk", 80, seed=1).materialize()
        window = 6
        graph = TDNGraph()
        hist = HistApprox(3, 0.2, graph)
        flat = [(t, i) for t, batch in events for i in batch]
        for t, interaction in flat:
            graph.advance_to(t)
            lifed = interaction.with_lifetime(window)
            graph.add_interaction(lifed)
            hist.on_batch(t, [lifed])
            window_pairs = {
                (i.source, i.target)
                for tt, i in flat
                if tt <= t and tt > t - window
            }
            assert set(graph.alive_pairs()) == window_pairs

    def test_infinite_lifetimes_match_sieve_adn(self):
        """Example 3: on an ADN, HISTAPPROX degenerates to one SIEVEADN
        instance and both must produce identical solutions."""
        stream = make_stream("gowalla", 120, seed=4)
        graph_a, graph_b = TDNGraph(), TDNGraph()
        sieve = None
        hist = HistApprox(5, 0.2, graph_b)
        from repro import SieveADN

        sieve = SieveADN(5, 0.2, graph_a)
        for t, batch in stream:
            for graph, algo in ((graph_a, sieve), (graph_b, hist)):
                graph.advance_to(t)
                graph.add_batch(batch)
                algo.on_batch(t, batch)
        assert hist.num_instances == 1
        assert hist.query().value == sieve.query().value
        assert hist.query().nodes == sieve.query().nodes


class TestTrackerScenarios:
    def test_influencer_churn_is_tracked(self):
        """The paper's Fig. 1 scenario: the influential set must follow the
        data as old influencers stop interacting."""
        tracker = InfluenceTracker(
            "hist-approx", k=1, epsilon=0.2, lifetime_policy=ConstantLifetime(5)
        )
        # Phase 1: u1 dominates.
        for t in range(5):
            tracker.step(t, [("u1", f"a{t}"), ("u1", f"b{t}")])
        assert tracker.query().nodes == ("u1",)
        # Phase 2: u1 goes silent, u5 takes over; after the window passes,
        # u5 must be the tracked influencer.
        for t in range(5, 15):
            tracker.step(t, [("u5", f"c{t}"), ("u5", f"d{t}"), ("u5", f"e{t}")])
        assert tracker.query().nodes == ("u5",)

    def test_alice_scenario_smooth_decay(self):
        """Example 1: a briefly absent influencer with long-lived edges must
        NOT vanish from the solution (the TDN's advantage over a hard
        sliding window)."""
        tracker = InfluenceTracker(
            "hist-approx", k=1, epsilon=0.2,
            lifetime_policy=ConstantLifetime(20),  # long-lived evidence
        )
        for t in range(5):
            tracker.step(t, [("alice", f"f{t}")])
        # Alice is hospitalized: 6 quiet steps with only background noise.
        for t in range(5, 11):
            tracker.step(t, [("noise", f"n{t % 2}")])
        # A 5-step sliding window would have dropped her; the TDN keeps her.
        assert tracker.query().nodes == ("alice",)

    def test_all_algorithms_agree_on_static_hub(self):
        """Every algorithm must find the unambiguous dominant hub."""
        events = []
        for t in range(10):
            events.append(("hub", f"x{t}"))
        for name in ("hist-approx", "sieve-adn", "greedy"):
            tracker = InfluenceTracker(name, k=1, epsilon=0.2)
            for t in range(10):
                tracker.step(t, [events[t]])
            assert tracker.query().nodes == ("hub",), name


class TestBasicVsHistConsistency:
    def test_close_values_on_realistic_stream(self):
        """Fig. 7: HISTAPPROX within a few percent of BASICREDUCTION."""
        L = 60
        report = run_tracking(
            make_stream("brightkite", 150, seed=7),
            {
                "basic": lambda graph: BasicReduction(5, 0.1, L, graph),
                "hist": lambda graph: HistApprox(5, 0.1, graph),
            },
            lifetime_policy=GeometricLifetime(0.03, L, seed=8),
            query_interval=5,
        )
        basic = report["basic"].mean_value
        hist = report["hist"].mean_value
        assert hist >= 0.85 * basic
        assert report["hist"].total_calls < report["basic"].total_calls


class TestDeterminism:
    def test_identical_runs_identical_results(self):
        def run_once():
            report = run_tracking(
                make_stream("stackoverflow-c2q", 100, seed=9),
                {"hist": lambda graph: HistApprox(5, 0.2, graph)},
                lifetime_policy=GeometricLifetime(0.05, 50, seed=10),
                query_interval=5,
            )
            return (
                tuple(report["hist"].values),
                report["hist"].total_calls,
                report.final_nodes["hist"],
            )

        assert run_once() == run_once()
