"""Cross-backend equivalence: dict and CSR oracles are interchangeable.

The CSR engine is a performance substrate, not a new algorithm: for every
tracker, on every stream, it must produce the *identical* per-step
``Solution`` sequence and spend the *identical* number of oracle calls as
the reference dict-of-dict BFS.  This suite replays seeded synthetic
streams through SIEVEADN, BASICREDUCTION and HISTAPPROX under both
backends — across finite, infinite and mixed lifetime regimes — and
compares the full trajectories.

The small-graph scalar path and the vectorized frontier path of the CSR
engine are both exercised: the scalar cutover is dropped to zero for one
parametrization so the vector code runs even at these test scales.
"""

import random

import pytest

from repro import (
    BasicReduction,
    HistApprox,
    InfluenceOracle,
    Interaction,
    MemoryStream,
    SieveADN,
    TDNGraph,
)

# This suite deliberately probes internal substrates (the CSR snapshot
# engine and the shared call counter) to pin backend equivalence.
# repro-lint: disable-next=RPL105
from repro.tdn.csr import CSRSnapshot

# repro-lint: disable-next=RPL105
from repro.utils.counters import CallCounter

MAX_LIFETIME = 6


def seeded_events(seed, regime, num_nodes=9, steps=18):
    """A seeded synthetic stream in one of three lifetime regimes."""
    rng = random.Random(seed)
    events = []
    for t in range(steps):
        for _ in range(rng.randint(1, 3)):
            u, v = rng.sample(range(num_nodes), 2)
            if regime == "finite":
                lifetime = rng.randint(1, MAX_LIFETIME)
            elif regime == "infinite":
                lifetime = None
            else:  # mixed
                lifetime = None if rng.random() < 0.3 else rng.randint(1, MAX_LIFETIME)
            events.append(Interaction(f"n{u}", f"n{v}", t, lifetime))
    return events


def make_tracker(name, graph, oracle):
    if name == "sieve_adn":
        return SieveADN(2, 0.2, graph, oracle)
    if name == "basic_reduction":
        return BasicReduction(2, 0.2, MAX_LIFETIME, graph, oracle)
    if name == "hist_approx":
        return HistApprox(2, 0.2, graph, oracle)
    raise AssertionError(name)


def replay(tracker_name, events, backend):
    """Fresh graph + oracle + tracker; returns (solutions, oracle calls)."""
    graph = TDNGraph()
    counter = CallCounter()
    oracle = InfluenceOracle(graph, counter, backend=backend)
    tracker = make_tracker(tracker_name, graph, oracle)
    solutions = []
    versions = 0
    for t, batch in MemoryStream(events, fill_gaps=True):
        graph.advance_to(t)
        graph.add_batch(batch)
        tracker.on_batch(t, batch)
        solutions.append(tracker.query())
        versions = graph.version
    if backend == "csr" and versions:
        # The delta-CSR path must have carried the replay: the engine was
        # exercised, and it absorbed the stream's many versions with far
        # fewer full base compactions than graph versions (no
        # rebuild-per-version behavior).
        engine = graph.csr()
        assert engine.compactions >= 1
        assert engine.compactions < max(2, versions // 4), (
            engine.compactions,
            versions,
        )
    return solutions, counter.total


REGIMES_BY_TRACKER = {
    # BasicReduction requires finite lifetimes <= L by contract.
    "sieve_adn": ("finite", "infinite", "mixed"),
    "basic_reduction": ("finite",),
    "hist_approx": ("finite", "infinite", "mixed"),
}

CASES = [
    (tracker, regime)
    for tracker, regimes in REGIMES_BY_TRACKER.items()
    for regime in regimes
]


@pytest.mark.parametrize("tracker_name,regime", CASES)
@pytest.mark.parametrize("seed", [11, 29])
def test_identical_solutions_and_call_counts(tracker_name, regime, seed):
    events = seeded_events(seed, regime)
    dict_solutions, dict_calls = replay(tracker_name, events, "dict")
    csr_solutions, csr_calls = replay(tracker_name, events, "csr")
    assert csr_solutions == dict_solutions
    assert csr_calls == dict_calls
    assert dict_calls > 0  # the streams genuinely exercise the oracle


def test_vectorized_path_equivalence(monkeypatch):
    """Force the vector BFS (no scalar cutover) and re-check one of each."""
    monkeypatch.setattr(CSRSnapshot, "SCALAR_PAIR_LIMIT", 0)
    for tracker_name, regime in (
        ("sieve_adn", "mixed"),
        ("basic_reduction", "finite"),
        ("hist_approx", "mixed"),
    ):
        events = seeded_events(53, regime)
        dict_solutions, dict_calls = replay(tracker_name, events, "dict")
        csr_solutions, csr_calls = replay(tracker_name, events, "csr")
        assert csr_solutions == dict_solutions
        assert csr_calls == dict_calls
