"""Robustness and misuse tests: degenerate parameters, hostile schedules.

Production code meets weird inputs; these tests pin down behaviour at the
edges — degenerate budgets, extreme epsilons, bursts followed by total
silence, duplicate queries, disabled caches.
"""

import pytest

from repro import (
    BasicReduction,
    HistApprox,
    InfluenceOracle,
    InfluenceTracker,
    Interaction,
    SieveADN,
    TDNGraph,
)


class TestDegenerateParameters:
    def test_L_equals_one(self):
        """Every edge lives exactly one step: the solution resets per step."""
        graph = TDNGraph()
        basic = BasicReduction(2, 0.2, 1, graph)
        for t in range(5):
            graph.advance_to(t)
            batch = [Interaction(f"s{t}", f"t{t}", t, 1)]
            graph.add_batch(batch)
            basic.on_batch(t, batch)
            assert basic.query().nodes == (f"s{t}",)

    def test_k_one_tracks_single_best(self):
        graph = TDNGraph()
        hist = HistApprox(1, 0.2, graph)
        batch = [Interaction("big", f"x{i}", 0, 9) for i in range(4)]
        batch += [Interaction("small", "y", 0, 9)]
        graph.add_batch(batch)
        hist.on_batch(0, batch)
        assert hist.query().nodes == ("big",)

    def test_extreme_epsilon_high(self):
        """eps = 0.99: minimal thresholds, still a valid (tiny) guarantee."""
        graph = TDNGraph()
        hist = HistApprox(2, 0.99, graph)
        batch = [Interaction("a", f"b{i}", 0, 9) for i in range(5)]
        graph.add_batch(batch)
        hist.on_batch(0, batch)
        assert hist.query().value > 0

    def test_extreme_epsilon_low(self):
        """eps = 0.01: hundreds of thresholds; correctness unaffected."""
        graph = TDNGraph()
        sieve = SieveADN(2, 0.01, graph)
        batch = [Interaction("a", "b", 0, 9), Interaction("c", "d", 0, 9)]
        graph.add_batch(batch)
        sieve.on_batch(0, batch)
        assert sieve.query().value == 4.0

    def test_oracle_with_cache_disabled(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 9))
        oracle = InfluenceOracle(graph, max_cache_entries=0)
        assert oracle.spread(["a"]) == 2
        assert oracle.spread(["a"]) == 2
        assert oracle.calls == 2  # nothing was cached


class TestHostileSchedules:
    def test_burst_then_total_silence(self):
        """A large burst, then many empty steps: everything must expire
        cleanly and queries must degrade to empty without errors."""
        graph = TDNGraph()
        hist = HistApprox(3, 0.2, graph)
        burst = [Interaction(f"s{i}", f"t{i}", 0, 5) for i in range(30)]
        graph.add_batch(burst)
        hist.on_batch(0, burst)
        assert hist.query().value > 0
        for t in range(1, 12):
            graph.advance_to(t)
            hist.on_batch(t, [])
        assert hist.query().value == 0.0
        assert hist.num_instances == 0
        assert graph.num_nodes == 0

    def test_sparse_times_with_huge_gaps(self):
        graph = TDNGraph()
        basic = BasicReduction(2, 0.2, 10, graph)
        for t in (0, 1_000, 50_000):
            graph.advance_to(t)
            batch = [Interaction(f"a{t}", f"b{t}", t, 5)]
            graph.add_batch(batch)
            basic.on_batch(t, batch)
            assert basic.query().nodes == (f"a{t}",)
        assert basic.num_instances == 10

    def test_repeated_queries_are_stable_and_cheap(self):
        graph = TDNGraph()
        hist = HistApprox(2, 0.2, graph)
        batch = [Interaction("a", "b", 0, 9)]
        graph.add_batch(batch)
        hist.on_batch(0, batch)
        first = hist.query()
        calls_after_first = hist.oracle.calls
        for _ in range(20):
            assert hist.query() == first
        # All repeat queries hit the per-version cache.
        assert hist.oracle.calls == calls_after_first

    def test_same_pair_flooding(self):
        """Thousands of parallel edges on one pair must not blow up
        structures (multiplicity is a counter, not object copies)."""
        graph = TDNGraph()
        hist = HistApprox(1, 0.2, graph)
        batch = [Interaction("a", "b", 0, 50) for _ in range(2_000)]
        graph.add_batch(batch)
        hist.on_batch(0, batch)
        assert graph.num_edges == 2_000
        assert graph.num_pairs == 1
        assert hist.query().value == 2.0

    def test_alternating_long_short_lifetimes(self):
        """Interleaving extremes exercises instance creation/expiry churn."""
        graph = TDNGraph()
        hist = HistApprox(2, 0.2, graph)
        for t in range(20):
            graph.advance_to(t)
            lifetime = 1 if t % 2 == 0 else 100
            batch = [Interaction(f"u{t % 4}", f"v{t % 3}", t, lifetime)]
            if batch[0].source == batch[0].target:
                batch = []
            graph.add_batch(batch)
            hist.on_batch(t, batch)
            assert len(hist.query().nodes) <= 2
        # Instances stay bounded despite the churn.
        assert hist.num_instances <= 8


class TestTrackerMisuse:
    def test_step_backwards_rejected_but_state_intact(self):
        tracker = InfluenceTracker("hist-approx", k=1, epsilon=0.2)
        tracker.step(5, [("a", "b")])
        with pytest.raises(ValueError):
            tracker.step(4, [("c", "d")])
        # The failed step must not have corrupted anything.
        assert tracker.query().nodes == ("a",)

    def test_empty_steps_allowed(self):
        tracker = InfluenceTracker("hist-approx", k=1, epsilon=0.2)
        tracker.step(0, [])
        tracker.step(1, [])
        assert tracker.query().value == 0.0

    def test_mixed_item_types_in_one_batch(self):
        tracker = InfluenceTracker("hist-approx", k=2, epsilon=0.2)
        solution = tracker.step(
            0, [("a", "b"), Interaction("c", "d", 0, 5), ("e", "f", 3)]
        )
        assert solution.value >= 2.0
