"""Backend dispatch: precedence, degrade-never-error, no-numba parity.

Every test here runs with numba force-blocked (``sys.modules`` poisoned)
so the suite pins the exact behavior a numba-less host sees — including
hosts where numba *is* installed, like the CI native leg: the block makes
the probe fail deterministically either way.  The one warm-up test that
needs a real numba self-skips when it is absent.
"""

import sys
import warnings

import pytest

from repro.kernels import (
    BACKEND_ENV,
    native_available,
    native_compile_seconds,
    reset_backend_state,
    resolve_backend,
)
from repro.obs import names as metric_names
from repro.obs.registry import metrics_registry
from repro.tdn.csr import CSRSnapshot, DeltaCSR
from tests.property.test_kernel_unification import build_stream_graph


@pytest.fixture(autouse=True)
def clean_backend_state(monkeypatch):
    """Fresh probe/warning state and no env override around every test."""
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    reset_backend_state()
    yield
    reset_backend_state()


def block_numba(monkeypatch):
    """Make the native probe fail exactly as on a host without numba."""
    monkeypatch.setitem(sys.modules, "numba", None)
    monkeypatch.delitem(sys.modules, "repro.kernels.native", raising=False)


# ----------------------------------------------------------------------
# Resolution precedence
# ----------------------------------------------------------------------
def test_explicit_python_needs_no_probe(monkeypatch):
    block_numba(monkeypatch)
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any warning fails the test
        assert resolve_backend("python") == "python"


def test_explicit_unknown_backend_raises():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve_backend("turbo")


def test_explicit_argument_beats_env(monkeypatch):
    block_numba(monkeypatch)
    monkeypatch.setenv(BACKEND_ENV, "native")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        # The env asks for native (which would warn: unavailable); the
        # explicit python request wins silently.
        assert resolve_backend("python") == "python"


def test_env_python_honored(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "python")
    assert resolve_backend(None) == "python"


def test_unknown_env_value_warns_once_and_serves_auto(monkeypatch):
    block_numba(monkeypatch)
    monkeypatch.setenv(BACKEND_ENV, "turbo")
    with pytest.warns(RuntimeWarning, match=BACKEND_ENV):
        assert resolve_backend(None) == "python"
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_backend(None) == "python"  # warned once, not twice


# ----------------------------------------------------------------------
# Degrade, never error
# ----------------------------------------------------------------------
def test_auto_without_numba_is_silent(monkeypatch):
    block_numba(monkeypatch)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_backend(None) == "python"
        assert resolve_backend("auto") == "python"
    assert not native_available()
    assert native_compile_seconds() is None


def test_explicit_native_without_numba_warns_once(monkeypatch):
    block_numba(monkeypatch)
    with pytest.warns(RuntimeWarning, match=r"\[native\] extra"):
        assert resolve_backend("native") == "python"
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_backend("native") == "python"  # single warning


def test_backend_gauge_records_resolution(monkeypatch):
    block_numba(monkeypatch)
    resolve_backend("python")
    assert metrics_registry().gauge(metric_names.KERNEL_BACKEND).value == 0.0


def test_degraded_engines_serve_identical_results(monkeypatch):
    """backend='native' without numba == the python reference, bit for bit."""
    block_numba(monkeypatch)
    graph = build_stream_graph(23, 14, 90)
    reference = graph.csr()
    with pytest.warns(RuntimeWarning):
        degraded_delta = DeltaCSR(graph, backend="native")
    degraded_snapshot = CSRSnapshot.build(graph, backend="native")
    ids = list(range(graph.num_interned))
    id_sets = [ids[i : i + 3] for i in range(0, len(ids), 3)]
    assert degraded_delta.backend == "python"
    assert degraded_snapshot.backend == "python"
    assert degraded_delta.spread_counts(id_sets) == reference.spread_counts(
        id_sets
    )
    assert degraded_snapshot.reachable_ids(ids[:4]) == reference.reachable_ids(
        ids[:4]
    )


# ----------------------------------------------------------------------
# Real warm-up (runs only where numba exists, e.g. the CI native leg)
# ----------------------------------------------------------------------
def test_warm_up_records_compile_time():
    pytest.importorskip("numba")
    assert native_available()
    elapsed = native_compile_seconds()
    assert elapsed is not None and elapsed >= 0.0
    assert resolve_backend("native") == "native"
    assert (
        metrics_registry().gauge(metric_names.KERNEL_BACKEND).value == 1.0
    )
    assert (
        metrics_registry()
        .gauge(metric_names.KERNEL_NATIVE_COMPILE_SECONDS)
        .value
        == pytest.approx(elapsed)
    )
