"""Unit tests for the shared traversal kernel itself.

The differential suite (``tests/property/test_kernel_unification.py``)
pins the three engine adapters to each other; this module tests the
kernel's own contracts directly: overlay-callback injection, the
scalar/vector cutover, the unified out-of-range seed validation, the
weighted bit-plane fold, and the transpose helper.
"""

import numpy as np
import pytest

from repro.kernels import (
    PLANE_WIDTH,
    DictOverlay,
    TraversalKernel,
    build_transpose,
    dense_weight_sum,
    seed_range_error,
)


def chain_arrays(num_nodes=5, expiry=10.0):
    """A simple path 0 -> 1 -> ... -> num_nodes-1 in CSR form."""
    indptr = np.minimum(np.arange(num_nodes + 1, dtype=np.int64), num_nodes - 1)
    indices = np.arange(1, num_nodes, dtype=np.int64)
    expiries = np.full(num_nodes - 1, expiry, dtype=np.float64)
    return indptr, indices, expiries


class TestOverlayInjection:
    def test_dict_overlay_extends_base_reach(self):
        indptr, indices, expiries = chain_arrays(4)
        flags = np.zeros(6, dtype=bool)
        entries = {3: [(4, 9.0)], 4: [(5, 9.0)]}
        flags[3] = flags[4] = True
        kernel = TraversalKernel(
            indptr,
            indices,
            expiries,
            num_nodes=6,  # ids 4 and 5 exist only through the overlay
            overlay=DictOverlay(entries, flags),
        )
        assert kernel.reachable_ids([0], None) == {0, 1, 2, 3, 4, 5}
        assert kernel.reachable_count([0], None) == 6
        assert kernel.spread_counts([[0], [4], []], None) == [6, 2, 0]

    def test_overlay_entries_respect_horizon(self):
        indptr, indices, expiries = chain_arrays(3)
        flags = np.zeros(4, dtype=bool)
        flags[2] = True
        kernel = TraversalKernel(
            indptr,
            indices,
            expiries,
            num_nodes=4,
            overlay=DictOverlay({2: [(3, 5.0)]}, flags),
        )
        assert 3 in kernel.reachable_ids([0], 5.0)
        assert 3 not in kernel.reachable_ids([0], 5.5)
        assert kernel.spread_counts([[0]], 5.5) == [3]

    def test_custom_overlay_object_plugs_in(self):
        """Anything with select/entries works — the injection is a protocol,
        not a class check."""

        class EveryNodeLoopsTo(object):
            def __init__(self, target):
                self.target = target

            def select(self, frontier):
                return frontier

            def entries(self, node_id):
                return [(self.target, np.inf)]

        indptr, indices, expiries = chain_arrays(3)
        kernel = TraversalKernel(
            indptr, indices, expiries, overlay=EveryNodeLoopsTo(0)
        )
        # Every node reaches back to 0, so 2 reaches {2, 0, 1}.
        assert kernel.reachable_ids([2], None) == {0, 1, 2}
        # Scalar path honors the same overlay protocol.
        kernel.limit_resolver = lambda: 10**9
        assert kernel.reach_scalar([2], None) == {0, 1, 2}

    def test_overlay_serves_ids_past_the_base_arrays(self):
        indptr, indices, expiries = chain_arrays(3)
        flags = np.zeros(5, dtype=bool)
        flags[4] = True
        kernel = TraversalKernel(
            indptr,
            indices,
            expiries,
            num_nodes=5,
            overlay=DictOverlay({4: [(0, 9.0)]}, flags),
        )
        # Seed 4 has no base adjacency slice at all; only the overlay
        # knows it, and the sweep must not index past the base arrays.
        assert kernel.reachable_ids([4], None) == {4, 0, 1, 2}
        assert kernel.spread_counts([[4]], None) == [4]


class TestScalarVectorCutover:
    def test_resolver_none_means_always_vectorized(self):
        indptr, indices, expiries = chain_arrays(4)
        kernel = TraversalKernel(indptr, indices, expiries)
        assert kernel.limit_resolver is None
        assert not kernel._use_scalar()  # noqa: SLF001 - the cutover itself

    def test_resolver_flips_the_path_per_query(self):
        indptr, indices, expiries = chain_arrays(6)
        limit = {"value": 0}
        kernel = TraversalKernel(
            indptr, indices, expiries, limit_resolver=lambda: limit["value"]
        )
        assert not kernel._use_scalar()  # noqa: SLF001
        limit["value"] = 10**9
        assert kernel._use_scalar()  # noqa: SLF001

    def test_both_paths_are_result_identical(self):
        rng = np.random.default_rng(5)
        num_nodes, num_pairs = 40, 160
        sources = np.sort(rng.integers(0, num_nodes, num_pairs))
        indices = rng.integers(0, num_nodes, num_pairs)
        expiries = rng.uniform(1.0, 20.0, num_pairs)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(sources, minlength=num_nodes), out=indptr[1:])
        kernel = TraversalKernel(indptr, indices.astype(np.int64), expiries)
        weights = rng.uniform(0.0, 3.0, num_nodes)
        for eff in (None, 5.0, 15.0):
            seeds = [0, 3, 7]
            assert kernel.reach_scalar(seeds, eff) == kernel.reach_vector(seeds, eff)
            id_sets = [[i] for i in range(num_nodes)] + [[0, 1, 2]]
            vector_counts = kernel.spread_counts(id_sets, eff)
            vector_sums = kernel.weighted_spread_sums(id_sets, eff, weights)
            kernel.limit_resolver = lambda: 10**9  # force scalar
            assert kernel.spread_counts(id_sets, eff) == vector_counts
            assert kernel.weighted_spread_sums(id_sets, eff, weights) == vector_sums
            kernel.limit_resolver = None


class TestUnifiedSeedValidation:
    """Every path raises the one shared out-of-range message."""

    def expected(self, bad, num_nodes):
        return str(seed_range_error(bad, num_nodes))

    @pytest.mark.parametrize("bad", [-1, 99])
    def test_vector_scalar_and_bitplane_agree(self, bad):
        indptr, indices, expiries = chain_arrays(4)
        kernel = TraversalKernel(indptr, indices, expiries)
        messages = set()
        for call in (
            lambda: kernel.reach_vector([bad], None),
            lambda: kernel.reach_scalar([bad], None),
            lambda: kernel.reachable_count([bad], None),
            lambda: kernel.spread_counts([[bad]], None),
            lambda: kernel.weighted_spread_sums(
                [[bad]], None, np.ones(4, dtype=np.float64)
            ),
        ):
            with pytest.raises(IndexError) as excinfo:
                call()
            messages.add(str(excinfo.value))
        assert messages == {self.expected(bad, 4)}

    def test_valid_seeds_before_the_bad_one_do_not_mask_it(self):
        indptr, indices, expiries = chain_arrays(4)
        kernel = TraversalKernel(indptr, indices, expiries)
        with pytest.raises(IndexError):
            kernel.reachable_ids([0, 1, 4], None)


class TestWeightedFold:
    def test_weighted_sums_match_per_set_reachable_fold(self):
        rng = np.random.default_rng(11)
        num_nodes, num_pairs = 30, 90
        sources = np.sort(rng.integers(0, num_nodes, num_pairs))
        indices = rng.integers(0, num_nodes, num_pairs).astype(np.int64)
        expiries = rng.uniform(1.0, 12.0, num_pairs)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(sources, minlength=num_nodes), out=indptr[1:])
        kernel = TraversalKernel(indptr, indices, expiries)
        weights = rng.uniform(0.0, 5.0, num_nodes)
        id_sets = [[i] for i in range(num_nodes)] + [[0, 5, 9], []]
        for eff in (None, 6.0):
            sums = kernel.weighted_spread_sums(id_sets, eff, weights)
            expected = [
                dense_weight_sum(weights, kernel.reachable_ids(ids, eff))
                for ids in id_sets
            ]
            assert sums == expected  # bit-identical, not approx

    def test_more_than_one_plane_chunk(self):
        num_nodes = PLANE_WIDTH + 20
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)  # edgeless graph
        kernel = TraversalKernel(
            indptr, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        )
        weights = np.arange(num_nodes, dtype=np.float64)
        id_sets = [[i] for i in range(num_nodes)]
        assert kernel.spread_counts(id_sets, None) == [1] * num_nodes
        assert kernel.weighted_spread_sums(id_sets, None, weights) == [
            float(i) for i in range(num_nodes)
        ]

    def test_dense_weight_sum_is_order_canonical(self):
        weights = np.array([0.1, 0.2, 0.3, 0.4])
        a = dense_weight_sum(weights, {3, 0, 2})
        b = dense_weight_sum(weights, [2, 3, 0])
        c = dense_weight_sum(weights, (0, 2, 3))
        assert a == b == c
        assert dense_weight_sum(weights, []) == 0.0


class TestTransposeAndCapacity:
    def test_build_transpose_round_trips_edges(self):
        rng = np.random.default_rng(3)
        num_nodes, num_pairs = 12, 40
        sources = np.sort(rng.integers(0, num_nodes, num_pairs))
        indices = rng.integers(0, num_nodes, num_pairs).astype(np.int64)
        expiries = rng.uniform(1.0, 9.0, num_pairs)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(sources, minlength=num_nodes), out=indptr[1:])
        tindptr, tindices, texpiries = build_transpose(
            indptr, indices, expiries
        )
        forward = set()
        for u in range(num_nodes):
            for slot in range(indptr[u], indptr[u + 1]):
                forward.add((u, int(indices[slot]), float(expiries[slot])))
        backward = set()
        for v in range(num_nodes):
            for slot in range(tindptr[v], tindptr[v + 1]):
                backward.add((int(tindices[slot]), v, float(texpiries[slot])))
        assert forward == backward

    def test_build_transpose_empty(self):
        tindptr, tindices, texpiries = build_transpose(
            np.zeros(5, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
        assert tindptr.tolist() == [0] * 5
        assert tindices.size == 0 and texpiries.size == 0

    def test_ensure_capacity_grows_the_id_space(self):
        indptr, indices, expiries = chain_arrays(3)
        kernel = TraversalKernel(indptr, indices, expiries)
        with pytest.raises(IndexError):
            kernel.reachable_ids([5], None)
        kernel.ensure_capacity(8)
        assert kernel.num_nodes == 8
        assert kernel.reachable_ids([5], None) == {5}  # isolated id
        kernel.ensure_capacity(4)  # shrinking is a no-op
        assert kernel.num_nodes == 8
