"""Fixture snippets proving every repro-lint code fires — and suppresses.

Each case is a minimal source snippet placed at a path that puts it in
the relevant rule's scope.  The shared ``assert_fires`` helper also
re-lints the snippet with a pragma injected on the finding line and
asserts the finding disappears, so the suppression machinery is
exercised for *every* code, not just the ones we remembered.
"""

from __future__ import annotations

import textwrap
from typing import List

import pytest

from repro.lint import lint_source
from repro.lint.findings import CODES, Finding


def _lint(source: str, path: str) -> List[Finding]:
    return lint_source(textwrap.dedent(source), path)


def assert_fires(source: str, path: str, code: str) -> List[Finding]:
    """Snippet produces ``code``; the same snippet pragma'd does not."""
    source = textwrap.dedent(source)
    findings = [f for f in lint_source(source, path) if f.code == code]
    assert findings, f"{code} did not fire"
    # Inject a disable-next pragma above every finding line; every
    # occurrence of the code must vanish.
    lines = source.splitlines()
    for finding in sorted(findings, key=lambda f: -f.line):
        indent = lines[finding.line - 1][
            : len(lines[finding.line - 1]) - len(lines[finding.line - 1].lstrip())
        ]
        lines.insert(finding.line - 1, f"{indent}# repro-lint: disable-next={code}")
    suppressed = lint_source("\n".join(lines) + "\n", path)
    assert not [f for f in suppressed if f.code == code], (
        f"disable-next pragma did not suppress {code}"
    )
    return findings


# ----------------------------------------------------------------------
# RPL1xx — layer contracts
# ----------------------------------------------------------------------
def test_rpl101_upward_module_import():
    findings = assert_fires(
        "from repro.parallel.executor import ShardedOracleExecutor\n",
        "src/repro/influence/fixture.py",
        "RPL101",
    )
    assert "upward" in findings[0].message


def test_rpl101_cross_layer_import():
    findings = assert_fires(
        "import repro.submodular.sieve\n",
        "src/repro/influence/fixture.py",
        "RPL101",
    )
    assert "cross-layer" in findings[0].message


def test_rpl101_downward_import_allowed():
    assert not _lint(
        "from repro.kernels import TraversalKernel\n",
        "src/repro/parallel/fixture.py",
    )


def test_rpl101_intra_package_import_allowed():
    assert not _lint(
        "from repro.influence.oracle import InfluenceOracle\n",
        "src/repro/influence/fixture.py",
    )


def test_rpl102_lazy_upward_import():
    assert_fires(
        """
        def build():
            from repro.parallel.executor import ShardedOracleExecutor

            return ShardedOracleExecutor(2)
        """,
        "src/repro/influence/fixture.py",
        "RPL102",
    )


def test_rpl104_unplaced_module():
    assert_fires(
        "import repro.widgets\n",
        "src/repro/core/fixture.py",
        "RPL104",
    )


def test_rpl105_internal_import_from_example():
    findings = assert_fires(
        "from repro.tdn.graph import TDNGraph\n",
        "examples/fixture.py",
        "RPL105",
    )
    assert "facade-only" in findings[0].message


def test_rpl105_internal_import_from_integration_test():
    assert_fires(
        "import repro.parallel.executor\n",
        "tests/integration/fixture.py",
        "RPL105",
    )


def test_rpl105_facade_imports_allowed():
    assert not _lint(
        """
        import repro
        from repro import open_tracker
        from repro.api import Semantics
        from repro.errors import SemanticsError
        """,
        "examples/fixture.py",
    )


def test_rpl105_scope_is_path_keyed():
    # The same internal import outside the facade-only trees is governed
    # by the layer DAG, not RPL105.
    findings = _lint(
        "from repro.tdn.graph import TDNGraph\n",
        "tests/core/fixture.py",
    )
    assert not [f for f in findings if f.code == "RPL105"]


def test_rpl103_traversal_loop_outside_kernel():
    source = """
    def sweep(indptr, indices, n):
        out = []
        for u in range(n):
            for j in range(indptr[u], indptr[u + 1]):
                out.append(indices[j])
        return out
    """
    findings = assert_fires(source, "src/repro/tdn/fixture.py", "RPL103")
    # Outer loop owns the finding; the inner loop is not double-counted.
    assert len(findings) == 1


def test_rpl103_exempt_in_owner_file():
    source = """
    def sweep(indptr, indices, n):
        out = []
        for u in range(n):
            for j in range(indptr[u], indptr[u + 1]):
                out.append(indices[j])
        return out
    """
    assert not _lint(source, "src/repro/kernels/traversal.py")


def test_rpl103_exempt_in_native_twin():
    # The jitted twin owns traversal shapes too — RPL106 polices it.
    source = """
    from numba import njit


    @njit(nogil=True, cache=True)
    def sweep(indptr, indices, visit, stamp, n):
        count = 0
        for u in range(n):
            for j in range(indptr[u], indptr[u + 1]):
                if visit[indices[j]] != stamp:
                    count += 1
        return count
    """
    assert not _lint(source, "src/repro/kernels/native.py")


def test_rpl106_undecorated_function_in_native_module():
    findings = assert_fires(
        """
        def helper(values):
            return values[0]
        """,
        "src/repro/kernels/native.py",
        "RPL106",
    )
    assert "not @njit-decorated" in findings[0].message


def test_rpl106_dict_in_native_module():
    assert_fires(
        """
        from numba import njit


        @njit(nogil=True)
        def bad(frontier):
            seen = {}
            return seen
        """,
        "src/repro/kernels/native.py",
        "RPL106",
    )


def test_rpl106_fstring_in_native_module():
    assert_fires(
        """
        from numba import njit


        @njit(nogil=True)
        def bad(count):
            label = f"reached {count}"
            return label
        """,
        "src/repro/kernels/native.py",
        "RPL106",
    )


def test_rpl106_str_builtin_in_native_module():
    assert_fires(
        """
        from numba import njit


        @njit(nogil=True)
        def bad(count):
            return str(count)
        """,
        "src/repro/kernels/native.py",
        "RPL106",
    )


def test_rpl106_closure_in_native_module():
    assert_fires(
        """
        from numba import njit


        @njit(nogil=True)
        def outer(values):
            def successor(i):
                return values[i]

            return successor(0)
        """,
        "src/repro/kernels/native.py",
        "RPL106",
    )


def test_rpl106_foreign_import_in_native_module():
    findings = assert_fires(
        """
        import os
        """,
        "src/repro/kernels/native.py",
        "RPL106",
    )
    assert "import surface" in findings[0].message


def test_rpl106_native_import_outside_dispatch():
    findings = assert_fires(
        """
        from repro.kernels import native
        """,
        "src/repro/tdn/fixture.py",
        "RPL106",
    )
    assert "dispatch layer" in findings[0].message


def test_rpl106_direct_native_import_outside_dispatch():
    assert_fires(
        """
        import repro.kernels.native
        """,
        "src/repro/tdn/fixture.py",
        "RPL106",
    )


def test_rpl106_dispatch_layer_may_import_native():
    assert not _lint(
        """
        from repro.kernels import native
        """,
        "src/repro/kernels/backend.py",
    )


def test_rpl106_clean_jitted_function_passes():
    assert not _lint(
        """
        import numpy as np
        from numba import njit


        @njit(nogil=True, cache=True)
        def fixpoint(indptr, indices, frontier, visit, stamp):
            count = frontier.shape[0]
            head = 0
            while head < count:
                node = frontier[head]
                head += 1
                for slot in range(indptr[node], indptr[node + 1]):
                    succ = indices[slot]
                    if visit[succ] != stamp:
                        visit[succ] = np.int64(stamp)
                        count += 1
            return count
        """,
        "src/repro/kernels/native.py",
    )


# ----------------------------------------------------------------------
# RPL2xx — shared-memory lifecycle
# ----------------------------------------------------------------------
def test_rpl201_create_without_unlink():
    assert_fires(
        """
        from multiprocessing.shared_memory import SharedMemory


        class Owner:
            def __init__(self):
                self.seg = SharedMemory(create=True, size=64)

            def close(self):
                self.seg.close()
        """,
        "src/repro/parallel/fixture.py",
        "RPL201",
    )


def test_rpl201_owner_with_unlink_passes():
    assert not _lint(
        """
        from multiprocessing.shared_memory import SharedMemory


        class Owner:
            def __init__(self):
                self.seg = SharedMemory(create=True, size=64)

            def close(self):
                self.seg.close()
                self.seg.unlink()
        """,
        "src/repro/parallel/fixture.py",
    )


def test_rpl201_inline_probe_passes():
    assert not _lint(
        """
        from multiprocessing.shared_memory import SharedMemory


        def probe():
            seg = SharedMemory(create=True, size=16)
            seg.close()
            seg.unlink()
            return True
        """,
        "src/repro/parallel/fixture.py",
    )


def test_rpl202_attach_without_close():
    assert_fires(
        """
        from multiprocessing.shared_memory import SharedMemory


        class Attacher:
            def __init__(self, name):
                self.seg = SharedMemory(name=name)
        """,
        "src/repro/parallel/fixture.py",
        "RPL202",
    )


def test_rpl203_segment_name_literal():
    assert_fires(
        'NAME = "plane-hdr"\n',
        "src/repro/parallel/fixture.py",
        "RPL203",
    )


def test_rpl203_fstring_stem():
    assert_fires(
        """
        def name_for(prefix, seq):
            return f"{prefix}-w{seq}"
        """,
        "src/repro/parallel/fixture.py",
        "RPL203",
    )


def test_rpl203_exempt_in_plane():
    assert not _lint(
        """
        def name_for(prefix, seq):
            return f"{prefix}-w{seq}"
        """,
        "src/repro/parallel/plane.py",
    )


def test_rpl203_docstrings_skipped():
    assert not _lint(
        '"""Segments are named {prefix}-hdr and {prefix}-g1-ip."""\n',
        "src/repro/parallel/fixture.py",
    )


# ----------------------------------------------------------------------
# RPL3xx — concurrency hazards
# ----------------------------------------------------------------------
def test_rpl301_time_sleep_in_async():
    assert_fires(
        """
        import time


        async def poll():
            time.sleep(1.0)
        """,
        "src/repro/parallel/fixture.py",
        "RPL301",
    )


def test_rpl301_blocking_shutdown_in_async():
    assert_fires(
        """
        async def close(pool):
            pool.shutdown(wait=True)
        """,
        "src/repro/parallel/fixture.py",
        "RPL301",
    )


def test_rpl301_awaited_join_is_fine():
    assert not _lint(
        """
        async def drain(queue):
            await queue.join()
        """,
        "src/repro/parallel/fixture.py",
    )


def test_rpl301_sync_function_not_flagged():
    assert not _lint(
        """
        import time


        def poll():
            time.sleep(1.0)
        """,
        "src/repro/parallel/fixture.py",
    )


def test_rpl301_nested_def_not_flagged():
    assert not _lint(
        """
        import time


        async def outer():
            def helper():
                time.sleep(1.0)

            return helper
        """,
        "src/repro/parallel/fixture.py",
    )


def test_rpl302_fork_context():
    assert_fires(
        """
        import multiprocessing


        def make_pool():
            return multiprocessing.get_context("fork")
        """,
        "src/repro/parallel/fixture.py",
        "RPL302",
    )


def test_rpl302_spawn_passes():
    assert not _lint(
        """
        import multiprocessing


        def make_pool():
            return multiprocessing.get_context("spawn")
        """,
        "src/repro/parallel/fixture.py",
    )


def test_rpl303_write_outside_writers():
    assert_fires(
        """
        from repro.parallel.markers import published_plane


        @published_plane("indptr", writers=("__init__",))
        class Engine:
            def __init__(self, indptr):
                self.indptr = indptr

            def clobber(self):
                self.indptr[0] = 7
        """,
        "src/repro/parallel/fixture.py",
        "RPL303",
    )


def test_rpl303_declared_writer_passes():
    assert not _lint(
        """
        from repro.parallel.markers import published_plane


        @published_plane("weights", writers=("__init__", "detach"))
        class Attachment:
            def __init__(self, weights):
                self.weights = weights

            def detach(self):
                self.weights = None
        """,
        "src/repro/parallel/fixture.py",
    )


def test_rpl304_swallowed_broad_except():
    assert_fires(
        """
        def teardown(queue):
            try:
                queue.close()
            except Exception:
                pass
        """,
        "src/repro/parallel/fixture.py",
        "RPL304",
    )


def test_rpl304_bare_except():
    assert_fires(
        """
        def teardown(queue):
            try:
                queue.close()
            except:
                queue = None
        """,
        "src/repro/parallel/fixture.py",
        "RPL304",
    )


def test_rpl304_reraise_passes():
    assert not _lint(
        """
        def forward(queue):
            try:
                queue.close()
            except Exception:
                queue.cancel_join_thread()
                raise
        """,
        "src/repro/parallel/fixture.py",
    )


def test_rpl304_degradation_record_passes():
    assert not _lint(
        """
        def degrade_on_failure(ladder, reason, queue):
            try:
                queue.close()
            except Exception:
                ladder.degrade(reason, "queue close failed")
        """,
        "src/repro/parallel/fixture.py",
    )


def test_rpl304_used_exception_passes():
    assert not _lint(
        """
        def record(self, queue):
            try:
                queue.close()
            except BaseException as exc:
                self._failure = exc
        """,
        "src/repro/parallel/fixture.py",
    )


def test_rpl304_narrow_type_passes():
    assert not _lint(
        """
        def drain(queue):
            try:
                queue.get_nowait()
            except (OSError, ValueError):
                pass
        """,
        "src/repro/parallel/fixture.py",
    )


def test_rpl304_out_of_scope_path_not_flagged():
    assert not _lint(
        """
        def teardown(queue):
            try:
                queue.close()
            except Exception:
                pass
        """,
        "src/repro/core/fixture.py",
    )


# ----------------------------------------------------------------------
# RPL4xx — determinism
# ----------------------------------------------------------------------
def test_rpl401_float_fold_over_set():
    assert_fires(
        """
        def total(weight_of, nodes: set):
            value = 0.0
            for node in nodes:
                value += weight_of(node)
            return value
        """,
        "src/repro/influence/fixture.py",
        "RPL401",
    )


def test_rpl401_sorted_fold_passes():
    assert not _lint(
        """
        def total(weight_of, nodes: set):
            value = 0.0
            for node in sorted(nodes):
                value += weight_of(node)
            return value
        """,
        "src/repro/influence/fixture.py",
    )


def test_rpl401_commutative_sink_passes():
    assert not _lint(
        """
        def union(groups: set, members_of):
            out = set()
            for group in groups:
                out.update(members_of(group))
            return out
        """,
        "src/repro/influence/fixture.py",
    )


def test_rpl401_listcomp_over_set():
    assert_fires(
        """
        def order(nodes: frozenset):
            return [n for n in nodes]
        """,
        "src/repro/influence/fixture.py",
        "RPL401",
    )


def test_rpl401_sum_genexp_over_set_returning_call():
    assert_fires(
        """
        from repro.influence.reachability import reachable_set


        def spread(graph, seeds, weight_of):
            return sum(weight_of(n) for n in reachable_set(graph, seeds, None))
        """,
        "src/repro/influence/fixture.py",
        "RPL401",
    )


def test_rpl401_out_of_scope_path_not_flagged():
    assert not _lint(
        """
        def order(nodes: frozenset):
            return [n for n in nodes]
        """,
        "src/repro/analysis/fixture.py",
    )


def test_rpl402_numpy_random():
    assert_fires(
        """
        import numpy as np


        def probe():
            return np.random.default_rng(7)
        """,
        "src/repro/tdn/fixture.py",
        "RPL402",
    )


def test_rpl402_import_random():
    assert_fires(
        "import random\n",
        "src/repro/core/fixture.py",
        "RPL402",
    )


def test_rpl402_exempt_in_rng_owner():
    assert not _lint(
        "import random\n",
        "src/repro/utils/rng.py",
    )


# ----------------------------------------------------------------------
# RPL5xx — observability
# ----------------------------------------------------------------------
def test_rpl501_inline_metric_name():
    findings = assert_fires(
        """
        from repro.obs.registry import metrics_registry

        hits = metrics_registry().counter("repro_memo_hits_total")
        """,
        "src/repro/influence/fixture.py",
        "RPL501",
    )
    assert "non-constant metric name" in findings[0].message


def test_rpl501_fstring_metric_name():
    assert_fires(
        """
        from repro.obs.registry import metrics_registry

        def series_for(shard: int):
            return metrics_registry().gauge(f"repro_shard_{shard}_depth")
        """,
        "src/repro/parallel/fixture.py",
        "RPL501",
    )


def test_rpl501_constant_names_pass():
    assert not _lint(
        """
        from repro.obs import names as metric_names
        from repro.obs.registry import metrics_registry

        MY_SERIES = "repro_my_series_total"

        a = metrics_registry().counter(MY_SERIES)
        b = metrics_registry().histogram(metric_names.ORACLE_CONE_SIZE_NODES)
        """,
        "src/repro/influence/fixture.py",
    )


def test_rpl501_runtime_register():
    assert_fires(
        """
        from repro.obs.names import MetricSpec
        from repro.obs.registry import metrics_registry

        def lazy_register():
            spec = MetricSpec("repro_late_total", "counter", "late", None)
            metrics_registry().register(spec)
        """,
        "src/repro/influence/fixture.py",
        "RPL501",
    )


def test_rpl501_instrument_call_in_traversal_loop():
    assert_fires(
        """
        from repro.obs import names as metric_names
        from repro.obs.registry import metrics_registry

        SWEEPS = metrics_registry().counter(metric_names.KERNEL_SWEEPS_TOTAL)

        def sweep(frontiers):
            for frontier in frontiers:
                SWEEPS.inc()
        """,
        "src/repro/kernels/traversal.py",
        "RPL501",
    )


def test_rpl501_sampled_record_hook_allowed_in_traversal_loop():
    assert not _lint(
        """
        def sweep(frontiers, sampler):
            for frontier in frontiers:
                if sampler is not None:
                    sampler.record("reach", 1, len(frontier))
        """,
        "src/repro/kernels/traversal.py",
    )


def test_rpl501_instrument_call_outside_loop_allowed_elsewhere():
    # Other modules may touch instruments inside loops (e.g. the ingest
    # service); only the traversal kernel owner is loop-restricted.
    assert not _lint(
        """
        from repro.obs import names as metric_names
        from repro.obs.registry import metrics_registry

        DEPTH = metrics_registry().gauge(metric_names.INGEST_QUEUE_DEPTH)

        def drain(batches):
            for batch in batches:
                DEPTH.set(len(batch))
        """,
        "src/repro/parallel/fixture.py",
    )


def test_rpl501_exempt_in_obs_owner():
    assert not _lint(
        """
        def counter(self, name):
            return self._instruments[name]

        def register(self, spec):
            self._do_register(spec)

        def lookup(registry, name):
            return registry.counter(name)
        """,
        "src/repro/obs/registry.py",
    )


# ----------------------------------------------------------------------
# Internal + meta
# ----------------------------------------------------------------------
def test_rpl001_unparseable():
    findings = _lint("def broken(:\n", "src/repro/core/fixture.py")
    assert [f.code for f in findings] == ["RPL001"]


def test_same_line_pragma():
    source = 'import random  # repro-lint: disable=RPL402\n'
    assert not _lint(source, "src/repro/core/fixture.py")


@pytest.mark.parametrize("code", sorted(set(CODES) - {"RPL001"}))
def test_every_code_is_exercised(code):
    """Every documented code has a fixture above that proves it fires.

    The per-code tests each call ``assert_fires`` with their code; this
    meta-test just pins the registry so adding a code without a fixture
    fails loudly (the module source must mention the code in a test).
    """
    import pathlib

    module_source = pathlib.Path(__file__).read_text(encoding="utf-8")
    assert f'"{code}"' in module_source or f"'{code}'" in module_source
