"""Baseline semantics, CLI behaviour, and the no-drift meta-test."""

from __future__ import annotations

import json
import pathlib

from repro.lint import lint_paths, load_baseline, write_baseline
from repro.lint.baseline import partition
from repro.lint.findings import CODES, Finding
from repro.lint.runner import main

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

_BAD = "import random\n"
_BAD_PATH = "src/repro/core/fixture.py"


def _bad_tree(tmp_path: pathlib.Path) -> pathlib.Path:
    target = tmp_path / _BAD_PATH
    target.parent.mkdir(parents=True)
    target.write_text(_BAD, encoding="utf-8")
    return target


# ----------------------------------------------------------------------
# Baseline round trip
# ----------------------------------------------------------------------
def test_baseline_round_trip(tmp_path):
    finding = Finding("src/repro/core/x.py", 3, "RPL402", "random use")
    baseline_file = tmp_path / "baseline.txt"
    write_baseline(str(baseline_file), [finding])
    loaded = load_baseline(str(baseline_file))
    assert loaded == {finding.fingerprint()}
    # Comment lines in the written file are ignored on load.
    assert baseline_file.read_text().startswith("#")


def test_partition_suppresses_and_reports_stale():
    live = Finding("a.py", 1, "RPL402", "m")
    fresh = Finding("b.py", 2, "RPL401", "n")
    gone_fingerprint = "RPL203|c.py|old"
    baseline = {live.fingerprint(), gone_fingerprint}
    new, grandfathered, stale = partition([live, fresh], baseline)
    assert new == [fresh]
    assert grandfathered == [live]
    assert stale == [gone_fingerprint]


def test_baseline_is_line_number_free():
    moved = Finding("a.py", 99, "RPL402", "m")
    baseline = {Finding("a.py", 1, "RPL402", "m").fingerprint()}
    new, grandfathered, stale = partition([moved], baseline)
    assert not new and not stale and grandfathered == [moved]


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(str(tmp_path / "nope.txt")) == set()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_exit_codes(tmp_path, capsys):
    target = _bad_tree(tmp_path)
    baseline = tmp_path / "baseline.txt"
    assert main([str(target), "--baseline", str(baseline)]) == 1
    out = capsys.readouterr().out
    assert "RPL402" in out and "1 problem(s)" in out

    # Grandfather it, then the same run is clean...
    assert main([str(target), "--baseline", str(baseline), "--write-baseline"]) == 0
    assert main([str(target), "--baseline", str(baseline)]) == 0
    # ...but --no-baseline still reports it.
    assert main([str(target), "--baseline", str(baseline), "--no-baseline"]) == 1


def test_cli_stale_baseline_entry_fails(tmp_path, capsys):
    target = _bad_tree(tmp_path)
    baseline = tmp_path / "baseline.txt"
    main([str(target), "--baseline", str(baseline), "--write-baseline"])
    capsys.readouterr()
    target.write_text("x = 1\n", encoding="utf-8")  # fix lands
    assert main([str(target), "--baseline", str(baseline)]) == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_cli_json_output(tmp_path, capsys):
    target = _bad_tree(tmp_path)
    code = main([str(target), "--format", "json", "--no-baseline"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["stale_baseline"] == []
    assert payload["baselined"] == []
    [finding] = payload["findings"]
    assert finding["code"] == "RPL402"
    assert finding["path"].endswith("fixture.py")
    assert finding["line"] == 1


def test_cli_list_codes(capsys):
    assert main(["--list-codes"]) == 0
    out = capsys.readouterr().out
    for code in CODES:
        assert code in out


# ----------------------------------------------------------------------
# No drift: the committed baseline matches a fresh run over src/
# ----------------------------------------------------------------------
def test_checked_in_baseline_matches_fresh_run():
    """CI's gate, as a test: src lints clean against the committed baseline.

    Any new finding (or any stale grandfathered entry) fails here first,
    with the same fingerprints the CLI would print.
    """
    findings = lint_paths([str(REPO_ROOT / "src")])
    baseline = load_baseline(str(REPO_ROOT / "lint-baseline.txt"))
    normalized = [
        Finding(
            str(pathlib.Path(f.path).relative_to(REPO_ROOT)),
            f.line,
            f.code,
            f.message,
        )
        for f in findings
    ]
    new, _, stale = partition(normalized, baseline)
    assert not new, "new findings: " + "; ".join(f.render() for f in new)
    assert not stale, "stale baseline entries: " + "; ".join(stale)
