"""Deprecation shims: each legacy spelling warns exactly once.

Two historical spellings survive behind :func:`repro.utils.deprecation.
warn_once` (the stdlib ``"once"`` filter is unreliable under pytest's
filter resets, so the library keys warnings itself):

* positional oracle configuration —
  ``InfluenceOracle(graph, counter, 1000, "csr", "delta")``; and
* importing ``WeightedInfluenceOracle`` from the bare ``repro`` package
  (the facade spelling is ``open_tracker(semantics=Semantics.
  WEIGHTED_SUM, weights=...)``).

Both still *work* — values, types and behavior unchanged — they just
announce themselves, once per process, never per call site.
"""

import warnings

import pytest

import repro
from repro.errors import ConfigError
from repro.influence.oracle import InfluenceOracle
from repro.tdn.graph import TDNGraph
from repro.utils.deprecation import reset_warned_keys, warn_once


@pytest.fixture(autouse=True)
def fresh_warning_state():
    reset_warned_keys()
    yield
    reset_warned_keys()


def collect(func):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = func()
    return result, [w for w in caught if w.category is DeprecationWarning]


class TestWarnOnce:
    def test_second_emission_is_suppressed(self):
        _, first = collect(lambda: warn_once("test-key", "legacy spelling"))
        _, second = collect(lambda: warn_once("test-key", "legacy spelling"))
        assert len(first) == 1 and "legacy spelling" in str(first[0].message)
        assert second == []

    def test_keys_are_independent(self):
        collect(lambda: warn_once("key-a", "a"))
        _, caught = collect(lambda: warn_once("key-b", "b"))
        assert len(caught) == 1


class TestPositionalOracleConfig:
    def test_warns_exactly_once_and_still_configures(self):
        graph = TDNGraph()
        oracle, first = collect(
            lambda: InfluenceOracle(graph, None, 1000, "csr", "version")
        )
        assert len(first) == 1
        assert "positionally" in str(first[0].message)
        # The legacy positions still land on the right knobs.
        assert oracle.max_cache_entries == 1000
        assert oracle.backend == "csr"
        assert oracle.memo_mode == "version"

        _, second = collect(lambda: InfluenceOracle(graph, None, 500))
        assert second == []  # once per process, not per call

    def test_keyword_spelling_never_warns(self):
        _, caught = collect(
            lambda: InfluenceOracle(TDNGraph(), max_cache_entries=1000)
        )
        assert caught == []

    def test_too_many_positionals_rejected(self):
        with pytest.warns(DeprecationWarning), pytest.raises(ConfigError):
            InfluenceOracle(TDNGraph(), None, 1000, "csr", "delta", "extra")


class TestRootWeightedOracleImport:
    def test_warns_exactly_once_and_returns_the_class(self):
        from repro.influence.weighted import WeightedInfluenceOracle

        cls, first = collect(lambda: repro.WeightedInfluenceOracle)
        assert cls is WeightedInfluenceOracle
        assert len(first) == 1
        assert "open_tracker" in str(first[0].message)

        _, second = collect(lambda: repro.WeightedInfluenceOracle)
        assert second == []

    def test_stays_in_the_advertised_namespace(self):
        assert "WeightedInfluenceOracle" in repro.__all__

    def test_unknown_attributes_still_raise(self):
        with pytest.raises(AttributeError):
            repro.NoSuchThing
