"""Unit tests for the InfluenceTracker facade and Solution type."""

import pytest

from repro.core.tracker import InfluenceTracker, Solution
from repro.tdn.interaction import Interaction
from repro.tdn.lifetimes import ConstantLifetime, GeometricLifetime
from repro.tdn.stream import MemoryStream


class TestSolution:
    def test_empty(self):
        solution = Solution.empty(7)
        assert solution.nodes == ()
        assert solution.value == 0.0
        assert solution.time == 7

    def test_frozen(self):
        solution = Solution(nodes=("a",), value=1.0, time=0)
        with pytest.raises(AttributeError):
            solution.value = 2.0


class TestStep:
    def test_tuples_coerced(self):
        tracker = InfluenceTracker("sieve-adn", k=2, epsilon=0.2)
        solution = tracker.step(0, [("a", "b"), ("a", "c", 5)])
        assert "a" in solution.nodes
        assert solution.value == 3.0

    def test_interactions_accepted(self):
        tracker = InfluenceTracker("sieve-adn", k=1, epsilon=0.2)
        solution = tracker.step(0, [Interaction("a", "b", 0)])
        assert solution.nodes == ("a",)

    def test_bad_item_rejected(self):
        tracker = InfluenceTracker("sieve-adn", k=1, epsilon=0.2)
        with pytest.raises(TypeError, match="interaction"):
            tracker.step(0, ["nonsense"])

    def test_non_increasing_time_rejected(self):
        tracker = InfluenceTracker("sieve-adn", k=1, epsilon=0.2)
        tracker.step(1, [("a", "b")])
        with pytest.raises(ValueError, match="strictly increasing"):
            tracker.step(1, [("a", "c")])

    def test_lifetime_policy_applied(self):
        tracker = InfluenceTracker(
            "hist-approx", k=1, epsilon=0.2, lifetime_policy=ConstantLifetime(2)
        )
        tracker.step(0, [("a", "b")])
        tracker.step(1, [])
        assert tracker.query().value == 2.0
        tracker.step(2, [])  # the edge expires at t=2
        assert tracker.query().value == 0.0

    def test_explicit_lifetime_overrides_policy(self):
        tracker = InfluenceTracker(
            "hist-approx", k=1, epsilon=0.2, lifetime_policy=ConstantLifetime(1)
        )
        tracker.step(0, [("a", "b", 10)])
        tracker.step(5, [])
        assert tracker.query().value == 2.0


class TestAlgorithmSelection:
    @pytest.mark.parametrize(
        "name",
        ["hist-approx", "sieve-adn", "greedy", "random", "HIST_APPROX", "SieveADN"],
    )
    def test_known_names(self, name):
        tracker = InfluenceTracker(name, k=1, epsilon=0.2)
        tracker.step(0, [("a", "b")])
        assert tracker.query().value >= 1.0

    def test_basic_reduction_requires_L(self):
        with pytest.raises(ValueError, match="L"):
            InfluenceTracker("basic-reduction", k=1, epsilon=0.2)

    def test_basic_reduction_with_L(self):
        tracker = InfluenceTracker(
            "basic-reduction", k=1, epsilon=0.2, L=5,
            lifetime_policy=ConstantLifetime(3),
        )
        solution = tracker.step(0, [("a", "b")])
        assert solution.nodes == ("a",)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            InfluenceTracker("quantum-sieve")

    def test_factory_callable(self):
        from repro.core.sieve_adn import SieveADN

        tracker = InfluenceTracker(
            lambda graph, oracle: SieveADN(1, 0.2, graph, oracle)
        )
        solution = tracker.step(0, [("a", "b")])
        assert solution.nodes == ("a",)


class TestRun:
    def test_run_over_stream(self):
        events = [Interaction("a", "b", 0), Interaction("a", "c", 1)]
        tracker = InfluenceTracker("hist-approx", k=1, epsilon=0.2)
        results = list(tracker.run(MemoryStream(events)))
        assert [t for t, _ in results] == [0, 1]
        assert results[-1][1].value == 3.0

    def test_oracle_calls_exposed(self):
        tracker = InfluenceTracker("hist-approx", k=1, epsilon=0.2)
        tracker.step(0, [("a", "b")])
        assert tracker.oracle_calls > 0

    def test_geometric_policy_end_to_end(self):
        tracker = InfluenceTracker(
            "hist-approx", k=2, epsilon=0.2,
            lifetime_policy=GeometricLifetime(0.2, 20, seed=3),
        )
        for t in range(10):
            tracker.step(t, [(f"s{t % 3}", f"t{t}")])
        assert len(tracker.query().nodes) <= 2
