"""Unit and behavioural tests for BASICREDUCTION (paper Alg. 2)."""

import random

import pytest

from repro.core.basic_reduction import BasicReduction
from repro.influence.oracle import InfluenceOracle
from repro.submodular.functions import SpreadFunction
from repro.submodular.greedy import brute_force_optimum
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.tdn.stream import MemoryStream


def drive(events, k=2, epsilon=0.1, L=6, check=None):
    graph = TDNGraph()
    basic = BasicReduction(k, epsilon, L, graph)
    for t, batch in MemoryStream(events, fill_gaps=True):
        graph.advance_to(t)
        graph.add_batch(batch)
        basic.on_batch(t, batch)
        if check is not None:
            check(graph, basic, t)
    return graph, basic


class TestInstanceBookkeeping:
    def test_maintains_L_instances(self):
        events = [Interaction("a", "b", 0, 3)]
        _, basic = drive(events, L=5)
        assert basic.num_instances == 5

    def test_horizons_contiguous(self):
        events = [Interaction("a", "b", 0, 3), Interaction("b", "c", 2, 4)]
        graph, basic = drive(events, L=5)
        t = graph.time
        assert basic.horizons() == list(range(t + 1, t + 6))

    def test_time_gap_rebuilds_instances(self):
        graph = TDNGraph()
        basic = BasicReduction(2, 0.1, 4, graph)
        graph.advance_to(0)
        batch0 = [Interaction("a", "b", 0, 4)]
        graph.add_batch(batch0)
        basic.on_batch(0, batch0)
        graph.advance_to(10)  # long quiet gap
        batch1 = [Interaction("c", "d", 10, 2)]
        graph.add_batch(batch1)
        basic.on_batch(10, batch1)
        assert basic.horizons() == [11, 12, 13, 14]

    def test_lifetime_above_L_rejected(self):
        graph = TDNGraph()
        basic = BasicReduction(2, 0.1, 3, graph)
        graph.advance_to(0)
        batch = [Interaction("a", "b", 0, 9)]
        graph.add_batch(batch)
        with pytest.raises(ValueError, match="lifetimes in"):
            basic.on_batch(0, batch)

    def test_infinite_lifetime_rejected(self):
        graph = TDNGraph()
        basic = BasicReduction(2, 0.1, 3, graph)
        graph.advance_to(0)
        batch = [Interaction("a", "b", 0)]
        graph.add_batch(batch)
        with pytest.raises(ValueError):
            basic.on_batch(0, batch)


class TestPaperExample6:
    """The worked example of Section III-B: who processes which edges."""

    def test_head_instance_sees_all_alive_edges(self):
        """A_1 at any t processed exactly the edges alive at t.

        Verified indirectly: the head's evaluation horizon t+1 admits every
        alive edge, and feeding follows expiry >= horizon, so the head's
        subgraph equals G_t.  Here we check the solution value equals the
        value computed on the full alive graph for a hand-built trace.
        """
        edges_t = [
            ("u1", "u2", 1), ("u1", "u3", 1), ("u1", "u4", 2),
            ("u5", "u3", 3), ("u6", "u4", 1), ("u6", "u7", 1),
        ]
        edges_t1 = [("u5", "u2", 1), ("u7", "u4", 2), ("u7", "u6", 3)]
        events = [Interaction(u, v, 0, lt) for u, v, lt in edges_t]
        events += [Interaction(u, v, 1, lt) for u, v, lt in edges_t1]
        graph, basic = drive(events, k=2, L=3)
        solution = basic.query()
        # At t=1 the alive graph is {u1->u4, u5->u3, u5->u2, u7->u4, u7->u6};
        # the best pair {u5, u7} covers {u5,u3,u2,u7,u4,u6} = 6 nodes, as in
        # the paper's Fig. 2 annotation (influential nodes {u5, u7}).
        assert solution.value == 6.0
        assert set(solution.nodes) == {"u5", "u7"}


class TestApproximationGuarantee:
    def test_half_minus_eps_on_random_tdns(self):
        """Theorem 4: (1/2 - eps) OPT on general TDNs, at every step."""
        rng = random.Random(7)
        k, eps, L = 2, 0.1, 5

        def check(graph, basic, t):
            oracle = InfluenceOracle(graph)
            optimum = brute_force_optimum(
                SpreadFunction(oracle), sorted(graph.node_set(), key=repr), k
            )
            if optimum.value > 0:
                assert basic.query().value >= (0.5 - eps) * optimum.value - 1e-9

        for _ in range(15):
            events = []
            for t in range(10):
                for _ in range(rng.randint(1, 3)):
                    u, v = rng.randrange(6), rng.randrange(6)
                    if u != v:
                        events.append(
                            Interaction(f"n{u}", f"n{v}", t, rng.randint(1, L))
                        )
            drive(events, k=k, epsilon=eps, L=L, check=check)


class TestQueries:
    def test_query_before_any_batch(self):
        graph = TDNGraph()
        basic = BasicReduction(2, 0.1, 4, graph)
        assert basic.query().value == 0.0

    def test_query_after_everything_expired(self):
        events = [Interaction("a", "b", 0, 1)]
        graph, basic = drive(events, L=3)
        graph.advance_to(5)
        assert basic.query().value == 0.0

    def test_solution_tracks_decay(self):
        """Influence shifts to the longer-lived hub as the short one dies."""
        events = [Interaction("big", f"x{i}", 0, 1) for i in range(5)]
        events += [Interaction("small", f"y{i}", 0, 3) for i in range(2)]
        events += [Interaction("probe", "z", 1, 1)]
        graph = TDNGraph()
        basic = BasicReduction(1, 0.1, 3, graph)
        for t, batch in MemoryStream(events, fill_gaps=True):
            graph.advance_to(t)
            graph.add_batch(batch)
            basic.on_batch(t, batch)
            if t == 0:
                assert basic.query().nodes == ("big",)
        # At t=1 the big star expired; small (alive until 3) must win.
        assert basic.query().nodes == ("small",)
