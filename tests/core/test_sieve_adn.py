"""Unit and behavioural tests for SIEVEADN (paper Alg. 1)."""

import random

from repro.core.sieve_adn import SieveADN
from repro.influence.oracle import InfluenceOracle
from repro.submodular.functions import SpreadFunction
from repro.submodular.greedy import brute_force_optimum
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


def feed(graph, sieve, t, batch):
    graph.advance_to(t)
    graph.add_batch(batch)
    sieve.on_batch(t, batch)


class TestBasicBehaviour:
    def test_single_edge_selects_source(self):
        graph = TDNGraph()
        sieve = SieveADN(k=2, epsilon=0.2, graph=graph)
        feed(graph, sieve, 0, [Interaction("a", "b", 0)])
        solution = sieve.query()
        assert "a" in solution.nodes
        assert solution.value == 2.0

    def test_empty_query(self):
        graph = TDNGraph()
        sieve = SieveADN(k=2, epsilon=0.2, graph=graph)
        assert sieve.query().value == 0.0

    def test_budget_respected(self):
        graph = TDNGraph()
        sieve = SieveADN(k=2, epsilon=0.2, graph=graph)
        batch = [Interaction(f"s{i}", f"t{i}", 0) for i in range(6)]
        feed(graph, sieve, 0, batch)
        assert len(sieve.query().nodes) <= 2

    def test_revisiting_node_can_be_admitted_later(self):
        """A node rejected early must be admissible once its gain grows."""
        graph = TDNGraph()
        sieve = SieveADN(k=1, epsilon=0.1, graph=graph)
        # Step 0: big star at h0 raises Delta high; x has tiny gain.
        batch0 = [Interaction("h0", f"a{i}", 0) for i in range(8)]
        batch0 += [Interaction("x", "y0", 0)]
        feed(graph, sieve, 0, batch0)
        # Step 1: x grows a bigger star; it reappears in the node stream
        # via its new edges and must now be able to displace nothing less
        # than a competitive set.
        batch1 = [Interaction("x", f"b{i}", 1) for i in range(20)]
        feed(graph, sieve, 1, batch1)
        assert sieve.query().nodes == ("x",)

    def test_query_time_recorded(self):
        graph = TDNGraph()
        sieve = SieveADN(k=1, epsilon=0.2, graph=graph)
        feed(graph, sieve, 3, [Interaction("a", "b", 3)])
        assert sieve.query().time == 3


class TestHorizonFiltering:
    def test_edges_below_horizon_ignored(self):
        graph = TDNGraph()
        sieve = SieveADN(k=1, epsilon=0.2, graph=graph, min_expiry=5)
        batch = [
            Interaction("short", "x", 0, 2),  # expiry 2 < 5: invisible
            Interaction("long", "y", 0, 9),  # expiry 9 >= 5
        ]
        feed(graph, sieve, 0, batch)
        solution = sieve.query()
        assert solution.nodes == ("long",)
        assert solution.value == 2.0

    def test_all_edges_below_horizon_is_noop(self):
        graph = TDNGraph()
        sieve = SieveADN(k=1, epsilon=0.2, graph=graph, min_expiry=100)
        feed(graph, sieve, 0, [Interaction("a", "b", 0, 3)])
        assert sieve.query().value == 0.0


class TestApproximationGuarantee:
    def test_half_minus_eps_on_random_adns(self):
        """Theorem 2: (1/2 - eps) OPT on addition-only streams."""
        rng = random.Random(42)
        k, eps = 2, 0.1
        for _ in range(20):
            graph = TDNGraph()
            sieve = SieveADN(k=k, epsilon=eps, graph=graph)
            for t in range(8):
                batch = []
                for _ in range(rng.randint(1, 3)):
                    u, v = rng.randrange(7), rng.randrange(7)
                    if u != v:
                        batch.append(Interaction(f"n{u}", f"n{v}", t))
                feed(graph, sieve, t, batch)
                oracle = InfluenceOracle(graph)
                optimum = brute_force_optimum(
                    SpreadFunction(oracle), sorted(graph.node_set(), key=repr), k
                )
                if optimum.value > 0:
                    assert sieve.query().value >= (0.5 - eps) * optimum.value - 1e-9


class TestCopy:
    def test_copy_is_deep_for_sieve_state(self):
        graph = TDNGraph()
        sieve = SieveADN(k=2, epsilon=0.2, graph=graph)
        feed(graph, sieve, 0, [Interaction("a", "b", 0)])
        dup = sieve.copy()
        feed(graph, dup, 1, [Interaction("c", "d", 1)])
        assert "c" not in sieve.query().nodes
        assert "c" in set(dup.query().nodes) | {None}  # dup saw the new edge

    def test_copy_rehomes_horizon(self):
        graph = TDNGraph()
        sieve = SieveADN(k=1, epsilon=0.2, graph=graph, min_expiry=10)
        dup = sieve.copy(min_expiry=3)
        assert dup.min_expiry == 3
        assert sieve.min_expiry == 10

    def test_copy_shares_graph_and_oracle(self):
        graph = TDNGraph()
        sieve = SieveADN(k=1, epsilon=0.2, graph=graph)
        dup = sieve.copy()
        assert dup.graph is graph
        assert dup.oracle is sieve.oracle


class TestCachedValueReadout:
    def test_cached_value_lower_bounds_true_value(self):
        graph = TDNGraph()
        sieve = SieveADN(k=2, epsilon=0.2, graph=graph)
        feed(graph, sieve, 0, [Interaction("a", "b", 0)])
        # Grow a's spread without re-offering a to the sieve: cached value
        # goes stale but must stay a lower bound.
        graph.advance_to(1)
        graph.add_interaction(Interaction("b", "c", 1))
        assert sieve.query_value_cached() <= sieve.query_value()

    def test_cached_value_zero_before_any_processing(self):
        graph = TDNGraph()
        sieve = SieveADN(k=2, epsilon=0.2, graph=graph)
        assert sieve.query_value_cached() == 0.0


class TestProcessCandidates:
    def test_direct_candidate_feed(self):
        graph = TDNGraph()
        graph.add_interaction(Interaction("a", "b", 0, 9))
        sieve = SieveADN(k=1, epsilon=0.2, graph=graph)
        sieve.process_candidates(["a"])
        assert sieve.query().nodes == ("a",)

    def test_empty_candidates_noop(self):
        graph = TDNGraph()
        sieve = SieveADN(k=1, epsilon=0.2, graph=graph)
        sieve.process_candidates([])
        assert sieve.query().value == 0.0
