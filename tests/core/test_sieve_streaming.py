"""Unit tests for generic insertion-only SieveStreaming."""

import random

from repro.core.sieve_streaming import SieveStreaming
from repro.submodular.functions import CoverageFunction
from repro.submodular.greedy import brute_force_optimum


class TestSieveStreaming:
    def test_approximation_guarantee_random_instances(self):
        """(1/2 - eps) guarantee against brute force on random coverage."""
        rng = random.Random(0)
        for _ in range(25):
            num_sets = rng.randint(3, 8)
            sets = [
                {rng.randrange(10) for _ in range(rng.randint(1, 4))}
                for _ in range(num_sets)
            ]
            cover = CoverageFunction(sets)
            universe = sorted({x for s in sets for x in s})
            k, eps = 2, 0.1
            sieve = SieveStreaming(cover, k=k, epsilon=eps)
            sieve.process_stream(universe)
            _, value = sieve.query()
            optimum = brute_force_optimum(cover, universe, k).value
            assert value >= (0.5 - eps) * optimum - 1e-9

    def test_single_element(self):
        cover = CoverageFunction([{1, 2, 3}])
        sieve = SieveStreaming(cover, k=1, epsilon=0.2)
        sieve.process(1)
        nodes, value = sieve.query()
        assert nodes == [1]
        assert value == 1.0

    def test_empty_query(self):
        cover = CoverageFunction([{1}])
        sieve = SieveStreaming(cover, k=1, epsilon=0.2)
        assert sieve.query() == ([], 0.0)

    def test_respects_budget(self):
        sets = [{i} for i in range(10)]
        cover = CoverageFunction(sets)
        sieve = SieveStreaming(cover, k=3, epsilon=0.1)
        sieve.process_stream(range(10))
        nodes, _ = sieve.query()
        assert len(nodes) <= 3

    def test_duplicate_elements_tolerated(self):
        cover = CoverageFunction([{1, 2}, {3}])
        sieve = SieveStreaming(cover, k=2, epsilon=0.1)
        sieve.process_stream([1, 1, 3, 3, 1])
        nodes, value = sieve.query()
        assert value == 2.0
        assert len(nodes) == len(set(nodes))

    def test_elements_seen_counter(self):
        cover = CoverageFunction([{1}])
        sieve = SieveStreaming(cover, k=1, epsilon=0.1)
        sieve.process_stream([1, 2, 3])
        assert sieve.elements_seen == 3
