"""Unit and behavioural tests for HISTAPPROX (paper Alg. 3)."""

import math
import random

from repro.core.basic_reduction import BasicReduction
from repro.core.hist_approx import HistApprox
from repro.influence.oracle import InfluenceOracle
from repro.submodular.functions import SpreadFunction
from repro.submodular.greedy import brute_force_optimum
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.tdn.stream import MemoryStream


def drive(events, k=2, epsilon=0.1, check=None, **kwargs):
    graph = TDNGraph()
    hist = HistApprox(k, epsilon, graph, **kwargs)
    for t, batch in MemoryStream(events, fill_gaps=True):
        graph.advance_to(t)
        graph.add_batch(batch)
        hist.on_batch(t, batch)
        if check is not None:
            check(graph, hist, t)
    return graph, hist


def random_events(rng, num_nodes=7, steps=10, max_lifetime=6):
    events = []
    for t in range(steps):
        for _ in range(rng.randint(1, 3)):
            u, v = rng.randrange(num_nodes), rng.randrange(num_nodes)
            if u != v:
                events.append(
                    Interaction(f"n{u}", f"n{v}", t, rng.randint(1, max_lifetime))
                )
    return events


class TestInstanceManagement:
    def test_instance_created_per_new_lifetime(self):
        events = [
            Interaction("a", "b", 0, 2),
            Interaction("c", "d", 0, 5),
        ]
        _, hist = drive(events)
        assert hist.horizons() == [2, 5]

    def test_existing_horizon_reused(self):
        events = [
            Interaction("a", "b", 0, 3),
            Interaction("c", "d", 0, 3),
        ]
        _, hist = drive(events)
        assert hist.horizons() == [3]

    def test_instances_expire_with_clock(self):
        events = [Interaction("a", "b", 0, 2), Interaction("c", "d", 0, 6)]
        graph, hist = drive(events)
        graph.advance_to(3)
        hist.on_batch(3, [])
        assert hist.horizons() == [6]

    def test_indices_are_relative_horizons(self):
        events = [Interaction("a", "b", 0, 4)]
        graph, hist = drive(events)
        assert hist.indices() == [4 - graph.time]

    def test_infinite_lifetime_owns_inf_horizon(self):
        events = [Interaction("a", "b", 0), Interaction("c", "d", 0, 3)]
        _, hist = drive(events)
        assert hist.horizons() == [3, math.inf]

    def test_infinite_horizon_instance_never_expires(self):
        events = [Interaction("a", "b", 0)]
        graph, hist = drive(events)
        graph.advance_to(1000)
        hist.on_batch(1000, [])
        assert hist.horizons() == [math.inf]
        assert hist.query().value == 2.0


class TestSuccessorCopyFill:
    def test_new_head_backfills_from_successor(self):
        """Fig. 6(c): a later, shorter lifetime copies its successor and is
        fed the alive edges in the gap."""
        events = [
            Interaction("long", "x", 0, 10),   # horizon 10 instance
            Interaction("mid", "y", 1, 5),     # expiry 6
            Interaction("short", "z", 2, 2),   # expiry 4 -> new horizon 4
        ]
        graph, hist = drive(events, k=3)
        # The horizon-4 instance must know about edges with expiry in [4,6)
        # (mid->y, expiry 6 >= 6? no: 6 is not < 6... check [4, 10): mid).
        # Its view (expiry >= 4) contains all three edges; after the fill it
        # must have had the chance to select all three sources.
        solution = hist.query()
        assert solution.value == 6.0
        assert set(solution.nodes) == {"long", "mid", "short"}

    def test_successorless_creation_starts_empty(self):
        """Fig. 6(b): the largest horizon tops every alive expiry, so a new
        max-horizon instance has nothing to backfill."""
        events = [
            Interaction("a", "b", 0, 2),
            Interaction("c", "d", 1, 9),  # horizon 10 > all previous expiries
        ]
        _, hist = drive(events)
        # The new horizon-10 instance sees only edges with expiry >= 10:
        # exactly the c->d edge.
        top = hist._instances[max(hist.horizons())]
        assert top.query().nodes == ("c",)


class TestRedundancyRemoval:
    def test_close_values_collapse(self):
        """Instances whose outputs are eps-close to a neighbour get pruned.

        g decreases by exactly 1 from horizon 2 (value 11) to horizon 11
        (value 2); with eps=0.5 the anchor at the head makes every instance
        down to value ~5.5 redundant, so far fewer than the 10 created
        instances survive.
        """
        events = [Interaction("hub", f"x{l}", 0, l) for l in range(2, 12)]
        _, hist = drive(events, k=1, epsilon=0.5)
        assert 0 < hist.num_instances < 10

    def test_small_epsilon_keeps_distinct_instances(self):
        """With step-1 value differences and eps=0.1, nothing is redundant
        (removal needs g(j) >= 0.9 g(i) for j >= i+2, i.e. g(i) >= 20)."""
        events = [Interaction("hub", f"x{l}", 0, l) for l in range(2, 12)]
        _, hist = drive(events, k=1, epsilon=0.1)
        assert hist.num_instances == 10

    def test_smooth_histogram_invariant(self):
        """After removal: g(x_{i+2}) < (1 - eps) g(x_i) (Theorem 8's size
        argument), asserted on the cached readouts the algorithm actually
        uses for redundancy decisions."""
        rng = random.Random(5)
        eps = 0.2

        def check(graph, hist, t):
            values = [
                hist._instances[h].query_value_cached() for h in hist.horizons()
            ]
            for i in range(len(values) - 2):
                assert values[i + 2] < (1 - eps) * values[i] + 1e-9 or (
                    values[i] == 0
                )

        for _ in range(8):
            drive(random_events(rng), k=2, epsilon=eps, check=check)

    def test_head_and_max_never_removed(self):
        events = [Interaction("hub", f"x{l}", 0, l) for l in range(2, 12)]
        _, hist = drive(events, k=1, epsilon=0.5)
        horizons = hist.horizons()
        assert 2 in horizons       # head survives
        assert 11 in horizons      # max survives


class TestApproximationGuarantee:
    def test_third_minus_eps_on_random_tdns(self):
        """Theorem 7: (1/3 - eps) OPT at every time step."""
        rng = random.Random(11)
        k, eps = 2, 0.1

        def check(graph, hist, t):
            oracle = InfluenceOracle(graph)
            optimum = brute_force_optimum(
                SpreadFunction(oracle), sorted(graph.node_set(), key=repr), k
            )
            if optimum.value > 0:
                ratio = hist.query().value / optimum.value
                assert ratio >= (1.0 / 3.0 - eps) - 1e-9

        for _ in range(15):
            drive(random_events(rng), k=k, epsilon=eps, check=check)

    def test_tracks_basic_reduction_closely(self):
        """Fig. 7's headline: value within a few percent of BASICREDUCTION."""
        rng = random.Random(13)
        total_hist, total_basic = 0.0, 0.0
        for _ in range(10):
            events = random_events(rng, num_nodes=10, steps=12, max_lifetime=6)
            graph_b = TDNGraph()
            basic = BasicReduction(2, 0.1, 6, graph_b)
            graph_h = TDNGraph()
            hist = HistApprox(2, 0.1, graph_h)
            for t, batch in MemoryStream(events, fill_gaps=True):
                for graph, algo in ((graph_b, basic), (graph_h, hist)):
                    graph.advance_to(t)
                    graph.add_batch(batch)
                    algo.on_batch(t, batch)
                total_hist += hist.query().value
                total_basic += basic.query().value
        assert total_hist >= 0.9 * total_basic


class TestHeadRefinement:
    def test_refinement_never_hurts(self):
        rng = random.Random(17)
        for _ in range(8):
            events = random_events(rng)
            graph_a = TDNGraph()
            plain = HistApprox(2, 0.2, graph_a, refine_head=False)
            graph_b = TDNGraph()
            refined = HistApprox(2, 0.2, graph_b, refine_head=True)
            for t, batch in MemoryStream(events, fill_gaps=True):
                for graph, algo in ((graph_a, plain), (graph_b, refined)):
                    graph.advance_to(t)
                    graph.add_batch(batch)
                    algo.on_batch(t, batch)
                assert refined.query().value >= plain.query().value - 1e-9

    def test_refinement_covers_unprocessed_short_edges(self):
        """Craft a head that misses short-lifetime edges; refinement sees
        them."""
        graph = TDNGraph()
        hist = HistApprox(2, 0.5, graph, refine_head=True)
        # t=0: one long edge creates horizon 8.
        graph.advance_to(0)
        batch0 = [Interaction("long", "x", 0, 8)]
        graph.add_batch(batch0)
        hist.on_batch(0, batch0)
        # t=1: a short edge creates horizon 3; then expire it from the
        # histogram by advancing past it while the long instance remains.
        graph.advance_to(1)
        batch1 = [Interaction("short", "y", 1, 2)]
        graph.add_batch(batch1)
        hist.on_batch(1, batch1)
        graph.advance_to(2)
        hist.on_batch(2, [Interaction("late", "z", 2, 1)])
        graph.add_interaction(Interaction("late", "z", 2, 1))
        solution = hist.query()
        assert solution.value >= 2.0


class TestQueryEdgeCases:
    def test_query_empty(self):
        graph = TDNGraph()
        hist = HistApprox(2, 0.2, graph)
        assert hist.query().value == 0.0

    def test_query_after_total_expiry(self):
        events = [Interaction("a", "b", 0, 1)]
        graph, hist = drive(events)
        graph.advance_to(10)
        assert hist.query().value == 0.0
        assert hist.horizons() == []


class _FixedValueInstance:
    """Stub standing in for a SieveADN: a frozen cached readout."""

    def __init__(self, value):
        self.value = value

    def query_value_cached(self):
        return self.value


def hist_with_values(values, epsilon=0.2):
    """A HistApprox whose histogram is exactly ``values`` at horizons 10i."""
    hist = HistApprox(2, epsilon, TDNGraph())
    hist._horizons = [10 * (i + 1) for i in range(len(values))]
    hist._instances = {
        h: _FixedValueInstance(v) for h, v in zip(hist._horizons, values)
    }
    return hist


class TestReduceRedundancy:
    def test_deletes_sandwiched_eps_close_indices(self):
        # cutoff(100) = 80: indices valued 95 and 90 are sandwiched between
        # 100 and 85 (>= 80), so both are deleted; 40 breaks the run.
        hist = hist_with_values([100, 95, 90, 85, 40], epsilon=0.2)
        hist._reduce_redundancy()
        assert [hist._instances[h].value for h in hist._horizons] == [100, 85, 40]

    def test_keeps_well_separated_histogram(self):
        hist = hist_with_values([100, 70, 45, 25, 10], epsilon=0.2)
        before = list(hist._horizons)
        hist._reduce_redundancy()
        assert hist._horizons == before

    def test_head_is_never_deleted(self):
        # All values equal: everything between head and tail is redundant,
        # but the head itself must survive as the first anchor.
        hist = hist_with_values([50, 50, 50, 50, 50], epsilon=0.2)
        head = hist._horizons[0]
        hist._reduce_redundancy()
        assert hist._horizons[0] == head
        assert [hist._instances[h].value for h in hist._horizons] == [50, 50]

    def test_chained_anchors_do_not_over_delete(self):
        # 100 keeps 81 (>= 80); anchored at 81, 66 (>= 64.8) is its probe
        # end; deletion must respect each anchor's own cutoff, not the
        # head's (transitively everything is eps-close, pairwise not).
        hist = hist_with_values([100, 81, 66, 54], epsilon=0.2)
        hist._reduce_redundancy()
        assert [hist._instances[h].value for h in hist._horizons] == [100, 81, 66, 54]

    def test_short_histograms_untouched(self):
        for values in ([], [10], [10, 5]):
            hist = hist_with_values(values)
            before = list(hist._horizons)
            hist._reduce_redundancy()
            assert hist._horizons == before

    def test_instances_dict_stays_in_sync(self):
        hist = hist_with_values([100, 99, 98, 97, 30], epsilon=0.1)
        hist._reduce_redundancy()
        assert set(hist._instances) == set(hist._horizons)

    def test_forward_pass_is_linear(self):
        # The pass must not rescan the whole histogram per anchor: count
        # value readouts, which the O(H) pass does exactly once per index.
        class CountingInstance(_FixedValueInstance):
            reads = 0

            def query_value_cached(self):
                CountingInstance.reads += 1
                return self.value

        values = [1000.0 / (i + 1) for i in range(200)]
        hist = HistApprox(2, 0.1, TDNGraph())
        hist._horizons = list(range(1, len(values) + 1))
        hist._instances = {
            h: CountingInstance(v) for h, v in zip(hist._horizons, values)
        }
        CountingInstance.reads = 0
        hist._reduce_redundancy()
        assert CountingInstance.reads == len(values)


class TestReduceRedundancyOnStreams:
    def test_head_survives_every_batch(self, seed=3):
        rng = random.Random(seed)
        events = random_events(rng, num_nodes=8, steps=14, max_lifetime=8)

        def check(graph, hist, t):
            if hist._horizons:
                assert hist._horizons[0] > t
                assert set(hist._instances) == set(hist._horizons)
                assert hist._horizons == sorted(hist._horizons)

        drive(events, k=2, epsilon=0.3, check=check)
