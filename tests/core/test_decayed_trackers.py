"""The semantics-driven trackers: decayed centrality and trend detection.

Both trackers rank alive nodes by singleton spread under a decaying fold
and answer with the top-``k``; these tests pin that ranking against a
brute-force dict-BFS reference computed without any oracle, kernel or
numpy sweep, plus the constructor guardrails (an oracle under the wrong
semantics is rejected loudly) and the :class:`~repro.core.tracker.
InfluenceTracker` name routing with its semantics defaulting.
"""

import math
import random
from collections import deque

import pytest

from repro.core.decayed import DecayedCentralityTracker, TrendTracker
from repro.core.tracker import InfluenceTracker
from repro.errors import ConfigError, SemanticsError
from repro.influence.oracle import InfluenceOracle
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction


def build_graph(seed=7, num_nodes=14, num_events=90):
    rng = random.Random(seed)
    graph = TDNGraph()
    t = 0
    for _ in range(num_events):
        if rng.random() < 0.3:
            t += rng.randint(1, 3)
            graph.advance_to(t)
        u, v = rng.sample(range(num_nodes), 2)
        graph.add_interaction(
            Interaction(f"n{u}", f"n{v}", t, rng.randint(1, 20))
        )
    return graph


def bfs_levels(graph, seeds, eff):
    levels = {}
    queue = deque()
    for node in seeds:
        levels[node] = 0
        queue.append(node)
    while queue:
        node = queue.popleft()
        for nxt in graph.out_neighbors(node, eff):
            if nxt not in levels:
                levels[nxt] = levels[node] + 1
                queue.append(nxt)
    return levels


def hop_discount_score(graph, node, alpha, eff):
    return sum(alpha**lvl for lvl in bfs_levels(graph, [node], eff).values())


def time_decay_score(graph, node, lam, eff):
    total = 0.0
    for reached in bfs_levels(graph, [node], eff):
        best = None
        for u in graph.in_neighbors(reached, eff):
            expiry = graph.max_expiry(u, reached)
            if expiry >= eff and (best is None or expiry > best):
                best = expiry
        if best is None or math.isinf(best):
            total += 1.0
        else:
            total += 1.0 - math.exp(-lam * (best - eff))
    return total


def brute_force_top_k(graph, score, k):
    eff = float(graph.time + 1)
    ranked = sorted(
        ((node, score(graph, node, eff)) for node in graph.node_set()),
        key=lambda pair: (-pair[1], repr(pair[0])),
    )
    return tuple(node for node, _ in ranked[:k])


class TestDecayedCentralityTracker:
    def test_ranking_matches_brute_force_reference(self):
        graph = build_graph(seed=19)
        tracker = DecayedCentralityTracker(4, graph, alpha=0.6)
        expected = brute_force_top_k(
            graph, lambda g, n, eff: hop_discount_score(g, n, 0.6, eff), 4
        )
        solution = tracker.query()
        assert solution.nodes == expected
        # The reported value is the fold spread of the selected *set*.
        assert solution.value == pytest.approx(
            float(tracker.oracle.spread(expected)), rel=1e-12
        )

    def test_singleton_scores_match_reference_everywhere(self):
        graph = build_graph(seed=5, num_events=60)
        tracker = DecayedCentralityTracker(3, graph, alpha=0.45)
        eff = float(graph.time + 1)
        for node, score in tracker.singleton_scores():
            assert score == pytest.approx(
                hop_discount_score(graph, node, 0.45, eff), rel=1e-12
            )

    def test_rejects_oracle_under_wrong_semantics(self):
        graph = TDNGraph()
        with pytest.raises(SemanticsError, match="requires an oracle"):
            DecayedCentralityTracker(3, graph, InfluenceOracle(graph))

    def test_alpha_rides_on_the_oracle_fold(self):
        graph = TDNGraph()
        tracker = DecayedCentralityTracker(3, graph, alpha=0.8)
        assert tracker.alpha == 0.8
        assert tracker.oracle.fold.spec() == ("hop_discount", {"alpha": 0.8})

    def test_empty_graph_answers_empty_solution(self):
        tracker = DecayedCentralityTracker(3, TDNGraph())
        tracker.on_batch(4, [])
        solution = tracker.query()
        assert solution.nodes == () and solution.value == 0.0
        assert solution.time == 4


class TestTrendTracker:
    def test_ranking_matches_brute_force_reference(self):
        graph = build_graph(seed=31)
        tracker = TrendTracker(4, graph, lam=0.12)
        expected = brute_force_top_k(
            graph, lambda g, n, eff: time_decay_score(g, n, 0.12, eff), 4
        )
        assert tracker.query().nodes == expected

    def test_prefers_fresh_interactions_over_expiring_ones(self):
        """Two hubs with identical reach; the fresher one must rank first."""
        graph = TDNGraph()
        for i in range(4):
            graph.add_interaction(Interaction("stale", f"s{i}", 0, 2))
            graph.add_interaction(Interaction("fresh", f"f{i}", 0, 50))
        tracker = TrendTracker(1, graph, lam=0.3)
        assert tracker.query().nodes == ("fresh",)

    def test_rejects_oracle_under_wrong_semantics(self):
        graph = TDNGraph()
        hop = InfluenceOracle(graph, semantics="hop_discount")
        with pytest.raises(SemanticsError, match="'time_decay'"):
            TrendTracker(3, graph, hop)

    def test_lam_rides_on_the_oracle_fold(self):
        tracker = TrendTracker(2, TDNGraph())
        assert tracker.lam == 0.1  # the documented default
        assert tracker.oracle.semantics == "time_decay"


class TestTrackerFacadeRouting:
    @pytest.mark.parametrize(
        "name, cls, semantics",
        [
            ("decayed-centrality", DecayedCentralityTracker, "hop_discount"),
            ("trend", TrendTracker, "time_decay"),
        ],
    )
    def test_names_route_with_their_natural_semantics(self, name, cls, semantics):
        tracker = InfluenceTracker(name, k=3)
        assert isinstance(tracker.algorithm, cls)
        assert tracker.oracle.semantics == semantics
        solution = tracker.step(0, [("a", "b"), ("b", "c"), ("d", "e")])
        assert solution.nodes and len(solution.nodes) <= 3
        assert tracker.query() == solution

    def test_explicit_semantics_override_reaches_the_oracle(self):
        tracker = InfluenceTracker(
            "decayed-centrality", k=2, semantics=("hop_discount", {"alpha": 0.25})
        )
        assert tracker.algorithm.alpha == 0.25

    def test_sieve_algorithms_keep_plain_counts(self):
        tracker = InfluenceTracker("hist-approx", k=2)
        assert tracker.oracle.semantics == "count"

    def test_mismatched_semantics_fail_at_construction(self):
        with pytest.raises(SemanticsError):
            InfluenceTracker("trend", k=2, semantics="count")

    def test_injected_oracle_must_share_the_graph(self):
        with pytest.raises(ConfigError, match="bound to the tracker's graph"):
            InfluenceTracker(
                "hist-approx", k=2, oracle=InfluenceOracle(TDNGraph())
            )

    def test_injected_oracle_owns_semantics_and_workers(self):
        graph = TDNGraph()
        oracle = InfluenceOracle(graph)
        with pytest.raises(ConfigError, match="owned by an injected oracle"):
            InfluenceTracker(
                "hist-approx", k=2, graph=graph, oracle=oracle, semantics="count"
            )
        with pytest.raises(ConfigError, match="owned by an injected oracle"):
            InfluenceTracker(
                "hist-approx", k=2, graph=graph, oracle=oracle, workers=2
            )
