"""Tests for the g_t(l) histogram/profile readouts (paper Fig. 5)."""

import random

from repro.core.basic_reduction import BasicReduction
from repro.core.hist_approx import HistApprox
from repro.tdn.graph import TDNGraph
from repro.tdn.interaction import Interaction
from repro.tdn.stream import MemoryStream


def drive(events, algo_factory, L=None):
    graph = TDNGraph()
    algorithm = algo_factory(graph)
    for t, batch in MemoryStream(events, fill_gaps=True):
        graph.advance_to(t)
        graph.add_batch(batch)
        algorithm.on_batch(t, batch)
    return graph, algorithm


class TestHistApproxHistogram:
    def test_pairs_sorted_by_index(self):
        events = [Interaction("hub", f"x{l}", 0, l) for l in (2, 5, 9)]
        _, hist = drive(events, lambda g: HistApprox(1, 0.2, g))
        histogram = hist.histogram()
        indices = [i for i, _ in histogram]
        assert indices == sorted(indices)
        assert len(histogram) == hist.num_instances

    def test_exact_matches_query_values(self):
        events = [Interaction("hub", f"x{l}", 0, l) for l in (2, 5, 9)]
        _, hist = drive(events, lambda g: HistApprox(1, 0.2, g))
        for (index, value) in hist.histogram(exact=True):
            horizon = index + hist.graph.time
            assert value == hist._instances[horizon].query_value()

    def test_cached_lower_bounds_exact(self):
        rng = random.Random(3)
        events = []
        for t in range(8):
            u, v = rng.sample(range(6), 2)
            events.append(Interaction(f"n{u}", f"n{v}", t, rng.randint(1, 6)))
        _, hist = drive(events, lambda g: HistApprox(2, 0.2, g))
        cached = dict(hist.histogram(exact=False))
        exact = dict(hist.histogram(exact=True))
        for index, value in cached.items():
            assert value <= exact[index] + 1e-9

    def test_head_value_equals_query(self):
        events = [Interaction("a", "b", 0, 4), Interaction("c", "d", 0, 8)]
        _, hist = drive(events, lambda g: HistApprox(2, 0.2, g))
        histogram = hist.histogram(exact=True)
        assert histogram[0][1] == hist.query().value


class TestBasicReductionProfile:
    def test_profile_covers_all_L_indices(self):
        events = [Interaction("hub", f"x{l}", 0, l) for l in (1, 3, 5)]
        _, basic = drive(events, lambda g: BasicReduction(1, 0.2, 5, g))
        profile = basic.profile()
        assert [i for i, _ in profile] == list(range(1, 6))

    def test_profile_non_increasing_for_nested_views(self):
        """g_t(l) is non-increasing in l when every instance has settled:
        instance l sees a subset of instance l' < l's edges."""
        events = [Interaction("hub", f"x{l}", 0, l) for l in range(1, 6)]
        _, basic = drive(events, lambda g: BasicReduction(1, 0.2, 5, g))
        values = [v for _, v in basic.profile(exact=True)]
        assert all(b <= a + 1e-9 for a, b in zip(values, values[1:]))

    def test_hist_histogram_approximates_basic_profile(self):
        """Every HISTAPPROX histogram point must equal the exact profile
        value of BASICREDUCTION at that index (the instances at kept
        indices are the same computation)."""
        rng = random.Random(9)
        events = []
        for t in range(10):
            u, v = rng.sample(range(7), 2)
            events.append(Interaction(f"n{u}", f"n{v}", t, rng.randint(1, 6)))
        graph_b, basic = drive(events, lambda g: BasicReduction(2, 0.1, 6, g))
        graph_h, hist = drive(events, lambda g: HistApprox(2, 0.1, g))
        basic_profile = dict(basic.profile(exact=True))
        for index, value in hist.histogram(exact=True):
            assert index in basic_profile
            # Same-index instances processed identical edge sets, so their
            # sieve values agree exactly.
            assert value == basic_profile[index]
