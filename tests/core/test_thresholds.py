"""Unit tests for the lazy threshold grid (SieveStreaming's Theta set)."""

import math

import pytest

from repro.core.thresholds import SieveSet, ThresholdSet


class TestSieveSet:
    def test_add_and_membership(self):
        sieve = SieveSet()
        sieve.add("a")
        assert "a" in sieve
        assert len(sieve) == 1
        assert sieve.nodes == ["a"]

    def test_duplicate_rejected(self):
        sieve = SieveSet()
        sieve.add("a")
        with pytest.raises(ValueError):
            sieve.add("a")

    def test_copy_is_independent(self):
        sieve = SieveSet()
        sieve.add("a")
        sieve.cached_value = 5.0
        dup = sieve.copy()
        dup.add("b")
        dup.cached_value = 9.0
        assert sieve.nodes == ["a"]
        assert sieve.cached_value == 5.0
        assert dup.nodes == ["a", "b"]


class TestThresholdWindow:
    def test_empty_until_delta(self):
        grid = ThresholdSet(k=5, epsilon=0.1)
        assert len(grid) == 0

    def test_window_covers_delta_to_2k_delta(self):
        grid = ThresholdSet(k=5, epsilon=0.1)
        grid.update_delta(10.0)
        thresholds = [t for t, _ in grid.items()]
        # Thresholds are (1+eps)^i / 2k with (1+eps)^i spanning [10, 100].
        assert min(thresholds) == pytest.approx(10.0 / 10.0, rel=0.1)
        assert max(thresholds) <= 100.0 / 10.0 * (1.0 + 1e-9)

    def test_grid_size_logarithmic(self):
        grid = ThresholdSet(k=10, epsilon=0.1)
        grid.update_delta(50.0)
        expected = math.log(2 * 10) / math.log(1.1)
        assert abs(len(grid) - expected) <= 2

    def test_thresholds_ascending_in_items(self):
        grid = ThresholdSet(k=4, epsilon=0.2)
        grid.update_delta(7.0)
        thresholds = [t for t, _ in grid.items()]
        assert thresholds == sorted(thresholds)

    def test_update_delta_ignores_smaller(self):
        grid = ThresholdSet(k=5, epsilon=0.1)
        assert grid.update_delta(10.0)
        assert not grid.update_delta(5.0)
        assert grid.delta == 10.0


class TestLazyMaintenance:
    def test_sets_preserved_when_still_in_window(self):
        grid = ThresholdSet(k=5, epsilon=0.1)
        grid.update_delta(10.0)
        # Pick a threshold near the top of the window and populate it.
        top_exponent = max(e for e in grid._sieves)
        grid._sieves[top_exponent].add("survivor")
        grid.update_delta(11.0)  # small bump: top exponent stays in window
        assert "survivor" in grid._sieves[top_exponent]

    def test_sets_dropped_when_leaving_window(self):
        grid = ThresholdSet(k=5, epsilon=0.1)
        grid.update_delta(1.0)
        low_exponent = min(grid._sieves)
        grid._sieves[low_exponent].add("doomed")
        grid.update_delta(1000.0)  # window jumps far upward
        assert low_exponent not in grid._sieves

    def test_new_thresholds_start_empty(self):
        grid = ThresholdSet(k=5, epsilon=0.1)
        grid.update_delta(1.0)
        grid.update_delta(100.0)
        new_exponents = [e for e in grid._sieves if not grid._sieves[e].nodes]
        assert new_exponents  # freshly entered thresholds are empty

    def test_copy_deep(self):
        grid = ThresholdSet(k=3, epsilon=0.2)
        grid.update_delta(5.0)
        exponent = min(grid._sieves)
        grid._sieves[exponent].add("x")
        dup = grid.copy()
        dup._sieves[exponent].add("y")
        assert "y" not in grid._sieves[exponent]
        assert dup.delta == grid.delta


class TestValidation:
    def test_bad_k(self):
        with pytest.raises(ValueError):
            ThresholdSet(k=0, epsilon=0.1)

    def test_bad_epsilon(self):
        with pytest.raises(ValueError):
            ThresholdSet(k=5, epsilon=0.0)
        with pytest.raises(ValueError):
            ThresholdSet(k=5, epsilon=1.0)

    def test_threshold_value_formula(self):
        grid = ThresholdSet(k=5, epsilon=0.5)
        assert grid.threshold_value(3) == pytest.approx(1.5**3 / 10.0)
