"""Unit tests for the Interaction record (paper Definition 1)."""

import math

import pytest

from repro.tdn.interaction import Interaction


class TestConstruction:
    def test_basic_fields(self):
        i = Interaction("a", "b", 5, 3)
        assert i.source == "a"
        assert i.target == "b"
        assert i.time == 5
        assert i.lifetime == 3

    def test_default_lifetime_is_infinite(self):
        assert Interaction("a", "b", 0).lifetime is None

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Interaction("a", "a", 0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            Interaction("a", "b", -1)

    def test_non_integer_time_rejected(self):
        with pytest.raises(TypeError):
            Interaction("a", "b", 1.5)

    def test_zero_lifetime_rejected(self):
        with pytest.raises(ValueError, match="lifetime"):
            Interaction("a", "b", 0, 0)

    def test_bool_time_rejected(self):
        with pytest.raises(TypeError):
            Interaction("a", "b", True)

    def test_frozen(self):
        i = Interaction("a", "b", 0, 1)
        with pytest.raises(AttributeError):
            i.time = 3

    def test_hashable_and_equal(self):
        assert Interaction("a", "b", 0, 1) == Interaction("a", "b", 0, 1)
        assert len({Interaction("a", "b", 0, 1), Interaction("a", "b", 0, 1)}) == 1


class TestLifetimeSemantics:
    def test_expiry_is_time_plus_lifetime(self):
        assert Interaction("a", "b", 3, 4).expiry == 7

    def test_infinite_expiry(self):
        assert Interaction("a", "b", 3).expiry == math.inf

    def test_alive_window_matches_paper_rule(self):
        # e in E_t iff tau <= t < tau + l (paper Section II-B).
        i = Interaction("a", "b", 2, 3)
        assert not i.alive_at(1)
        assert i.alive_at(2)
        assert i.alive_at(3)
        assert i.alive_at(4)
        assert not i.alive_at(5)

    def test_lifetime_one_lives_exactly_one_step(self):
        i = Interaction("a", "b", 7, 1)
        assert i.alive_at(7)
        assert not i.alive_at(8)

    def test_remaining_lifetime_decreases(self):
        # l_t(e) = l_tau(e) - (t - tau) (the paper's decay rule).
        i = Interaction("a", "b", 2, 3)
        assert i.remaining_lifetime(2) == 3
        assert i.remaining_lifetime(4) == 1
        assert i.remaining_lifetime(5) == 0

    def test_with_lifetime_returns_new_record(self):
        i = Interaction("a", "b", 1)
        j = i.with_lifetime(9)
        assert j.lifetime == 9 and i.lifetime is None
        assert j.source == i.source and j.time == i.time
